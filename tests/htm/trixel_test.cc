#include "htm/trixel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/angle.h"
#include "core/coords.h"
#include "core/random.h"

namespace sdss::htm {
namespace {

TEST(TrixelTest, BaseVerticesAreOctahedronCorners) {
  // S0 spans the first southern quadrant: (1,0,0), (0,0,-1), (0,1,0).
  Trixel s0 = Trixel::FromId(HtmId::Base(0));
  EXPECT_TRUE(ApproxEqual(s0.v0(), Vec3(1, 0, 0)));
  EXPECT_TRUE(ApproxEqual(s0.v1(), Vec3(0, 0, -1)));
  EXPECT_TRUE(ApproxEqual(s0.v2(), Vec3(0, 1, 0)));
}

TEST(TrixelTest, BaseTrixelsTileTheSphere) {
  // Every random point belongs to at least one base trixel, and (away from
  // boundaries) exactly one.
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    Vec3 p = rng.UnitSphere();
    int hits = 0;
    for (int b = 0; b < 8; ++b) {
      if (Trixel::FromId(HtmId::Base(b)).Contains(p)) ++hits;
    }
    EXPECT_GE(hits, 1) << p.ToString();
  }
}

TEST(TrixelTest, ChildrenPartitionParent) {
  Rng rng(2);
  Trixel parent = Trixel::FromId(HtmId::Base(6));
  auto children = parent.Children();
  for (int i = 0; i < 1000; ++i) {
    // Sample points inside the parent.
    Vec3 p = rng.UnitCap(parent.Center(), 0.5);
    if (!parent.Contains(p)) continue;
    int hits = 0;
    for (const Trixel& c : children) hits += c.Contains(p);
    EXPECT_GE(hits, 1) << p.ToString();
  }
}

TEST(TrixelTest, ChildIdsMatchChildGeometry) {
  Trixel parent = Trixel::FromId(HtmId::Base(3));
  auto children = parent.Children();
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(children[c].id(), parent.id().Child(c));
    // FromId reproduces the same geometry.
    Trixel direct = Trixel::FromId(parent.id().Child(c));
    for (int v = 0; v < 3; ++v) {
      EXPECT_TRUE(ApproxEqual(direct.vertices()[v], children[c].vertices()[v],
                              1e-14));
    }
  }
}

TEST(TrixelTest, VerticesAreUnit) {
  HtmId id = HtmId::Base(1).Child(2).Child(0).Child(3).Child(1);
  Trixel t = Trixel::FromId(id);
  for (const Vec3& v : t.vertices()) {
    EXPECT_NEAR(v.Norm(), 1.0, 1e-14);
  }
}

TEST(TrixelTest, LookupFindsContainingTrixel) {
  Rng rng(3);
  for (int level : {0, 1, 3, 6, 10, 14}) {
    for (int i = 0; i < 300; ++i) {
      Vec3 p = rng.UnitSphere();
      HtmId id = LookupId(p, level);
      EXPECT_EQ(id.level(), level);
      EXPECT_TRUE(Trixel::FromId(id).Contains(p))
          << "level " << level << " p " << p.ToString();
    }
  }
}

TEST(TrixelTest, LookupIsHierarchicallyConsistent) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    Vec3 p = rng.UnitSphere();
    HtmId deep = LookupId(p, 10);
    for (int level = 0; level < 10; ++level) {
      EXPECT_EQ(LookupId(p, level), deep.AncestorAt(level));
    }
  }
}

TEST(TrixelTest, LookupByRaDec) {
  HtmId id = LookupId(45.0, 45.0, 8);
  Vec3 p = UnitVectorFromSpherical(45.0, 45.0);
  EXPECT_TRUE(Trixel::FromId(id).Contains(p));
  // (45, 45) is in the northern hemisphere -> an N trixel.
  EXPECT_EQ(id.ToName()[0], 'N');
  EXPECT_EQ(LookupId(45.0, -45.0, 8).ToName()[0], 'S');
}

TEST(TrixelTest, LookupHandlesPolesAndSeams) {
  // Exact octahedron corners and edge midpoints must resolve to valid
  // containing trixels at every level.
  const Vec3 tricky[] = {
      {0, 0, 1}, {0, 0, -1}, {1, 0, 0},  {0, 1, 0},
      {-1, 0, 0}, {0, -1, 0}, Vec3(1, 1, 0).Normalized(),
      Vec3(1, 0, 1).Normalized(), Vec3(0, 1, 1).Normalized(),
      Vec3(-1, 1, 0).Normalized(), Vec3(1, 1, 1).Normalized(),
  };
  for (const Vec3& p : tricky) {
    for (int level : {0, 4, 9}) {
      HtmId id = LookupId(p, level);
      EXPECT_TRUE(id.valid());
      EXPECT_TRUE(Trixel::FromId(id).Contains(p))
          << p.ToString() << " level " << level;
    }
  }
}

TEST(TrixelTest, AreasSumToSphere) {
  // Base trixels: each is exactly 1/8 of the sphere.
  double total = 0.0;
  for (int b = 0; b < 8; ++b) {
    double a = Trixel::FromId(HtmId::Base(b)).AreaSteradians();
    EXPECT_NEAR(a, 4.0 * kPi / 8.0, 1e-12);
    total += a;
  }
  EXPECT_NEAR(total, 4.0 * kPi, 1e-10);
}

TEST(TrixelTest, ChildAreasSumToParentArea) {
  Trixel parent = Trixel::FromId(HtmId::Base(2).Child(1));
  double parent_area = parent.AreaSteradians();
  double child_sum = 0.0;
  for (const Trixel& c : parent.Children()) child_sum += c.AreaSteradians();
  EXPECT_NEAR(child_sum, parent_area, 1e-12);
}

TEST(TrixelTest, SubdivisionAreasAreApproximatelyEqual) {
  // The paper: "4 sub-triangles of approximately equal areas". At level 5
  // the max/min ratio over the whole sphere stays modest (~2).
  double min_a = 1e9, max_a = 0.0;
  for (int b = 0; b < 8; ++b) {
    std::vector<Trixel> frontier{Trixel::FromId(HtmId::Base(b))};
    for (int l = 0; l < 5; ++l) {
      std::vector<Trixel> next;
      for (const Trixel& t : frontier) {
        for (const Trixel& c : t.Children()) next.push_back(c);
      }
      frontier = std::move(next);
    }
    for (const Trixel& t : frontier) {
      double a = t.AreaSteradians();
      min_a = std::min(min_a, a);
      max_a = std::max(max_a, a);
    }
  }
  EXPECT_LT(max_a / min_a, 2.5);
  EXPECT_GT(max_a / min_a, 1.0);
}

TEST(TrixelTest, BoundingCapContainsVertices) {
  HtmId id = HtmId::Base(4).Child(3).Child(2);
  Trixel t = Trixel::FromId(id);
  Cap cap = t.BoundingCap();
  for (const Vec3& v : t.vertices()) {
    EXPECT_LE(cap.center.AngleTo(v), cap.radius_rad + 1e-12);
  }
}

TEST(TrixelTest, BoundingCapContainsRandomInteriorPoints) {
  Rng rng(5);
  Trixel t = Trixel::FromId(LookupId(rng.UnitSphere(), 4));
  Cap cap = t.BoundingCap();
  for (int i = 0; i < 500; ++i) {
    Vec3 p = rng.UnitCap(t.Center(), cap.radius_rad);
    if (t.Contains(p)) {
      EXPECT_LE(cap.center.AngleTo(p), cap.radius_rad + 1e-9);
    }
  }
}

TEST(TrixelTest, CenterIsInsideTrixel) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    Trixel t = Trixel::FromId(LookupId(rng.UnitSphere(), 7));
    EXPECT_TRUE(t.Contains(t.Center()));
  }
}

TEST(TrixelTest, NeighborsShareBoundary) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    Trixel t = Trixel::FromId(LookupId(rng.UnitSphere(), 5));
    std::vector<HtmId> neighbors = t.Neighbors();
    // A trixel has 3 edge neighbors plus vertex neighbors; expect at
    // least the 3 and no duplicates.
    EXPECT_GE(neighbors.size(), 3u);
    EXPECT_LE(neighbors.size(), 12u);
    EXPECT_TRUE(std::is_sorted(neighbors.begin(), neighbors.end()));
    EXPECT_EQ(std::adjacent_find(neighbors.begin(), neighbors.end()),
              neighbors.end());
    // Self never appears.
    EXPECT_EQ(std::find(neighbors.begin(), neighbors.end(), t.id()),
              neighbors.end());
    // All are at the same level.
    for (HtmId n : neighbors) EXPECT_EQ(n.level(), t.id().level());
  }
}

TEST(TrixelTest, NeighborRelationIsSymmetricForEdges) {
  // The 3 edge-reflection neighbors of t must list t among their own
  // neighbors.
  Trixel t = Trixel::FromId(LookupId(30.0, 40.0, 4));
  std::vector<HtmId> ns = t.Neighbors();
  int mutual = 0;
  for (HtmId n : ns) {
    std::vector<HtmId> back = Trixel::FromId(n).Neighbors();
    if (std::find(back.begin(), back.end(), t.id()) != back.end()) ++mutual;
  }
  EXPECT_GE(mutual, 3);
}

}  // namespace
}  // namespace sdss::htm
