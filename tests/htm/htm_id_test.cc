#include "htm/htm_id.h"

#include <gtest/gtest.h>

namespace sdss::htm {
namespace {

TEST(HtmIdTest, DefaultIsInvalid) {
  HtmId id;
  EXPECT_FALSE(id.valid());
}

TEST(HtmIdTest, BaseTrixelsAreLevelZero) {
  for (int i = 0; i < 8; ++i) {
    HtmId id = HtmId::Base(i);
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(id.level(), 0);
    EXPECT_EQ(id.raw(), 8u + static_cast<uint64_t>(i));
  }
}

TEST(HtmIdTest, BaseNames) {
  EXPECT_EQ(HtmId::Base(0).ToName(), "S0");
  EXPECT_EQ(HtmId::Base(3).ToName(), "S3");
  EXPECT_EQ(HtmId::Base(4).ToName(), "N0");
  EXPECT_EQ(HtmId::Base(7).ToName(), "N3");
}

TEST(HtmIdTest, NameRoundTrip) {
  for (const char* name : {"N0", "S2", "N012", "S3001", "N3210123",
                           "S0000000000", "N3333333333"}) {
    auto r = HtmId::FromName(name);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_EQ(r->ToName(), name);
  }
}

TEST(HtmIdTest, FromNameRejectsGarbage) {
  EXPECT_FALSE(HtmId::FromName("").ok());
  EXPECT_FALSE(HtmId::FromName("N").ok());
  EXPECT_FALSE(HtmId::FromName("X01").ok());
  EXPECT_FALSE(HtmId::FromName("N04").ok());   // Digit out of range.
  EXPECT_FALSE(HtmId::FromName("N0a").ok());
  // Deeper than kMaxLevel.
  std::string deep = "N0";
  for (int i = 0; i <= kMaxLevel; ++i) deep += '1';
  EXPECT_FALSE(HtmId::FromName(deep).ok());
}

TEST(HtmIdTest, FromRawValidation) {
  EXPECT_FALSE(HtmId::FromRaw(0).ok());
  EXPECT_FALSE(HtmId::FromRaw(7).ok());    // Below base range.
  EXPECT_FALSE(HtmId::FromRaw(16).ok());   // Odd bit width (5 bits).
  EXPECT_FALSE(HtmId::FromRaw(31).ok());
  EXPECT_TRUE(HtmId::FromRaw(8).ok());
  EXPECT_TRUE(HtmId::FromRaw(15).ok());
  EXPECT_TRUE(HtmId::FromRaw(32).ok());    // Level 1 (6 bits).
  EXPECT_TRUE(HtmId::FromRaw(63).ok());
}

TEST(HtmIdTest, ChildParentRoundTrip) {
  HtmId base = HtmId::Base(5);
  for (int c = 0; c < 4; ++c) {
    HtmId child = base.Child(c);
    EXPECT_EQ(child.level(), 1);
    EXPECT_EQ(child.ChildIndex(), c);
    EXPECT_EQ(child.Parent(), base);
  }
}

TEST(HtmIdTest, DeepDescendantLevels) {
  HtmId id = HtmId::Base(2);
  for (int l = 1; l <= 20; ++l) {
    id = id.Child(l % 4);
    EXPECT_EQ(id.level(), l);
  }
}

TEST(HtmIdTest, ContainsSubtree) {
  HtmId parent = HtmId::Base(6).Child(1);
  HtmId deep = parent.Child(2).Child(3).Child(0);
  EXPECT_TRUE(parent.Contains(deep));
  EXPECT_TRUE(parent.Contains(parent));
  EXPECT_FALSE(deep.Contains(parent));
  EXPECT_FALSE(HtmId::Base(6).Child(0).Contains(deep));
}

TEST(HtmIdTest, AncestorAt) {
  HtmId id = HtmId::Base(3).Child(1).Child(2).Child(3);
  EXPECT_EQ(id.AncestorAt(0), HtmId::Base(3));
  EXPECT_EQ(id.AncestorAt(1), HtmId::Base(3).Child(1));
  EXPECT_EQ(id.AncestorAt(3), id);
}

TEST(HtmIdTest, RangeAtLevelCoversDescendants) {
  HtmId id = HtmId::Base(0).Child(2);
  uint64_t first, last;
  id.RangeAtLevel(3, &first, &last);
  EXPECT_EQ(last - first, 16u);  // 4^(3-1).
  // Every level-3 descendant falls in the range.
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      uint64_t raw = id.Child(a).Child(b).raw();
      EXPECT_GE(raw, first);
      EXPECT_LT(raw, last);
    }
  }
}

TEST(HtmIdTest, TrixelCountAtLevel) {
  EXPECT_EQ(TrixelCountAtLevel(0), 8u);
  EXPECT_EQ(TrixelCountAtLevel(1), 32u);
  EXPECT_EQ(TrixelCountAtLevel(5), 8192u);
  EXPECT_EQ(TrixelCountAtLevel(10), 8388608u);
}

TEST(HtmIdTest, IdsAtOneLevelAreContiguous) {
  // Level-L ids occupy exactly [8*4^L, 16*4^L).
  int level = 3;
  uint64_t lo = 8ull << (2 * level);
  uint64_t hi = 16ull << (2 * level);
  for (uint64_t raw = lo; raw < hi; raw += 37) {
    auto r = HtmId::FromRaw(raw);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->level(), level);
  }
  EXPECT_FALSE(HtmId::FromRaw(lo - 1).ok() &&
               HtmId::FromRaw(lo - 1)->level() == level);
}

TEST(HtmIdTest, OrderingFollowsRaw) {
  EXPECT_LT(HtmId::Base(0), HtmId::Base(1));
  EXPECT_LT(HtmId::Base(7), HtmId::Base(0).Child(0));
}

}  // namespace
}  // namespace sdss::htm
