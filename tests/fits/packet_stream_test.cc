#include "fits/packet_stream.h"

#include <gtest/gtest.h>

namespace sdss::fits {
namespace {

std::vector<ColumnSpec> Schema() {
  return {{"ID", ColumnType::kInt64, 0, ""},
          {"MAG", ColumnType::kFloat, 0, "mag"}};
}

std::string MakeStream(size_t rows, size_t rows_per_packet,
                       StreamEncoding enc = StreamEncoding::kBinary,
                       size_t* packets = nullptr) {
  PacketStreamWriter w(Schema(),
                       {.rows_per_packet = rows_per_packet, .encoding = enc});
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(w.Append({static_cast<int64_t>(i),
                          static_cast<float>(15.0 + i * 0.01)})
                    .ok());
  }
  EXPECT_TRUE(w.Finish().ok());
  if (packets != nullptr) *packets = w.packets_emitted();
  return w.TakeOutput();
}

TEST(PacketStreamTest, PacketCountMatchesRows) {
  size_t packets = 0;
  MakeStream(2500, 1000, StreamEncoding::kBinary, &packets);
  // 1000 + 1000 + 500(final, PKTLAST).
  EXPECT_EQ(packets, 3u);

  MakeStream(3000, 1000, StreamEncoding::kBinary, &packets);
  // 3 full packets plus an empty trailing PKTLAST packet.
  EXPECT_EQ(packets, 4u);
}

TEST(PacketStreamTest, ReadAllReassembles) {
  std::string bytes = MakeStream(2500, 1000);
  auto table = PacketStreamReader::ReadAll(bytes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2500u);
  EXPECT_EQ(*table->GetInt64(0, 0), 0);
  EXPECT_EQ(*table->GetInt64(2499, 0), 2499);
  EXPECT_FLOAT_EQ(*table->GetFloat(100, 1), 16.0f);
}

TEST(PacketStreamTest, PacketsArriveInSequence) {
  std::string bytes = MakeStream(2500, 1000);
  std::vector<size_t> seqs;
  bool last_seen = false;
  Status st = PacketStreamReader::Consume(
      bytes, [&](const Table&, const PacketStreamReader::PacketInfo& info) {
        seqs.push_back(info.sequence);
        last_seen = info.last;
        return true;
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(seqs, (std::vector<size_t>{0, 1, 2}));
  EXPECT_TRUE(last_seen);
}

TEST(PacketStreamTest, ConsumerCanStopEarly) {
  std::string bytes = MakeStream(5000, 500);
  size_t packets_seen = 0;
  Status st = PacketStreamReader::Consume(
      bytes, [&](const Table&, const PacketStreamReader::PacketInfo&) {
        return ++packets_seen < 2;  // Stop after two packets (ASAP use).
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(packets_seen, 2u);
}

TEST(PacketStreamTest, AsciiEncodingRoundTrips) {
  std::string bytes = MakeStream(123, 50, StreamEncoding::kAscii);
  auto table = PacketStreamReader::ReadAll(bytes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 123u);
  EXPECT_EQ(*table->GetInt64(122, 0), 122);
}

TEST(PacketStreamTest, SinkStreamsPackets) {
  std::vector<std::string> packets;
  PacketStreamWriter w(Schema(), {.rows_per_packet = 10},
                       [&](std::string p) { packets.push_back(std::move(p)); });
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(w.Append({int64_t{i}, 1.0f}).ok());
  }
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(packets.size(), 3u);
  // Each packet is independently parseable (self-contained HDU).
  for (const std::string& p : packets) {
    size_t offset = 0;
    EXPECT_TRUE(BinaryTable::Parse(p, &offset).ok());
  }
}

TEST(PacketStreamTest, AppendAfterFinishFails) {
  PacketStreamWriter w(Schema(), {.rows_per_packet = 10});
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(w.Append({int64_t{1}, 1.0f}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(w.Finish().code(), StatusCode::kFailedPrecondition);
}

TEST(PacketStreamTest, MissingLastPacketIsCorruption) {
  size_t packets = 0;
  std::string bytes = MakeStream(30, 10, StreamEncoding::kBinary, &packets);
  ASSERT_EQ(packets, 4u);
  // Drop the final packet (the one holding PKTLAST = T).
  size_t cut = bytes.size() / 4 * 3;
  // Packets are equal-sized except potentially the last; find a clean cut
  // by re-consuming three packets' worth: simpler -- truncate at 3/4 of
  // the blocks. All packets here have identical size.
  std::string truncated = bytes.substr(0, cut);
  Status st = PacketStreamReader::Consume(
      truncated,
      [](const Table&, const PacketStreamReader::PacketInfo&) {
        return true;
      });
  EXPECT_FALSE(st.ok());
}

TEST(PacketStreamTest, EmptyStreamHasOnePacket) {
  PacketStreamWriter w(Schema(), {.rows_per_packet = 10});
  ASSERT_TRUE(w.Finish().ok());
  std::string bytes = w.TakeOutput();
  auto table = PacketStreamReader::ReadAll(bytes);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
}

TEST(PacketStreamTest, RowsWrittenCounter) {
  PacketStreamWriter w(Schema(), {.rows_per_packet = 7});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(w.Append({int64_t{i}, 0.0f}).ok());
  }
  EXPECT_EQ(w.rows_written(), 20u);
}

}  // namespace
}  // namespace sdss::fits
