#include "fits/card.h"

#include <gtest/gtest.h>

namespace sdss::fits {
namespace {

TEST(CardTest, SerializeIsExactly80Chars) {
  EXPECT_EQ(Card("SIMPLE", true).Serialize().size(), 80u);
  EXPECT_EQ(Card("NAXIS", int64_t{2}).Serialize().size(), 80u);
  EXPECT_EQ(Card("EXPTIME", 55.0, "effective exposure").Serialize().size(),
            80u);
  EXPECT_EQ(Card("OBJECT", std::string("M31")).Serialize().size(), 80u);
  EXPECT_EQ(Card::End().Serialize().size(), 80u);
  EXPECT_EQ(Card::Comment("hello world").Serialize().size(), 80u);
}

TEST(CardTest, LogicalRoundTrip) {
  for (bool v : {true, false}) {
    auto parsed = Card::Parse(Card("SIMPLE", v).Serialize());
    ASSERT_TRUE(parsed.ok());
    auto b = parsed->AsBool();
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*b, v);
  }
}

TEST(CardTest, IntegerRoundTrip) {
  for (int64_t v : {0ll, 42ll, -17ll, 2880ll, 123456789012345ll}) {
    auto parsed = Card::Parse(Card("NAXIS1", v).Serialize());
    ASSERT_TRUE(parsed.ok()) << v;
    auto i = parsed->AsInt();
    ASSERT_TRUE(i.ok()) << v;
    EXPECT_EQ(*i, v);
  }
}

TEST(CardTest, DoubleRoundTrip) {
  for (double v : {0.5, -3.25, 1.23456789012345e10, 8.0e-12}) {
    auto parsed = Card::Parse(Card("CRVAL1", v).Serialize());
    ASSERT_TRUE(parsed.ok()) << v;
    auto d = parsed->AsDouble();
    ASSERT_TRUE(d.ok()) << v;
    EXPECT_DOUBLE_EQ(*d, v);
  }
}

TEST(CardTest, StringRoundTrip) {
  for (const char* v : {"SDSS", "a longer string value", "", "x"}) {
    auto parsed = Card::Parse(Card("SURVEY", std::string(v)).Serialize());
    ASSERT_TRUE(parsed.ok()) << v;
    auto s = parsed->AsString();
    ASSERT_TRUE(s.ok()) << v;
    EXPECT_EQ(*s, v);
  }
}

TEST(CardTest, StringWithQuotesEscapes) {
  std::string v = "O'Brien's field";
  auto parsed = Card::Parse(Card("OBSERVER", v).Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed->AsString(), v);
}

TEST(CardTest, CommentSurvivesRoundTrip) {
  Card c("EXPTIME", 55.0, "effective exposure [s]");
  auto parsed = Card::Parse(c.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->comment(), "effective exposure [s]");
  EXPECT_DOUBLE_EQ(*parsed->AsDouble(), 55.0);
}

TEST(CardTest, KeyIsUpperCasedAndTruncated) {
  Card c("verylongkeyword", int64_t{1});
  std::string rec = c.Serialize();
  EXPECT_EQ(rec.substr(0, 8), "VERYLONG");
}

TEST(CardTest, EndCardParses) {
  auto parsed = Card::Parse(Card::End().Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_end());
}

TEST(CardTest, CommentCardParses) {
  auto parsed = Card::Parse(Card::Comment("this is a note").Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_comment());
  EXPECT_EQ(parsed->comment(), "this is a note");
}

TEST(CardTest, ParseRejectsWrongLength) {
  EXPECT_FALSE(Card::Parse("SHORT").ok());
  EXPECT_FALSE(Card::Parse(std::string(81, ' ')).ok());
}

TEST(CardTest, ParseDExponent) {
  std::string rec = "CRVAL2  =         1.5D3                                 "
                    "                        ";
  rec.resize(80, ' ');
  auto parsed = Card::Parse(rec);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(*parsed->AsDouble(), 1500.0);
}

TEST(CardTest, TypeMismatchErrors) {
  Card c("NAXIS", int64_t{2});
  EXPECT_FALSE(c.AsBool().ok());
  EXPECT_FALSE(c.AsString().ok());
  EXPECT_TRUE(c.AsDouble().ok());  // Ints widen to double.
  EXPECT_TRUE(c.AsInt().ok());
}

}  // namespace
}  // namespace sdss::fits
