#include "fits/header.h"

#include <gtest/gtest.h>

namespace sdss::fits {
namespace {

Header MakeHeader() {
  Header h;
  h.Set("SIMPLE", true);
  h.Set("BITPIX", int64_t{8});
  h.Set("NAXIS", int64_t{2});
  h.Set("EXPTIME", 55.0, "effective exposure");
  h.Set("SURVEY", std::string("SDSS"));
  h.Append(Card::Comment("five-band photometric survey"));
  return h;
}

TEST(HeaderTest, SerializeIsBlockMultiple) {
  std::string bytes = MakeHeader().Serialize();
  EXPECT_EQ(bytes.size() % kBlockSize, 0u);
  EXPECT_EQ(bytes.size(), kBlockSize);  // 7 cards fit in one block.
}

TEST(HeaderTest, LargeHeaderSpansBlocks) {
  Header h;
  for (int i = 0; i < 40; ++i) {
    h.Set("KEY" + std::to_string(i), int64_t{i});
  }
  std::string bytes = h.Serialize();
  EXPECT_EQ(bytes.size(), 2 * kBlockSize);  // 41 cards -> 2 blocks.
}

TEST(HeaderTest, RoundTrip) {
  std::string bytes = MakeHeader().Serialize();
  size_t offset = 0;
  auto h = Header::Parse(bytes, &offset);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(*h->GetBool("SIMPLE"), true);
  EXPECT_EQ(*h->GetInt("BITPIX"), 8);
  EXPECT_DOUBLE_EQ(*h->GetDouble("EXPTIME"), 55.0);
  EXPECT_EQ(*h->GetString("SURVEY"), "SDSS");
}

TEST(HeaderTest, SetReplacesExisting) {
  Header h;
  h.Set("NAXIS", int64_t{2});
  h.Set("NAXIS", int64_t{3});
  EXPECT_EQ(*h.GetInt("NAXIS"), 3);
  // Only one card with that key.
  int count = 0;
  for (const Card& c : h.cards()) {
    if (c.key() == "NAXIS") ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST(HeaderTest, FindMissingKeyIsNotFound) {
  Header h = MakeHeader();
  EXPECT_FALSE(h.Find("NOPE").ok());
  EXPECT_EQ(h.GetInt("NOPE").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(h.Has("NOPE"));
  EXPECT_TRUE(h.Has("SIMPLE"));
}

TEST(HeaderTest, ParseWithoutEndIsCorruption) {
  std::string bytes(kBlockSize, ' ');
  size_t offset = 0;
  auto h = Header::Parse(bytes, &offset);
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kCorruption);
}

TEST(HeaderTest, ParseAdvancesOffsetPastPadding) {
  std::string bytes = MakeHeader().Serialize() + "DATA";
  size_t offset = 0;
  auto h = Header::Parse(bytes, &offset);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(bytes.substr(offset, 4), "DATA");
}

TEST(HeaderTest, CommentsPreserved) {
  std::string bytes = MakeHeader().Serialize();
  size_t offset = 0;
  auto h = Header::Parse(bytes, &offset);
  ASSERT_TRUE(h.ok());
  bool found = false;
  for (const Card& c : h->cards()) {
    if (c.is_comment() &&
        c.comment() == "five-band photometric survey") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sdss::fits
