// Adversarial-input tests: the FITS parsers must reject (never crash on)
// corrupted, truncated, bit-flipped, or random input. Seeds are fixed so
// failures reproduce.

#include <gtest/gtest.h>

#include "core/random.h"
#include "fits/packet_stream.h"
#include "fits/table.h"

namespace sdss::fits {
namespace {

std::string RandomBytes(Rng* rng, size_t n) {
  std::string s(n, '\0');
  for (char& c : s) {
    c = static_cast<char>(rng->UniformInt(0, 255));
  }
  return s;
}

std::string RandomPrintable(Rng* rng, size_t n) {
  std::string s(n, ' ');
  for (char& c : s) {
    c = static_cast<char>(rng->UniformInt(32, 126));
  }
  return s;
}

Table SampleTable() {
  Table t(std::vector<ColumnSpec>{{"ID", ColumnType::kInt64, 0, ""},
                                  {"V", ColumnType::kDouble, 0, ""},
                                  {"N", ColumnType::kString, 8, ""}});
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(
        t.AppendRow({int64_t{i}, i * 0.5, std::string("row")}).ok());
  }
  return t;
}

TEST(FitsFuzzTest, CardParseNeverCrashesOnPrintableGarbage) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    std::string record = RandomPrintable(&rng, 80);
    auto card = Card::Parse(record);  // ok() or error; never crashes.
    if (card.ok() && !card->is_comment() && !card->is_end()) {
      // Parsed cards must re-serialize to 80 chars.
      EXPECT_EQ(card->Serialize().size(), 80u);
    }
  }
}

TEST(FitsFuzzTest, CardParseNeverCrashesOnBinaryGarbage) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    auto card = Card::Parse(RandomBytes(&rng, 80));
    (void)card;
  }
}

TEST(FitsFuzzTest, HeaderParseOnRandomBlocks) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::string block = RandomPrintable(&rng, kBlockSize);
    size_t offset = 0;
    auto header = Header::Parse(block, &offset);
    // Random text virtually never contains END: expect an error, and
    // offset must not run past the input.
    EXPECT_LE(offset, block.size());
    (void)header;
  }
}

TEST(FitsFuzzTest, BinaryTableRejectsBitFlips) {
  std::string bytes = BinaryTable::Serialize(SampleTable());
  Rng rng(4);
  int rejected = 0, accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    // Flip a byte in the header region (structure carriers).
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kBlockSize) - 1));
    mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    size_t offset = 0;
    auto parsed = BinaryTable::Parse(mutated, &offset);
    if (parsed.ok()) {
      ++accepted;  // Flip hit a comment/padding byte: still valid.
    } else {
      ++rejected;
    }
  }
  // Most header corruptions must be detected.
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(rejected + accepted, 200);
}

TEST(FitsFuzzTest, BinaryTableRejectsTruncationAtEveryBlock) {
  std::string bytes = BinaryTable::Serialize(SampleTable());
  for (size_t cut = 0; cut < bytes.size(); cut += kBlockSize) {
    std::string truncated = bytes.substr(0, cut);
    size_t offset = 0;
    auto parsed = BinaryTable::Parse(truncated, &offset);
    EXPECT_FALSE(parsed.ok()) << "cut at " << cut;
  }
}

TEST(FitsFuzzTest, PacketStreamRejectsShuffledPackets) {
  PacketStreamWriter w(
      std::vector<ColumnSpec>{{"ID", ColumnType::kInt64, 0, ""}},
      {.rows_per_packet = 4});
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(w.Append({int64_t{i}}).ok());
  }
  ASSERT_TRUE(w.Finish().ok());
  std::string bytes = w.TakeOutput();

  // All packets are the same size here; swap the first two.
  size_t packet_size = bytes.size() / 4;
  std::string shuffled = bytes.substr(packet_size, packet_size) +
                         bytes.substr(0, packet_size) +
                         bytes.substr(2 * packet_size);
  Status st = PacketStreamReader::Consume(
      shuffled, [](const Table&, const PacketStreamReader::PacketInfo&) {
        return true;
      });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(FitsFuzzTest, PacketStreamRejectsTrailingGarbage) {
  PacketStreamWriter w(
      std::vector<ColumnSpec>{{"ID", ColumnType::kInt64, 0, ""}},
      {.rows_per_packet = 4});
  ASSERT_TRUE(w.Append({int64_t{1}}).ok());
  ASSERT_TRUE(w.Finish().ok());
  Rng rng(5);
  std::string bytes = w.TakeOutput() + RandomBytes(&rng, kBlockSize);
  Status st = PacketStreamReader::Consume(
      bytes, [](const Table&, const PacketStreamReader::PacketInfo&) {
        return true;
      });
  EXPECT_FALSE(st.ok());
}

TEST(FitsFuzzTest, EmptyInputIsRejectedEverywhere) {
  size_t offset = 0;
  EXPECT_FALSE(Header::Parse("", &offset).ok());
  offset = 0;
  EXPECT_FALSE(BinaryTable::Parse("", &offset).ok());
  offset = 0;
  EXPECT_FALSE(AsciiTable::Parse("", &offset).ok());
  EXPECT_FALSE(PacketStreamReader::ReadAll("").ok());
}

TEST(FitsFuzzTest, RoundTripSurvivesManySchemas) {
  // Randomized schemas and row counts, round-tripped bit-exactly.
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<ColumnSpec> schema;
    int cols = static_cast<int>(rng.UniformInt(1, 6));
    for (int c = 0; c < cols; ++c) {
      ColumnSpec spec;
      spec.name = "C" + std::to_string(c);
      switch (rng.UniformInt(0, 4)) {
        case 0:
          spec.type = ColumnType::kFloat;
          break;
        case 1:
          spec.type = ColumnType::kDouble;
          break;
        case 2:
          spec.type = ColumnType::kInt32;
          break;
        case 3:
          spec.type = ColumnType::kInt64;
          break;
        default:
          spec.type = ColumnType::kString;
          spec.width = static_cast<size_t>(rng.UniformInt(1, 16));
          break;
      }
      schema.push_back(spec);
    }
    Table t(schema);
    int rows = static_cast<int>(rng.UniformInt(0, 50));
    for (int r = 0; r < rows; ++r) {
      std::vector<Table::Cell> cells;
      for (const ColumnSpec& spec : schema) {
        switch (spec.type) {
          case ColumnType::kFloat:
            cells.emplace_back(static_cast<float>(rng.Gaussian()));
            break;
          case ColumnType::kDouble:
            cells.emplace_back(rng.Gaussian());
            break;
          case ColumnType::kInt32:
            cells.emplace_back(
                static_cast<int32_t>(rng.UniformInt(-1000, 1000)));
            break;
          case ColumnType::kInt64:
            cells.emplace_back(rng.UniformInt(-1000000, 1000000));
            break;
          case ColumnType::kString:
            cells.emplace_back(std::string("s") +
                               std::to_string(rng.UniformInt(0, 99)));
            break;
        }
      }
      ASSERT_TRUE(t.AppendRow(cells).ok());
    }
    std::string bytes = BinaryTable::Serialize(t);
    size_t offset = 0;
    auto parsed = BinaryTable::Parse(bytes, &offset);
    ASSERT_TRUE(parsed.ok()) << trial;
    ASSERT_EQ(parsed->num_rows(), t.num_rows());
    // Re-serialization is byte-identical (canonical form).
    EXPECT_EQ(BinaryTable::Serialize(*parsed), bytes) << trial;
  }
}

}  // namespace
}  // namespace sdss::fits
