#include "fits/image.h"

#include <gtest/gtest.h>

#include "core/random.h"

namespace sdss::fits {
namespace {

Image MakeGradient(size_t w, size_t h) {
  Image img(w, h);
  for (size_t y = 0; y < h; ++y) {
    for (size_t x = 0; x < w; ++x) {
      img.set(x, y, static_cast<float>(x) + 100.0f * static_cast<float>(y));
    }
  }
  return img;
}

TEST(ImageTest, AccessorsAndFlux) {
  Image img(4, 3);
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  img.set(1, 2, 5.0f);
  img.add(1, 2, 2.5f);
  EXPECT_FLOAT_EQ(img.at(1, 2), 7.5f);
  EXPECT_DOUBLE_EQ(img.TotalFlux(), 7.5);
  EXPECT_FLOAT_EQ(img.MinPixel(), 0.0f);
  EXPECT_FLOAT_EQ(img.MaxPixel(), 7.5f);
}

TEST(ImageTest, SerializeIsBlockAligned) {
  std::string bytes = MakeGradient(32, 32).Serialize();
  EXPECT_EQ(bytes.size() % kBlockSize, 0u);
  // Header block + ceil(32*32*2 / 2880) data blocks.
  EXPECT_EQ(bytes.size(), kBlockSize + kBlockSize);
}

TEST(ImageTest, RoundTripWithinQuantization) {
  Image img = MakeGradient(32, 16);
  std::string bytes = img.Serialize();
  size_t offset = 0;
  auto back = Image::Parse(bytes, &offset);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(offset, bytes.size());
  ASSERT_EQ(back->width(), 32u);
  ASSERT_EQ(back->height(), 16u);
  // Quantization error bound: dynamic range / 65534.
  float tolerance =
      (img.MaxPixel() - img.MinPixel()) / 65534.0f * 1.01f + 1e-6f;
  for (size_t y = 0; y < 16; ++y) {
    for (size_t x = 0; x < 32; ++x) {
      EXPECT_NEAR(back->at(x, y), img.at(x, y), tolerance);
    }
  }
}

TEST(ImageTest, ConstantImageRoundTripsExactly) {
  Image img(8, 8);
  for (size_t y = 0; y < 8; ++y) {
    for (size_t x = 0; x < 8; ++x) img.set(x, y, 42.5f);
  }
  std::string bytes = img.Serialize();
  size_t offset = 0;
  auto back = Image::Parse(bytes, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_FLOAT_EQ(back->at(3, 3), 42.5f);
}

TEST(ImageTest, NegativeValuesSupported) {
  Image img(4, 4);
  img.set(0, 0, -100.0f);
  img.set(3, 3, 100.0f);
  std::string bytes = img.Serialize();
  size_t offset = 0;
  auto back = Image::Parse(bytes, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back->at(0, 0), -100.0f, 0.01f);
  EXPECT_NEAR(back->at(3, 3), 100.0f, 0.01f);
}

TEST(ImageTest, ExtraHeaderCardsSurvive) {
  Header extra;
  extra.Set("OBJID", int64_t{12345});
  extra.Set("BAND", std::string("R"));
  std::string bytes = MakeGradient(8, 8).Serialize(extra);
  size_t offset = 0;
  Header parsed_header;
  auto img = Image::Parse(bytes, &offset, &parsed_header);
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(*parsed_header.GetInt("OBJID"), 12345);
  EXPECT_EQ(*parsed_header.GetString("BAND"), "R");
}

TEST(ImageTest, TruncatedDataRejected) {
  std::string bytes = MakeGradient(32, 32).Serialize();
  std::string cut = bytes.substr(0, kBlockSize + 100);
  size_t offset = 0;
  EXPECT_FALSE(Image::Parse(cut, &offset).ok());
}

TEST(ImageTest, NonImageInputRejected) {
  Header h;
  h.Set("XTENSION", std::string("BINTABLE"));
  std::string bytes = h.Serialize();
  size_t offset = 0;
  auto img = Image::Parse(bytes, &offset);
  EXPECT_FALSE(img.ok());
}

TEST(ImageTest, MultipleHdusParseSequentially) {
  std::string bytes =
      MakeGradient(8, 8).Serialize() + MakeGradient(16, 4).Serialize();
  size_t offset = 0;
  auto first = Image::Parse(bytes, &offset);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->width(), 8u);
  auto second = Image::Parse(bytes, &offset);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->width(), 16u);
  EXPECT_EQ(offset, bytes.size());
}

TEST(ImageTest, RandomImagesRoundTrip) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    size_t w = static_cast<size_t>(rng.UniformInt(1, 48));
    size_t h = static_cast<size_t>(rng.UniformInt(1, 48));
    Image img(w, h);
    for (size_t y = 0; y < h; ++y) {
      for (size_t x = 0; x < w; ++x) {
        img.set(x, y, static_cast<float>(rng.Gaussian(0, 1000)));
      }
    }
    std::string bytes = img.Serialize();
    size_t offset = 0;
    auto back = Image::Parse(bytes, &offset);
    ASSERT_TRUE(back.ok()) << trial;
    float tol = (img.MaxPixel() - img.MinPixel()) / 65534.0f * 1.01f + 1e-4f;
    EXPECT_NEAR(back->TotalFlux(), img.TotalFlux(),
                static_cast<double>(tol) * static_cast<double>(w * h));
  }
}

}  // namespace
}  // namespace sdss::fits
