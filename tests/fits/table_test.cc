#include "fits/table.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sdss::fits {
namespace {

std::vector<ColumnSpec> TestSchema() {
  return {
      {"ID", ColumnType::kInt64, 0, ""},
      {"RA", ColumnType::kDouble, 0, "deg"},
      {"MAG_R", ColumnType::kFloat, 0, "mag"},
      {"FLAGS", ColumnType::kInt32, 0, ""},
      {"NAME", ColumnType::kString, 12, ""},
  };
}

Table MakeTable(size_t rows) {
  Table t(TestSchema());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(t.AppendRow({static_cast<int64_t>(i + 1),
                             10.0 + static_cast<double>(i) * 0.25,
                             static_cast<float>(18.0 + i * 0.1),
                             static_cast<int32_t>(i % 7),
                             std::string("obj-") + std::to_string(i)})
                    .ok());
  }
  return t;
}

TEST(TableTest, SchemaAccessors) {
  Table t = MakeTable(3);
  EXPECT_EQ(t.num_columns(), 5u);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(*t.ColumnIndex("RA"), 1u);
  EXPECT_FALSE(t.ColumnIndex("NOPE").ok());
  // 8 + 8 + 4 + 4 + 12 bytes per binary row.
  EXPECT_EQ(t.RowBytes(), 36u);
}

TEST(TableTest, TypedGetters) {
  Table t = MakeTable(2);
  EXPECT_EQ(*t.GetInt64(1, 0), 2);
  EXPECT_DOUBLE_EQ(*t.GetDouble(1, 1), 10.25);
  EXPECT_FLOAT_EQ(*t.GetFloat(1, 2), 18.1f);
  EXPECT_EQ(*t.GetInt32(1, 3), 1);
  EXPECT_EQ(*t.GetString(1, 4), "obj-1");
}

TEST(TableTest, GetNumericWidens) {
  Table t = MakeTable(1);
  EXPECT_DOUBLE_EQ(*t.GetNumeric(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(*t.GetNumeric(0, 1), 10.0);
  EXPECT_NEAR(*t.GetNumeric(0, 2), 18.0, 1e-5);
  EXPECT_FALSE(t.GetNumeric(0, 4).ok());  // String column.
}

TEST(TableTest, OutOfRangeAccess) {
  Table t = MakeTable(2);
  EXPECT_EQ(t.GetDouble(5, 1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(t.GetDouble(0, 9).status().code(), StatusCode::kOutOfRange);
}

TEST(TableTest, TypeMismatchOnGet) {
  Table t = MakeTable(1);
  EXPECT_FALSE(t.GetFloat(0, 1).ok());   // RA is double.
  EXPECT_FALSE(t.GetInt32(0, 0).ok());   // ID is int64.
}

TEST(TableTest, AppendRowValidatesArityAndTypes) {
  Table t(TestSchema());
  EXPECT_FALSE(t.AppendRow({int64_t{1}}).ok());  // Too few cells.
  EXPECT_FALSE(t.AppendRow({int64_t{1}, 1.0, 1.0f, int32_t{0}, 5.0}).ok());
  EXPECT_EQ(t.num_rows(), 0u);  // Failed appends leave no partial rows.
}

TEST(TableTest, IntAndFloatWidening) {
  Table t(std::vector<ColumnSpec>{{"A", ColumnType::kInt64, 0, ""},
                                  {"B", ColumnType::kDouble, 0, ""}});
  EXPECT_TRUE(t.AppendRow({int32_t{7}, 2.5f}).ok());
  EXPECT_EQ(*t.GetInt64(0, 0), 7);
  EXPECT_DOUBLE_EQ(*t.GetDouble(0, 1), 2.5);
}

TEST(TableTest, StringTruncatedToWidth) {
  Table t(std::vector<ColumnSpec>{{"S", ColumnType::kString, 4, ""}});
  EXPECT_TRUE(t.AppendRow({std::string("abcdefgh")}).ok());
  EXPECT_EQ(*t.GetString(0, 0), "abcd");
}

TEST(BinaryTableTest, SerializeIsBlockAligned) {
  std::string bytes = BinaryTable::Serialize(MakeTable(100));
  EXPECT_EQ(bytes.size() % kBlockSize, 0u);
}

TEST(BinaryTableTest, RoundTrip) {
  Table t = MakeTable(257);
  std::string bytes = BinaryTable::Serialize(t);
  size_t offset = 0;
  auto parsed = BinaryTable::Parse(bytes, &offset);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(offset, bytes.size());
  ASSERT_EQ(parsed->num_rows(), t.num_rows());
  ASSERT_EQ(parsed->num_columns(), t.num_columns());
  for (size_t r = 0; r < t.num_rows(); r += 17) {
    EXPECT_EQ(*parsed->GetInt64(r, 0), *t.GetInt64(r, 0));
    EXPECT_DOUBLE_EQ(*parsed->GetDouble(r, 1), *t.GetDouble(r, 1));
    EXPECT_FLOAT_EQ(*parsed->GetFloat(r, 2), *t.GetFloat(r, 2));
    EXPECT_EQ(*parsed->GetInt32(r, 3), *t.GetInt32(r, 3));
    EXPECT_EQ(*parsed->GetString(r, 4), *t.GetString(r, 4));
  }
}

TEST(BinaryTableTest, RoundTripPreservesSchema) {
  Table t = MakeTable(5);
  std::string bytes = BinaryTable::Serialize(t);
  size_t offset = 0;
  auto parsed = BinaryTable::Parse(bytes, &offset);
  ASSERT_TRUE(parsed.ok());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(parsed->columns()[c].name, t.columns()[c].name);
    EXPECT_EQ(parsed->columns()[c].type, t.columns()[c].type);
  }
  EXPECT_EQ(parsed->columns()[1].unit, "deg");
}

TEST(BinaryTableTest, SpecialFloatValues) {
  Table t(std::vector<ColumnSpec>{{"V", ColumnType::kDouble, 0, ""}});
  EXPECT_TRUE(t.AppendRow({-0.0}).ok());
  EXPECT_TRUE(
      t.AppendRow({std::numeric_limits<double>::infinity()}).ok());
  EXPECT_TRUE(t.AppendRow({1e-300}).ok());
  std::string bytes = BinaryTable::Serialize(t);
  size_t offset = 0;
  auto parsed = BinaryTable::Parse(bytes, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed->GetDouble(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(*parsed->GetDouble(1, 0)));
  EXPECT_DOUBLE_EQ(*parsed->GetDouble(2, 0), 1e-300);
}

TEST(BinaryTableTest, EmptyTableRoundTrips) {
  Table t(TestSchema());
  std::string bytes = BinaryTable::Serialize(t);
  size_t offset = 0;
  auto parsed = BinaryTable::Parse(bytes, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 0u);
}

TEST(BinaryTableTest, ExtraHeaderCardsSurvive) {
  Header extra;
  extra.Set("CHUNK", int64_t{17}, "observation night");
  std::string bytes = BinaryTable::Serialize(MakeTable(3), extra);
  size_t offset = 0;
  Header parsed_header;
  auto parsed = BinaryTable::Parse(bytes, &offset, &parsed_header);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed_header.GetInt("CHUNK"), 17);
}

TEST(BinaryTableTest, TruncatedDataIsCorruption) {
  std::string bytes = BinaryTable::Serialize(MakeTable(100));
  std::string cut = bytes.substr(0, kBlockSize + 10);  // Header + crumbs.
  size_t offset = 0;
  auto parsed = BinaryTable::Parse(cut, &offset);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
}

TEST(AsciiTableTest, RoundTrip) {
  Table t = MakeTable(41);
  std::string bytes = AsciiTable::Serialize(t);
  EXPECT_EQ(bytes.size() % kBlockSize, 0u);
  size_t offset = 0;
  auto parsed = AsciiTable::Parse(bytes, &offset);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); r += 5) {
    EXPECT_EQ(*parsed->GetInt64(r, 0), *t.GetInt64(r, 0));
    EXPECT_DOUBLE_EQ(*parsed->GetDouble(r, 1), *t.GetDouble(r, 1));
    EXPECT_FLOAT_EQ(*parsed->GetFloat(r, 2), *t.GetFloat(r, 2));
    EXPECT_EQ(*parsed->GetInt32(r, 3), *t.GetInt32(r, 3));
    EXPECT_EQ(*parsed->GetString(r, 4), *t.GetString(r, 4));
  }
}

TEST(AsciiTableTest, IsHumanReadable) {
  Table t(std::vector<ColumnSpec>{{"NAME", ColumnType::kString, 8, ""}});
  EXPECT_TRUE(t.AppendRow({std::string("GALAXY")}).ok());
  std::string bytes = AsciiTable::Serialize(t);
  EXPECT_NE(bytes.find("GALAXY"), std::string::npos);
}

TEST(TFormTest, Codes) {
  EXPECT_EQ(TFormCode(ColumnType::kFloat), 'E');
  EXPECT_EQ(TFormCode(ColumnType::kDouble), 'D');
  EXPECT_EQ(TFormCode(ColumnType::kInt32), 'J');
  EXPECT_EQ(TFormCode(ColumnType::kInt64), 'K');
  EXPECT_EQ(TFormCode(ColumnType::kString), 'A');
  EXPECT_EQ(TypeSize(ColumnType::kFloat), 4u);
  EXPECT_EQ(TypeSize(ColumnType::kDouble), 8u);
}

}  // namespace
}  // namespace sdss::fits
