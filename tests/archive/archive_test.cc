#include "archive/archive.h"

#include <gtest/gtest.h>

namespace sdss::archive {
namespace {

ArchivePipeline MakePipelineWithCampaign(int nights = 10,
                                         uint64_t objects_per_night = 1000) {
  ArchivePipeline p;
  for (int n = 0; n < nights; ++n) {
    EXPECT_TRUE(p.ObserveChunk(n, objects_per_night,
                               objects_per_night * 1333,
                               static_cast<SimSeconds>(n) * kSimDay)
                    .ok());
  }
  return p;
}

TEST(ArchiveTest, TierNames) {
  EXPECT_STREQ(TierName(Tier::kTelescope), "T");
  EXPECT_STREQ(TierName(Tier::kOperational), "OA");
  EXPECT_STREQ(TierName(Tier::kMasterScience), "MSA");
  EXPECT_STREQ(TierName(Tier::kLocal), "LA");
  EXPECT_STREQ(TierName(Tier::kMasterPublic), "MPA");
  EXPECT_STREQ(TierName(Tier::kPublic), "PA");
}

TEST(ArchiveTest, ChunkFlowsThroughTiersInOrder) {
  ArchivePipeline p;
  ASSERT_TRUE(p.ObserveChunk(0, 100, 1000, 0.0).ok());
  auto rec = p.GetChunk(0);
  ASSERT_TRUE(rec.ok());
  for (int t = 1; t < kNumTiers; ++t) {
    EXPECT_GE(rec->visible_at[t], rec->visible_at[t - 1])
        << TierName(static_cast<Tier>(t));
  }
}

TEST(ArchiveTest, DefaultDelaysMatchFigure2) {
  ArchivePipeline p;
  ASSERT_TRUE(p.ObserveChunk(0, 100, 1000, 0.0).ok());
  auto rec = p.GetChunk(0);
  ASSERT_TRUE(rec.ok());
  // 1 day to OA, +2 weeks to MSA, +2 weeks to LA.
  EXPECT_DOUBLE_EQ(rec->visible_at[1], 1 * kSimDay);
  EXPECT_DOUBLE_EQ(rec->visible_at[2], 15 * kSimDay);
  EXPECT_DOUBLE_EQ(rec->visible_at[3], 29 * kSimDay);
  // Public availability is ~1.5 years out.
  auto latency = p.TimeToPublic(0);
  ASSERT_TRUE(latency.ok());
  EXPECT_GT(*latency, 365 * kSimDay);
  EXPECT_LT(*latency, 2 * 365 * kSimDay);
}

TEST(ArchiveTest, DuplicateNightRejected) {
  ArchivePipeline p;
  ASSERT_TRUE(p.ObserveChunk(3, 10, 100, 0.0).ok());
  EXPECT_EQ(p.ObserveChunk(3, 10, 100, 1.0).code(),
            StatusCode::kAlreadyExists);
}

TEST(ArchiveTest, UnknownChunkIsNotFound) {
  ArchivePipeline p;
  EXPECT_EQ(p.GetChunk(9).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(p.TimeToPublic(9).ok());
}

TEST(ArchiveTest, VisibilityGrowsNightByNight) {
  ArchivePipeline p = MakePipelineWithCampaign(10, 1000);
  // At the MSA, chunks appear 15 days after their observation night.
  EXPECT_EQ(p.ObjectsVisible(Tier::kMasterScience, 14 * kSimDay), 0u);
  EXPECT_EQ(p.ObjectsVisible(Tier::kMasterScience, 15 * kSimDay), 1000u);
  EXPECT_EQ(p.ObjectsVisible(Tier::kMasterScience, 19 * kSimDay), 5000u);
  EXPECT_EQ(p.ObjectsVisible(Tier::kMasterScience, 100 * kSimDay), 10000u);
  // Nothing public until science verification completes.
  EXPECT_EQ(p.ObjectsVisible(Tier::kPublic, 100 * kSimDay), 0u);
  EXPECT_EQ(p.ObjectsVisible(Tier::kPublic, 600 * kSimDay), 10000u);
}

TEST(ArchiveTest, BytesVisibleTracksObjects) {
  ArchivePipeline p = MakePipelineWithCampaign(4, 500);
  EXPECT_EQ(p.BytesVisible(Tier::kMasterScience, 20 * kSimDay),
            p.ObjectsVisible(Tier::kMasterScience, 20 * kSimDay) * 1333);
}

TEST(ArchiveTest, RecalibrationBumpsVersionAndRepublishes) {
  ArchivePipeline p = MakePipelineWithCampaign(5, 100);
  SimSeconds recal_time = 200 * kSimDay;
  ASSERT_TRUE(p.Recalibrate(2, recal_time).ok());

  auto rec = p.GetChunk(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->version, 2);
  EXPECT_DOUBLE_EQ(
      rec->visible_at[static_cast<int>(Tier::kMasterScience)], recal_time);
  // Untouched chunks keep version 1.
  EXPECT_EQ(p.GetChunk(4)->version, 1);
}

TEST(ArchiveTest, RecalibrateWithNoChunksFails) {
  ArchivePipeline p;
  EXPECT_EQ(p.Recalibrate(5, 0.0).code(), StatusCode::kNotFound);
}

TEST(ArchiveTest, EventsAreTimeOrdered) {
  ArchivePipeline p = MakePipelineWithCampaign(6, 10);
  ASSERT_TRUE(p.Recalibrate(3, 90 * kSimDay).ok());
  auto events = p.Events();
  EXPECT_GE(events.size(), 6u * 6u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
}

TEST(ArchiveTest, LocalArchiveReplicationLag) {
  ArchivePipeline p = MakePipelineWithCampaign(3, 100);
  LocalArchiveSet sites({0.0, 2 * kSimDay, 7 * kSimDay});
  EXPECT_EQ(sites.site_count(), 3u);
  EXPECT_DOUBLE_EQ(sites.MaxLag(), 7 * kSimDay);

  SimSeconds t = 15.5 * kSimDay;  // Only night 0 has reached the MSA.
  EXPECT_EQ(sites.ObjectsVisible(p, 0, t), 100u);  // No lag: visible.
  EXPECT_EQ(sites.ObjectsVisible(p, 1, t), 0u);    // 2-day lag: not yet.
  EXPECT_EQ(sites.ObjectsVisible(p, 1, t + 2 * kSimDay), 100u);
  EXPECT_EQ(sites.ObjectsVisible(p, 9, t), 0u);    // Unknown site.
}

TEST(ArchiveTest, CustomDelaysAreRespected) {
  PipelineDelays fast;
  fast.telescope_to_operational = 1.0;
  fast.operational_to_master = 2.0;
  fast.master_to_local = 3.0;
  fast.master_to_master_public = 4.0;
  fast.master_public_to_public = 5.0;
  ArchivePipeline p(fast);
  ASSERT_TRUE(p.ObserveChunk(0, 1, 1, 100.0).ok());
  auto rec = p.GetChunk(0);
  ASSERT_TRUE(rec.ok());
  EXPECT_DOUBLE_EQ(rec->visible_at[0], 100.0);
  EXPECT_DOUBLE_EQ(rec->visible_at[1], 101.0);
  EXPECT_DOUBLE_EQ(rec->visible_at[2], 103.0);
  EXPECT_DOUBLE_EQ(rec->visible_at[3], 106.0);
  EXPECT_DOUBLE_EQ(rec->visible_at[4], 107.0);
  EXPECT_DOUBLE_EQ(rec->visible_at[5], 112.0);
}

}  // namespace
}  // namespace sdss::archive
