#include "archive/replication.h"

#include <gtest/gtest.h>

#include "catalog/sky_generator.h"

namespace sdss::archive {
namespace {

using catalog::ObjectStore;
using catalog::SkyGenerator;
using catalog::SkyModel;

ObjectStore MakeStore() {
  SkyModel m;
  m.seed = 88;
  m.num_galaxies = 8000;
  m.num_stars = 5000;
  m.num_quasars = 100;
  ObjectStore store;
  EXPECT_TRUE(store.BulkLoad(SkyGenerator(m).Generate()).ok());
  return store;
}

ReplicationManager MakeManager(size_t servers = 10, size_t replicas = 2,
                               ObjectStore* store_out = nullptr) {
  static ObjectStore store = MakeStore();
  ReplicationManager mgr(ReplicationOptions{servers, replicas});
  EXPECT_TRUE(mgr.AssignFrom(store).ok());
  if (store_out != nullptr) *store_out = store;  // Copy for inspection.
  return mgr;
}

TEST(ReplicationTest, EveryContainerGetsKReplicas) {
  ObjectStore store;
  ReplicationManager mgr = MakeManager(10, 3, &store);
  EXPECT_EQ(mgr.containers(), store.container_count());
  for (const auto& [raw, c] : store.containers()) {
    auto servers = mgr.ServersFor(raw);
    ASSERT_TRUE(servers.ok());
    EXPECT_EQ(servers->size(), 3u);
    // Replicas live on distinct servers.
    std::set<size_t> unique(servers->begin(), servers->end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(ReplicationTest, UnknownContainerIsNotFound) {
  ReplicationManager mgr = MakeManager();
  EXPECT_EQ(mgr.ServersFor(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.RouteRead(1).status().code(), StatusCode::kNotFound);
}

TEST(ReplicationTest, PlacementIsBalanced) {
  ReplicationManager mgr = MakeManager(10, 2);
  PlacementStats stats = mgr.Stats();
  EXPECT_GT(stats.total_bytes, 0u);
  EXPECT_LT(stats.imbalance, 1.5);
  EXPECT_GT(stats.min_server_bytes, 0u);
}

TEST(ReplicationTest, ReadsRoutePreferPrimary) {
  ObjectStore store;
  ReplicationManager mgr = MakeManager(10, 2, &store);
  uint64_t raw = store.containers().begin()->first;
  auto servers = mgr.ServersFor(raw);
  ASSERT_TRUE(servers.ok());
  auto route = mgr.RouteRead(raw);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(*route, (*servers)[0]);
}

TEST(ReplicationTest, SingleServerFailureKeepsEverythingAvailable) {
  ObjectStore store;
  ReplicationManager mgr = MakeManager(10, 2, &store);
  ASSERT_TRUE(mgr.MarkServerDown(0).ok());
  EXPECT_DOUBLE_EQ(mgr.AvailableFraction(), 1.0);
  // Reads route around the failure.
  for (const auto& [raw, c] : store.containers()) {
    auto route = mgr.RouteRead(raw);
    ASSERT_TRUE(route.ok());
    EXPECT_NE(*route, 0u);
  }
}

TEST(ReplicationTest, AdjacentDoubleFailureLosesSomeContainers) {
  // Replicas are placed on consecutive servers, so taking down two
  // adjacent servers kills both copies of some containers.
  ReplicationManager mgr = MakeManager(10, 2);
  ASSERT_TRUE(mgr.MarkServerDown(3).ok());
  ASSERT_TRUE(mgr.MarkServerDown(4).ok());
  EXPECT_LT(mgr.AvailableFraction(), 1.0);
  EXPECT_GT(mgr.AvailableFraction(), 0.7);
  // Recovery restores full availability.
  ASSERT_TRUE(mgr.MarkServerUp(3).ok());
  EXPECT_DOUBLE_EQ(mgr.AvailableFraction(), 1.0);
}

TEST(ReplicationTest, NonAdjacentDoubleFailureIsSurvivable) {
  ReplicationManager mgr = MakeManager(10, 2);
  ASSERT_TRUE(mgr.MarkServerDown(0).ok());
  ASSERT_TRUE(mgr.MarkServerDown(5).ok());
  EXPECT_DOUBLE_EQ(mgr.AvailableFraction(), 1.0);
}

TEST(ReplicationTest, RouteFailsWhenAllReplicasDown) {
  ObjectStore store;
  ReplicationManager mgr = MakeManager(10, 2, &store);
  ASSERT_TRUE(mgr.MarkServerDown(3).ok());
  ASSERT_TRUE(mgr.MarkServerDown(4).ok());
  bool saw_unavailable = false;
  for (const auto& [raw, c] : store.containers()) {
    auto route = mgr.RouteRead(raw);
    if (!route.ok()) {
      EXPECT_EQ(route.status().code(), StatusCode::kResourceExhausted);
      saw_unavailable = true;
    }
  }
  EXPECT_TRUE(saw_unavailable);
}

TEST(ReplicationTest, HotContainerPromotionAddsReplicas) {
  ObjectStore store;
  ReplicationManager mgr = MakeManager(10, 2, &store);
  // Heat up 5 containers heavily.
  std::vector<uint64_t> hot;
  for (const auto& [raw, c] : store.containers()) {
    if (hot.size() >= 5) break;
    hot.push_back(raw);
    mgr.RecordAccess(raw, 1000);
  }
  ASSERT_TRUE(mgr.PromoteHotContainers(/*top_fraction=*/0.002, 2).ok());
  // At least the hottest container gained replicas.
  size_t grown = 0;
  for (uint64_t raw : hot) {
    auto servers = mgr.ServersFor(raw);
    ASSERT_TRUE(servers.ok());
    if (servers->size() > 2) ++grown;
  }
  EXPECT_GE(grown, 1u);
}

TEST(ReplicationTest, PromotionValidatesArguments) {
  ReplicationManager mgr = MakeManager();
  EXPECT_FALSE(mgr.PromoteHotContainers(0.0, 1).ok());
  EXPECT_FALSE(mgr.PromoteHotContainers(1.5, 1).ok());
  ReplicationManager empty(ReplicationOptions{});
  EXPECT_EQ(empty.PromoteHotContainers(0.5, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReplicationTest, AddServersMovesBoundedFraction) {
  ReplicationManager mgr = MakeManager(10, 2);
  uint64_t total_before = mgr.Stats().total_bytes;
  double moved = mgr.AddServers(10);
  EXPECT_EQ(mgr.num_servers(), 20u);
  EXPECT_GT(moved, 0.0);
  EXPECT_LT(moved, 1.0);
  // Nothing lost; placement still balanced and fully available.
  EXPECT_EQ(mgr.Stats().total_bytes, total_before);
  EXPECT_DOUBLE_EQ(mgr.AvailableFraction(), 1.0);
  EXPECT_LT(mgr.Stats().imbalance, 1.5);
}

TEST(ReplicationTest, ReplicasClampToServerCount) {
  // Asking for more replicas than servers degrades gracefully.
  ObjectStore store = MakeStore();
  ReplicationManager mgr(ReplicationOptions{3, 8});
  ASSERT_TRUE(mgr.AssignFrom(store).ok());
  uint64_t raw = store.containers().begin()->first;
  auto servers = mgr.ServersFor(raw);
  ASSERT_TRUE(servers.ok());
  EXPECT_EQ(servers->size(), 3u);
}

TEST(ReplicationTest, ServerIndexValidation) {
  ReplicationManager mgr = MakeManager(5, 2);
  EXPECT_EQ(mgr.MarkServerDown(99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mgr.MarkServerUp(99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mgr.ServerBytes(99), 0u);
}

}  // namespace
}  // namespace sdss::archive
