// ShardedStore: placement materialization, routing, and failover hooks.

#include "archive/sharded_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "catalog/sky_generator.h"
#include "htm/trixel.h"

namespace sdss::archive {
namespace {

using catalog::ObjectStore;
using catalog::SkyGenerator;
using catalog::SkyModel;

ObjectStore MakeStore(uint64_t seed = 33) {
  SkyModel m;
  m.seed = seed;
  m.num_galaxies = 2000;
  m.num_stars = 1500;
  m.num_quasars = 40;
  ObjectStore store;
  EXPECT_TRUE(store.BulkLoad(SkyGenerator(m).Generate()).ok());
  return store;
}

ReplicationOptions Opts(size_t servers, size_t replicas) {
  ReplicationOptions o;
  o.num_servers = servers;
  o.base_replicas = replicas;
  return o;
}

TEST(ShardedStoreTest, MaterializesEveryReplica) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(4, 2));
  ASSERT_EQ(sharded.num_servers(), 4u);

  // Each container must appear in exactly base_replicas server stores,
  // so the fleet holds 2x the source data.
  uint64_t replicated_objects = 0;
  for (size_t s = 0; s < sharded.num_servers(); ++s) {
    replicated_objects += sharded.server_store(s).object_count();
  }
  EXPECT_EQ(replicated_objects, 2 * store.object_count());
}

TEST(ShardedStoreTest, LiveShardsPartitionTheSourceExactly) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(5, 2));
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());

  std::unordered_set<uint64_t> assigned_ids;
  uint64_t assigned_objects = 0;
  for (const auto& shard : *shards) {
    ASSERT_NE(shard.assigned, nullptr);
    for (uint64_t raw : *shard.assigned) {
      EXPECT_TRUE(assigned_ids.insert(raw).second)
          << "container " << raw << " routed to two shards";
      assigned_objects +=
          shard.store->containers().at(raw).objects.size();
    }
  }
  EXPECT_EQ(assigned_ids.size(), store.container_count());
  EXPECT_EQ(assigned_objects, store.object_count());
}

TEST(ShardedStoreTest, RoutingPrefersPrimaries) {
  // Placement is deterministic, so an identically configured manager
  // predicts the primaries; with every server up, routing must follow
  // them.
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(4, 2));
  ReplicationManager manager(Opts(4, 2));
  ASSERT_TRUE(manager.AssignFrom(store).ok());

  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  for (const auto& shard : *shards) {
    for (uint64_t raw : *shard.assigned) {
      auto replicas = manager.ServersFor(raw);
      ASSERT_TRUE(replicas.ok());
      EXPECT_EQ(shard.server, (*replicas)[0]) << "container " << raw;
    }
  }
}

TEST(ShardedStoreTest, FailoverReroutesToSurvivingReplica) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(4, 2));

  auto before = sharded.LiveShards();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(sharded.MarkServerDown(2).ok());
  EXPECT_FALSE(sharded.server_up(2));

  auto after = sharded.LiveShards();
  ASSERT_TRUE(after.ok());
  uint64_t objects = 0;
  for (const auto& shard : *after) {
    EXPECT_NE(shard.server, 2u) << "downed server still routed";
    for (uint64_t raw : *shard.assigned) {
      objects += shard.store->containers().at(raw).objects.size();
    }
  }
  EXPECT_EQ(objects, store.object_count());

  ASSERT_TRUE(sharded.MarkServerUp(2).ok());
  EXPECT_TRUE(sharded.server_up(2));
  auto recovered = sharded.LiveShards();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), before->size());
}

TEST(ShardedStoreTest, AllReplicasDownIsUnavailable) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(3, 1));
  for (size_t s = 0; s < sharded.num_servers(); ++s) {
    if (sharded.server_store(s).container_count() == 0) continue;
    ASSERT_TRUE(sharded.MarkServerDown(s).ok());
    auto shards = sharded.LiveShards();
    EXPECT_FALSE(shards.ok());
    ASSERT_TRUE(sharded.MarkServerUp(s).ok());
    break;
  }
}

TEST(ShardedStoreTest, MarkServerOutOfRangeFails) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(3, 2));
  EXPECT_FALSE(sharded.MarkServerDown(99).ok());
  EXPECT_FALSE(sharded.MarkServerUp(99).ok());
}

TEST(ShardedStoreTest, StatsReportPlacement) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(4, 2));
  PlacementStats stats = sharded.Stats();
  EXPECT_EQ(stats.containers, store.container_count());
  EXPECT_GT(stats.total_bytes, 0u);
}

TEST(ShardedStoreTest, PromotedHotContainerServedByHeatChosenServer) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(4, 1));

  // Heat one container far above the rest. With base_replicas = 1 its
  // lone replica is the routing choice before promotion.
  uint64_t hot = store.containers().begin()->first;
  auto before = sharded.ReplicasFor(hot);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 1u);
  size_t old_primary = (*before)[0];
  sharded.RecordAccess(hot, 100000);

  ASSERT_TRUE(sharded.PromoteHotContainers(/*top_fraction=*/0.0005, 1).ok());

  // The heat-chosen server now holds a materialized copy and is the
  // preferred read target.
  auto after = sharded.ReplicasFor(hot);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 2u);
  size_t promoted = (*after)[0];
  EXPECT_NE(promoted, old_primary);
  EXPECT_GT(sharded.server_store(promoted).containers().count(hot), 0u);

  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  bool routed = false;
  for (const auto& shard : *shards) {
    if (shard.assigned->count(hot) > 0) {
      EXPECT_EQ(shard.server, promoted)
          << "hot container not served by its heat-chosen server";
      routed = true;
    }
  }
  EXPECT_TRUE(routed);

  // The promotion is invisible to query answers: the fleet still
  // matches the source store.
  query::QueryEngine single(&store);
  query::FederatedQueryEngine fed(*shards);
  const std::string sql = "SELECT COUNT(*) FROM photo WHERE r < 21.5";
  auto expect = single.Execute(sql);
  auto got = fed.Execute(sql);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(expect->aggregate_value, got->aggregate_value);
}

TEST(ShardedStoreTest, ReplicasForFeedsShippingIntoRouting) {
  ObjectStore store = MakeStore(77);
  ShardedStore sharded(store, Opts(2, 2));

  // Bytes of one source container and the server currently serving it.
  auto bytes_of = [&store](uint64_t raw) -> uint64_t {
    auto it = store.containers().find(raw);
    return it == store.containers().end() ? 0
                                          : it->second.FullBytes();
  };
  auto served_by = [&sharded](uint64_t raw) {
    auto r = sharded.ReplicasFor(raw);
    return r.ok() ? (*r)[0] : SIZE_MAX;
  };

  // A separation two degrees wide saturates the boundary band (a level-6
  // trixel is ~1.4 degrees across): shipping dominates scanning wherever
  // most of a container's neighbors are served by the other replica.
  constexpr double kBigSepArcsec = 2.0 * 3600.0;
  constexpr double kTinySepArcsec = 0.001;

  size_t flipped = 0;
  for (const auto& [raw, container] : store.containers()) {
    auto plain = sharded.ReplicasFor(raw);
    ASSERT_TRUE(plain.ok());
    // A vanishing band never reorders: scanning dominates.
    auto tiny = sharded.ReplicasFor(raw, kTinySepArcsec);
    ASSERT_TRUE(tiny.ok());
    EXPECT_EQ(*plain, *tiny);

    auto routed = sharded.ReplicasFor(raw, kBigSepArcsec);
    ASSERT_TRUE(routed.ok());
    if ((*routed)[0] == (*plain)[0]) continue;
    ++flipped;

    // The flip must point at the replica co-located with more neighbor
    // bytes: serving there receives strictly less ghost traffic.
    auto id = htm::HtmId::FromRaw(raw);
    ASSERT_TRUE(id.ok());
    uint64_t at_old = 0, at_new = 0;
    for (htm::HtmId n : htm::Trixel::FromId(*id).Neighbors()) {
      uint64_t nbytes = bytes_of(n.raw());
      if (nbytes == 0) continue;
      size_t home = served_by(n.raw());
      if (home == (*plain)[0]) at_old += nbytes;
      if (home == (*routed)[0]) at_new += nbytes;
    }
    EXPECT_GT(at_new, at_old + bytes_of(raw))
        << "flip without a dominant shipping saving at container " << raw;
  }
  // The boundary-band estimate must actually flip some routes on this
  // sky -- otherwise the feature is dead code.
  EXPECT_GT(flipped, 0u);
}

}  // namespace
}  // namespace sdss::archive
