// ShardedStore: placement materialization, routing, and failover hooks.

#include "archive/sharded_store.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "catalog/sky_generator.h"

namespace sdss::archive {
namespace {

using catalog::ObjectStore;
using catalog::SkyGenerator;
using catalog::SkyModel;

ObjectStore MakeStore(uint64_t seed = 33) {
  SkyModel m;
  m.seed = seed;
  m.num_galaxies = 2000;
  m.num_stars = 1500;
  m.num_quasars = 40;
  ObjectStore store;
  EXPECT_TRUE(store.BulkLoad(SkyGenerator(m).Generate()).ok());
  return store;
}

ReplicationOptions Opts(size_t servers, size_t replicas) {
  ReplicationOptions o;
  o.num_servers = servers;
  o.base_replicas = replicas;
  return o;
}

TEST(ShardedStoreTest, MaterializesEveryReplica) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(4, 2));
  ASSERT_EQ(sharded.num_servers(), 4u);

  // Each container must appear in exactly base_replicas server stores,
  // so the fleet holds 2x the source data.
  uint64_t replicated_objects = 0;
  for (size_t s = 0; s < sharded.num_servers(); ++s) {
    replicated_objects += sharded.server_store(s).object_count();
  }
  EXPECT_EQ(replicated_objects, 2 * store.object_count());
}

TEST(ShardedStoreTest, LiveShardsPartitionTheSourceExactly) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(5, 2));
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());

  std::unordered_set<uint64_t> assigned_ids;
  uint64_t assigned_objects = 0;
  for (const auto& shard : *shards) {
    ASSERT_NE(shard.assigned, nullptr);
    for (uint64_t raw : *shard.assigned) {
      EXPECT_TRUE(assigned_ids.insert(raw).second)
          << "container " << raw << " routed to two shards";
      assigned_objects +=
          shard.store->containers().at(raw).objects.size();
    }
  }
  EXPECT_EQ(assigned_ids.size(), store.container_count());
  EXPECT_EQ(assigned_objects, store.object_count());
}

TEST(ShardedStoreTest, RoutingPrefersPrimaries) {
  // Placement is deterministic, so an identically configured manager
  // predicts the primaries; with every server up, routing must follow
  // them.
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(4, 2));
  ReplicationManager manager(Opts(4, 2));
  ASSERT_TRUE(manager.AssignFrom(store).ok());

  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  for (const auto& shard : *shards) {
    for (uint64_t raw : *shard.assigned) {
      auto replicas = manager.ServersFor(raw);
      ASSERT_TRUE(replicas.ok());
      EXPECT_EQ(shard.server, (*replicas)[0]) << "container " << raw;
    }
  }
}

TEST(ShardedStoreTest, FailoverReroutesToSurvivingReplica) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(4, 2));

  auto before = sharded.LiveShards();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(sharded.MarkServerDown(2).ok());
  EXPECT_FALSE(sharded.server_up(2));

  auto after = sharded.LiveShards();
  ASSERT_TRUE(after.ok());
  uint64_t objects = 0;
  for (const auto& shard : *after) {
    EXPECT_NE(shard.server, 2u) << "downed server still routed";
    for (uint64_t raw : *shard.assigned) {
      objects += shard.store->containers().at(raw).objects.size();
    }
  }
  EXPECT_EQ(objects, store.object_count());

  ASSERT_TRUE(sharded.MarkServerUp(2).ok());
  EXPECT_TRUE(sharded.server_up(2));
  auto recovered = sharded.LiveShards();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), before->size());
}

TEST(ShardedStoreTest, AllReplicasDownIsUnavailable) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(3, 1));
  for (size_t s = 0; s < sharded.num_servers(); ++s) {
    if (sharded.server_store(s).container_count() == 0) continue;
    ASSERT_TRUE(sharded.MarkServerDown(s).ok());
    auto shards = sharded.LiveShards();
    EXPECT_FALSE(shards.ok());
    ASSERT_TRUE(sharded.MarkServerUp(s).ok());
    break;
  }
}

TEST(ShardedStoreTest, MarkServerOutOfRangeFails) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(3, 2));
  EXPECT_FALSE(sharded.MarkServerDown(99).ok());
  EXPECT_FALSE(sharded.MarkServerUp(99).ok());
}

TEST(ShardedStoreTest, StatsReportPlacement) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(4, 2));
  PlacementStats stats = sharded.Stats();
  EXPECT_EQ(stats.containers, store.container_count());
  EXPECT_GT(stats.total_bytes, 0u);
}

TEST(ShardedStoreTest, PromotedHotContainerServedByHeatChosenServer) {
  ObjectStore store = MakeStore();
  ShardedStore sharded(store, Opts(4, 1));

  // Heat one container far above the rest. With base_replicas = 1 its
  // lone replica is the routing choice before promotion.
  uint64_t hot = store.containers().begin()->first;
  auto before = sharded.ReplicasFor(hot);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 1u);
  size_t old_primary = (*before)[0];
  sharded.RecordAccess(hot, 100000);

  ASSERT_TRUE(sharded.PromoteHotContainers(/*top_fraction=*/0.0005, 1).ok());

  // The heat-chosen server now holds a materialized copy and is the
  // preferred read target.
  auto after = sharded.ReplicasFor(hot);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 2u);
  size_t promoted = (*after)[0];
  EXPECT_NE(promoted, old_primary);
  EXPECT_GT(sharded.server_store(promoted).containers().count(hot), 0u);

  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  bool routed = false;
  for (const auto& shard : *shards) {
    if (shard.assigned->count(hot) > 0) {
      EXPECT_EQ(shard.server, promoted)
          << "hot container not served by its heat-chosen server";
      routed = true;
    }
  }
  EXPECT_TRUE(routed);

  // The promotion is invisible to query answers: the fleet still
  // matches the source store.
  query::QueryEngine single(&store);
  query::FederatedQueryEngine fed(*shards);
  const std::string sql = "SELECT COUNT(*) FROM photo WHERE r < 21.5";
  auto expect = single.Execute(sql);
  auto got = fed.Execute(sql);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(expect->aggregate_value, got->aggregate_value);
}

}  // namespace
}  // namespace sdss::archive
