// Shared fixture for the server suite: one 4-shard fleet per test
// process, a fresh scheduler + server per test, and the gate helper the
// backpressure and quota tests use to hold a lane worker in a known
// state (blocked in on_header, i.e. started but pre-scan).

#ifndef SDSS_TESTS_SERVER_SERVER_TEST_UTIL_H_
#define SDSS_TESTS_SERVER_SERVER_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "query/federated_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "workbench/scheduler.h"

namespace sdss::server_test {

/// A quick-lane query (spatially pruned) with a non-empty result.
inline constexpr char kQuickSql[] =
    "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 8)";

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyModel m;
    m.seed = 2100;
    m.num_galaxies = 9000;
    m.num_stars = 7000;
    m.num_quasars = 200;
    source_ = new catalog::ObjectStore();
    ASSERT_TRUE(
        source_->BulkLoad(catalog::SkyGenerator(m).Generate()).ok());
    archive::ReplicationOptions repl;
    repl.num_servers = 4;
    repl.base_replicas = 2;
    sharded_ = new archive::ShardedStore(*source_, repl);
    auto shards = sharded_->LiveShards();
    ASSERT_TRUE(shards.ok());
    engine_ = new query::FederatedQueryEngine(*shards);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete sharded_;
    delete source_;
    engine_ = nullptr;
    sharded_ = nullptr;
    source_ = nullptr;
  }

  void SetUp() override { mydb_ = std::make_unique<archive::MyDb>(); }

  void TearDown() override {
    // Server before scheduler: sessions cancel through the scheduler.
    server_.reset();
    scheduler_.reset();
  }

  static workbench::JobScheduler::Options DefaultLanes() {
    workbench::JobScheduler::Options opt;
    opt.quick_workers = 2;
    opt.long_workers = 1;
    opt.per_user_running = 1;
    opt.quick_lane_max_bytes = 4ull << 20;
    return opt;
  }

  /// Builds the scheduler + server and starts listening on an ephemeral
  /// loopback port.
  void StartServer(workbench::JobScheduler::Options lanes,
                   server::ServerOptions options) {
    scheduler_ = std::make_unique<workbench::JobScheduler>(
        engine_, mydb_.get(), lanes);
    server_ = std::make_unique<server::QueryServer>(scheduler_.get(),
                                                    std::move(options));
    ASSERT_TRUE(server_->Start().ok());
  }

  Result<server::Client> Connect(const std::string& user,
                                 const std::string& token = "") {
    return server::Client::Connect("127.0.0.1", server_->port(), user,
                                   token);
  }

  /// Occupies one lane worker with a job that has started (its header
  /// fired) but not yet scanned: the hook blocks on `gate` until the
  /// test releases it. Returns the job id.
  uint64_t BlockWorker(const std::string& user,
                       std::shared_future<void> gate) {
    workbench::StreamHooks hooks;
    hooks.on_header = [gate](const query::ResultHeader&) { gate.wait(); };
    auto id = scheduler_->SubmitStreaming(user, kQuickSql, std::move(hooks));
    EXPECT_TRUE(id.ok());
    // Wait until the job occupies its worker (header reached = running).
    for (;;) {
      auto snap = scheduler_->Snapshot(*id);
      EXPECT_TRUE(snap.ok());
      if (snap->state == workbench::JobState::kRunning) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return *id;
  }

  /// Polls until `job_id` reaches a terminal state (10 s cap).
  workbench::JobState AwaitTerminal(uint64_t job_id) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      auto snap = scheduler_->Snapshot(job_id);
      EXPECT_TRUE(snap.ok());
      if (!snap.ok()) return workbench::JobState::kFailed;
      if (snap->state != workbench::JobState::kQueued &&
          snap->state != workbench::JobState::kRunning) {
        return snap->state;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        ADD_FAILURE() << "job " << job_id << " never reached a terminal "
                      << "state (leaked worker?)";
        return snap->state;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  inline static catalog::ObjectStore* source_ = nullptr;
  inline static archive::ShardedStore* sharded_ = nullptr;
  inline static query::FederatedQueryEngine* engine_ = nullptr;
  std::unique_ptr<archive::MyDb> mydb_;
  std::unique_ptr<workbench::JobScheduler> scheduler_;
  std::unique_ptr<server::QueryServer> server_;
};

}  // namespace sdss::server_test

#endif  // SDSS_TESTS_SERVER_SERVER_TEST_UTIL_H_
