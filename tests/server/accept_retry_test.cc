// Regression test for the accept-loop fd-exhaustion bug: the server's
// accept loop used to exit on ANY accept() failure, so the first EMFILE
// burst (a long-running server under fd pressure) silently killed the
// front door -- the process stayed up but never accepted again. Now
// transient exhaustion is counted, waited out with a short backoff, and
// the queued connections are served once fds free up.
//
// Technique: lower RLIMIT_NOFILE, fill every free descriptor slot with
// dup(2), then queue SEVERAL client connections (each connect frees one
// slot for the client's own socket, and the TCP handshake completes
// into the listener's backlog without accept). The process table has
// zero free slots, so accepting any of them fails with EMFILE. We
// deliberately park multiple connections: sandboxed/instrumented
// environments can transiently free a stray descriptor and let one
// sneak through, but with several queued at least one always stays
// unacceptable, so the retry counter must climb. The regression is
// proven by (a) retries grow while starved -- the old loop would have
// exited on the first failure -- and (b) after the dummies close, every
// queued connection completes a HELLO/WELCOME handshake and fresh
// connects work.

#include <sys/resource.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/net.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/server_test_util.h"

namespace sdss::server {
namespace {

using server_test::ServerTest;

/// Restores the original RLIMIT_NOFILE whatever the test does.
struct RlimitGuard {
  rlimit orig{};
  RlimitGuard() { getrlimit(RLIMIT_NOFILE, &orig); }
  ~RlimitGuard() { setrlimit(RLIMIT_NOFILE, &orig); }
};

/// Owns a pile of dup'd descriptors; closing them is what simulates
/// "fd pressure cleared".
struct FdHoard {
  std::vector<int> fds;
  ~FdHoard() { CloseAll(); }
  void FillToLimit() {
    for (;;) {
      int fd = ::dup(0);
      if (fd < 0) break;  // EMFILE: the table is full.
      fds.push_back(fd);
    }
  }
  void FreeOne() {
    ASSERT_FALSE(fds.empty());
    ::close(fds.back());
    fds.pop_back();
  }
  void CloseAll() {
    for (int fd : fds) ::close(fd);
    fds.clear();
  }
};

class AcceptRetryTest : public ServerTest {
 protected:
  /// Polls `pred` at 1 ms until true or the deadline; returns whether it
  /// held.
  template <typename Pred>
  bool Await(const Pred& pred, int seconds = 10) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
    while (!pred()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }
};

TEST_F(AcceptRetryTest, ServerKeepsAcceptingAfterFdExhaustionClears) {
  StartServer(DefaultLanes(), ServerOptions());

  // Sanity baseline: the front door works before the squeeze.
  {
    auto ok = Connect("alice");
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_TRUE(ok->Bye().ok());
  }
  // Let the baseline session fully close before the squeeze so its two
  // descriptors don't free up mid-test. The gauge drops before the
  // session object (and its fd) is destroyed, so give the session
  // thread's last instructions a beat too.
  ASSERT_TRUE(
      Await([this] { return server_->stats().sessions_active == 0; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const ServerStats before = server_->stats();

  RlimitGuard guard;
  // Low enough to exhaust quickly, high enough that the fixture's
  // already-open descriptors sit below it harmlessly -- dup(2) fills
  // every remaining hole either way.
  rlimit squeezed = guard.orig;
  squeezed.rlim_cur = 128;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &squeezed), 0);

  FdHoard hoard;
  hoard.FillToLimit();
  ASSERT_FALSE(hoard.fds.empty()) << "limit was already exhausted";
  // Second sweep after a pause: scoop up any descriptor some background
  // thread freed between the first fill and now.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  hoard.FillToLimit();

  // Park several connections in the backlog. Each FreeOne hands the
  // client's socket(2) its slot back, so after the connect the table is
  // full again and the server cannot admit them all.
  constexpr int kPending = 4;
  std::vector<TcpConn> parked;
  for (int i = 0; i < kPending; ++i) {
    hoard.FreeOne();
    auto conn = TcpConn::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    parked.push_back(std::move(*conn));
  }

  // The accept loop must be hitting EMFILE and surviving it: retries
  // climb while the loop thread stays alive.
  ASSERT_TRUE(Await([this, &before] {
    return server_->stats().accept_retries > before.accept_retries;
  })) << "accept loop never reported a transient retry";
  // It cannot have served everything yet -- the table has no room.
  EXPECT_LT(server_->stats().sessions_accepted,
            before.sessions_accepted + kPending);

  // Pressure clears: every parked connection must now be served.
  hoard.CloseAll();
  ASSERT_TRUE(Await([this, &before] {
    return server_->stats().sessions_accepted >=
           before.sessions_accepted + kPending;
  })) << "accept loop did not resume after fds freed";

  // And the sessions are live end to end: handshake over each
  // connection that waited out the exhaustion in the backlog.
  for (auto& conn : parked) {
    HelloMsg hello;
    hello.user = "alice";
    ASSERT_TRUE(conn.WriteAll(EncodeHello(hello)).ok());
    auto welcome = ReadFrame(&conn, 1 << 20);
    ASSERT_TRUE(welcome.ok()) << welcome.status().ToString();
    ASSERT_EQ(welcome->type, MsgType::kWelcome);
    auto decoded = DecodeWelcome(welcome->payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_GT(decoded->session_id, 0u);
    conn.WriteAll(EncodeBye());
  }

  // A fresh connection works too -- the loop is fully back in business.
  auto again = Connect("bob");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->Bye().ok());
}

TEST_F(AcceptRetryTest, StopWhileStarvedShutsDownPromptly) {
  // Shutdown must not wait out the whole backoff ladder: Stop() during
  // an EMFILE squeeze returns quickly (the backoff sleeps are chopped
  // into stop-checked slices).
  StartServer(DefaultLanes(), ServerOptions());
  const ServerStats before = server_->stats();

  RlimitGuard guard;
  rlimit squeezed = guard.orig;
  squeezed.rlim_cur = 128;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &squeezed), 0);

  FdHoard hoard;
  hoard.FillToLimit();
  std::vector<TcpConn> parked;
  for (int i = 0; i < 2; ++i) {
    hoard.FreeOne();
    auto conn = TcpConn::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    parked.push_back(std::move(*conn));
  }
  ASSERT_TRUE(Await([this, &before] {
    return server_->stats().accept_retries > before.accept_retries;
  }));

  hoard.CloseAll();  // Stop() needs no fds, but teardown below might.
  auto start = std::chrono::steady_clock::now();
  server_->Stop();
  auto took = std::chrono::steady_clock::now() - start;
  EXPECT_LT(took, std::chrono::seconds(2));
}

}  // namespace
}  // namespace sdss::server
