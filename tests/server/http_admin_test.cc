// The HTTP admin endpoint: routing, Prometheus scrapes, /varz windows,
// /tracez downloads, and the acceptance path -- /healthz flipping to
// 503 while the quick lane is pinned and recovering when it drains.

#include "server/http_admin.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "core/metrics.h"
#include "core/metrics_history.h"
#include "core/net.h"
#include "core/watchdog.h"
#include "query/federated_engine.h"
#include "query/trace.h"
#include "workbench/scheduler.h"

namespace sdss::server {
namespace {

using workbench::JobScheduler;

/// One blocking HTTP/1.0 GET against the admin port; returns the raw
/// response (status line, headers, body).
std::string HttpGet(uint16_t port, const std::string& target) {
  auto conn = TcpConn::Connect("127.0.0.1", port);
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  if (!conn.ok()) return {};
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: admin\r\n\r\n";
  EXPECT_TRUE(conn->WriteAll(request).ok());
  std::string response;
  char c = 0;
  while (conn->ReadExact(&c, 1).ok()) response.push_back(c);
  return response;
}

TEST(HttpAdminHandle, RoutesAndRejects) {
  metrics::Registry registry;
  HttpAdmin::Options opt;
  opt.metrics = &registry;
  HttpAdmin admin(opt);

  EXPECT_EQ(admin.Handle("GET", "/nope").status, 404);
  EXPECT_EQ(admin.Handle("POST", "/metrics").status, 405);
  // No watchdog wired: readiness degrades to liveness.
  EXPECT_EQ(admin.Handle("GET", "/healthz").status, 200);
  EXPECT_EQ(admin.Handle("GET", "/healthz?mode=live").status, 200);
  // Optional planes answer "not configured", not 404 (the route exists).
  EXPECT_EQ(admin.Handle("GET", "/varz").status, 503);
  EXPECT_EQ(admin.Handle("GET", "/tracez").status, 503);
  EXPECT_EQ(admin.requests_served(), 6u);
  EXPECT_EQ(registry.GetCounter("admin_http_requests")->Value(), 6u);
}

TEST(HttpAdminHandle, MetricsScrapeIsPrometheusWithProcessGauges) {
  metrics::Registry registry;
  registry.GetCounter("server_queries_submitted")->Inc(7);
  HttpAdmin::Options opt;
  opt.metrics = &registry;
  HttpAdmin admin(opt);

  HttpResponse response = admin.Handle("GET", "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4");
  EXPECT_NE(response.body.find("# TYPE server_queries_submitted counter"),
            std::string::npos);
  EXPECT_NE(response.body.find("server_queries_submitted 7"),
            std::string::npos);
  // The scrape itself refreshed the process self-gauges.
  EXPECT_NE(response.body.find("process_open_fds"), std::string::npos);
  EXPECT_NE(response.body.find("process_uptime_seconds"),
            std::string::npos);
}

TEST(HttpAdminHandle, VarzParsesWindowsAndSurvivesYouth) {
  metrics::Registry registry;
  metrics::History::Options hopt;
  hopt.capacity = 16;
  metrics::History history(&registry, hopt);
  HttpAdmin::Options opt;
  opt.metrics = &registry;
  opt.history = &history;
  HttpAdmin admin(opt);

  // Too young to window: still a 200 (scrapers should not alarm on a
  // fresh process), with the reason in a comment.
  HttpResponse young = admin.Handle("GET", "/varz");
  EXPECT_EQ(young.status, 200);
  EXPECT_NE(young.body.find("# varz unavailable"), std::string::npos);

  metrics::Counter* reqs = registry.GetCounter("reqs_total");
  history.Sample(0.0);
  reqs->Inc(120);
  history.Sample(10.0);

  HttpResponse varz = admin.Handle("GET", "/varz?window=60s");
  EXPECT_EQ(varz.status, 200);
  EXPECT_NE(varz.body.find("# window"), std::string::npos);
  EXPECT_NE(varz.body.find("reqs_total rate=12.00/s delta=120"),
            std::string::npos);
  // "5m" and bare seconds parse; junk is a 400.
  EXPECT_EQ(admin.Handle("GET", "/varz?window=5m").status, 200);
  EXPECT_EQ(admin.Handle("GET", "/varz?window=90").status, 200);
  EXPECT_EQ(admin.Handle("GET", "/varz?window=soon").status, 400);
  EXPECT_EQ(admin.Handle("GET", "/varz?window=0s").status, 400);
}

TEST(HttpAdminHandle, TracezListsAndDownloadsCaptures) {
  metrics::Registry registry;
  query::TraceRing ring(4);
  query::TraceCapture slow;
  slow.job_id = 41;
  slow.user = "ana";
  slow.sql = "SELECT \"quoted\"";
  slow.seconds = 2.5;
  slow.slow = true;
  slow.chrome_json = "{\"traceEvents\":[{\"name\":\"fan_out\"}]}";
  const uint64_t slow_id = ring.Push(std::move(slow));
  query::TraceCapture sampled;
  sampled.job_id = 42;
  sampled.user = "bob";
  sampled.chrome_json = "{\"traceEvents\":[]}";
  ring.Push(std::move(sampled));

  HttpAdmin::Options opt;
  opt.metrics = &registry;
  opt.traces = &ring;
  HttpAdmin admin(opt);

  HttpResponse index = admin.Handle("GET", "/tracez");
  EXPECT_EQ(index.status, 200);
  EXPECT_EQ(index.content_type, "application/json");
  EXPECT_NE(index.body.find("\"pushes\":2"), std::string::npos);
  EXPECT_NE(index.body.find("\"user\":\"ana\""), std::string::npos);
  EXPECT_NE(index.body.find("\"sql\":\"SELECT \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(index.body.find("\"slow\":true"), std::string::npos);

  HttpResponse by_id =
      admin.Handle("GET", "/tracez?id=" + std::to_string(slow_id));
  EXPECT_EQ(by_id.status, 200);
  EXPECT_EQ(by_id.content_type, "application/json");
  EXPECT_NE(by_id.body.find("\"fan_out\""), std::string::npos);

  // latest = the most recent push, ready for check_trace.py.
  HttpResponse latest = admin.Handle("GET", "/tracez?latest=1");
  EXPECT_EQ(latest.status, 200);
  EXPECT_EQ(latest.body, "{\"traceEvents\":[]}");

  EXPECT_EQ(admin.Handle("GET", "/tracez?id=9999").status, 404);
}

TEST(HttpAdminHttp, ServesRealSocketsFramedCorrectly) {
  metrics::Registry registry;
  HttpAdmin::Options opt;
  opt.metrics = &registry;
  HttpAdmin admin(opt);
  ASSERT_TRUE(admin.Start().ok());
  ASSERT_GT(admin.port(), 0);

  std::string response = HttpGet(admin.port(), "/metrics");
  ASSERT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  // Content-Length frames exactly the body that follows the blank line.
  const size_t blank = response.find("\r\n\r\n");
  ASSERT_NE(blank, std::string::npos);
  const std::string body = response.substr(blank + 4);
  const size_t cl = response.find("Content-Length: ");
  ASSERT_NE(cl, std::string::npos);
  EXPECT_EQ(std::stoul(response.substr(cl + 16)), body.size());
  EXPECT_NE(body.find("admin_http_requests"), std::string::npos);

  EXPECT_NE(HttpGet(admin.port(), "/nope").find("HTTP/1.0 404"),
            std::string::npos);
  admin.Stop();
  // Stop is idempotent and the port is really closed.
  admin.Stop();
  EXPECT_FALSE(TcpConn::Connect("127.0.0.1", admin.port()).ok());
}

TEST(HttpAdminHttp, ConcurrentScrapesUnderRegistryChurn) {
  metrics::Registry registry;
  HttpAdmin::Options opt;
  opt.metrics = &registry;
  HttpAdmin admin(opt);
  ASSERT_TRUE(admin.Start().ok());

  // A writer hammers the registry while several scrapers pull /metrics
  // and /healthz: every response must come back well-formed.
  std::atomic<bool> stop{false};
  std::thread churn([&registry, &stop] {
    metrics::Counter* c = registry.GetCounter("churn_total");
    metrics::Histogram* h = registry.GetHistogram("churn_us");
    uint64_t i = 0;
    while (!stop.load()) {
      c->Inc();
      h->Record(++i);
    }
  });
  constexpr int kThreads = 4;
  constexpr int kRequests = 16;
  std::atomic<int> good{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([&admin, &good, t] {
      for (int i = 0; i < kRequests; ++i) {
        const std::string target =
            (t + i) % 2 == 0 ? "/metrics" : "/healthz";
        std::string response = HttpGet(admin.port(), target);
        if (response.find("HTTP/1.0 200 OK\r\n") != std::string::npos &&
            response.find("\r\n\r\n") != std::string::npos) {
          good.fetch_add(1);
        }
      }
    });
  }
  for (auto& s : scrapers) s.join();
  stop.store(true);
  churn.join();
  EXPECT_EQ(good.load(), kThreads * kRequests);
  EXPECT_EQ(admin.requests_served(),
            static_cast<uint64_t>(kThreads * kRequests));
}

// The acceptance path: a pinned quick lane flips /healthz to 503 within
// the watchdog's consecutive-sample persistence, /statusz narrates the
// state, and draining the lane recovers readiness.
class HttpAdminHealthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyModel m;
    m.seed = 2300;
    m.num_galaxies = 4000;
    m.num_stars = 3000;
    m.num_quasars = 100;
    source_ = new catalog::ObjectStore();
    ASSERT_TRUE(
        source_->BulkLoad(catalog::SkyGenerator(m).Generate()).ok());
    archive::ReplicationOptions repl;
    repl.num_servers = 2;
    repl.base_replicas = 1;
    sharded_ = new archive::ShardedStore(*source_, repl);
    auto shards = sharded_->LiveShards();
    ASSERT_TRUE(shards.ok());
    engine_ = new query::FederatedQueryEngine(*shards);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete sharded_;
    delete source_;
    engine_ = nullptr;
    sharded_ = nullptr;
    source_ = nullptr;
  }

  static catalog::ObjectStore* source_;
  static archive::ShardedStore* sharded_;
  static query::FederatedQueryEngine* engine_;
};

catalog::ObjectStore* HttpAdminHealthTest::source_ = nullptr;
archive::ShardedStore* HttpAdminHealthTest::sharded_ = nullptr;
query::FederatedQueryEngine* HttpAdminHealthTest::engine_ = nullptr;

TEST_F(HttpAdminHealthTest, HealthzFlipsWhenQuickLanePinsAndRecovers) {
  metrics::Registry registry;
  metrics::History::Options hopt;
  hopt.capacity = 32;
  metrics::History history(&registry, hopt);
  constexpr size_t kQuickDepthMax = 3;
  HealthWatchdog::Options wopt;
  wopt.rules = HealthWatchdog::DefaultRules(kQuickDepthMax);
  HealthWatchdog watchdog(&history, wopt);

  JobScheduler::Options sopt;
  sopt.quick_workers = 1;  // One worker: one blocked job pins the lane.
  sopt.long_workers = 1;
  sopt.metrics = &registry;
  archive::MyDb mydb;
  JobScheduler scheduler(engine_, &mydb, sopt);

  HttpAdmin::Options opt;
  opt.metrics = &registry;
  opt.history = &history;
  opt.watchdog = &watchdog;
  opt.scheduler = &scheduler;
  HttpAdmin admin(opt);
  ASSERT_TRUE(admin.Start().ok());

  // Two healthy samples so the gauge rules have a window to read.
  history.Sample(0.0);
  history.Sample(10.0);
  watchdog.Evaluate();
  EXPECT_NE(HttpGet(admin.port(), "/healthz").find("HTTP/1.0 200"),
            std::string::npos);

  // Wedge the quick lane: a streaming job whose batch hook parks the
  // only quick worker until we release it.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> parked{false};
  workbench::StreamHooks hooks;
  hooks.on_batch = [&](const query::RowBatch&) {
    parked.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return true;
  };
  auto wedge = scheduler.SubmitStreaming(
      "ana", "SELECT COUNT(*) FROM photo WHERE r < 23", std::move(hooks));
  ASSERT_TRUE(wedge.ok()) << wedge.status().ToString();
  while (!parked.load()) std::this_thread::yield();

  // Pile up kQuickDepthMax more behind it.
  std::vector<uint64_t> queued;
  for (size_t i = 0; i < kQuickDepthMax; ++i) {
    auto job = scheduler.Submit(
        "ana", "SELECT COUNT(*) FROM photo WHERE r < 2" +
                   std::to_string(i));
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    queued.push_back(*job);
  }
  ASSERT_GE(scheduler.LaneDepths().quick_queued, kQuickDepthMax);

  // The quick_lane_pinned rule wants the gauge at the bound for 3
  // consecutive samples -- one flip per sampler period.
  double now = 20.0;
  for (int i = 0; i < 3; ++i) {
    history.Sample(now);
    now += 10.0;
    watchdog.Evaluate();
  }
  EXPECT_FALSE(watchdog.ready());
  std::string sick = HttpGet(admin.port(), "/healthz");
  EXPECT_NE(sick.find("HTTP/1.0 503"), std::string::npos);
  EXPECT_NE(sick.find("quick_lane_pinned"), std::string::npos);
  // Liveness stays green while readiness is red: drain, don't restart.
  EXPECT_NE(HttpGet(admin.port(), "/healthz?mode=live")
                .find("HTTP/1.0 200"),
            std::string::npos);

  // /statusz narrates the same state in operator units.
  std::string statusz = HttpGet(admin.port(), "/statusz");
  EXPECT_NE(statusz.find("quick: queued=" +
                         std::to_string(kQuickDepthMax) + " running=1"),
            std::string::npos);

  // Release the wedge and drain; the rule clears on the next sample.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE(scheduler.Wait(*wedge).ok());
  for (const uint64_t id : queued) ASSERT_TRUE(scheduler.Wait(id).ok());
  history.Sample(now);
  watchdog.Evaluate();
  EXPECT_TRUE(watchdog.ready());
  EXPECT_NE(HttpGet(admin.port(), "/healthz").find("HTTP/1.0 200"),
            std::string::npos);

  // Per-user accounting now shows the drained work.
  std::string after = HttpGet(admin.port(), "/statusz");
  EXPECT_NE(after.find("ana: total=4"), std::string::npos);
  EXPECT_NE(after.find("succeeded=4"), std::string::npos);
}

}  // namespace
}  // namespace sdss::server
