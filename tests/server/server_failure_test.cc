// Failure-mode tests for the query server: the paths where the client
// misbehaves or vanishes. A disconnect mid-stream must cancel the
// running job (no leaked worker); malformed or oversized frames must
// close the session with a clean fatal ERROR; sessions of the same user
// must share the workbench per-user quota.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/server_test_util.h"

namespace sdss::server {
namespace {

using server_test::ServerTest;
using server_test::kQuickSql;
using workbench::JobState;

std::string Bytes(std::initializer_list<unsigned char> bytes) {
  return std::string(bytes.begin(), bytes.end());
}

// A spatial pair join wide enough to run for seconds: the executor
// streams pair batches bucket by bucket (with a cancel check per
// bucket), so a client that vanishes or cancels after the first batch
// does so while plenty of work remains -- the cancel lands mid-run,
// deterministically.
constexpr char kSlowStreamSql[] =
    "SELECT a.obj_id, b.obj_id, sep FROM photo AS a "
    "JOIN photoobj AS b WITHIN 2 DEG";

class ServerFailureTest : public ServerTest {
 protected:
  /// A raw connection that has completed the handshake: the vehicle for
  /// sending bytes a conforming Client never would.
  Result<TcpConn> RawHandshake(const std::string& user) {
    auto conn = TcpConn::Connect("127.0.0.1", server_->port());
    if (!conn.ok()) return conn.status();
    HelloMsg hello;
    hello.user = user;
    SDSS_RETURN_IF_ERROR(conn->WriteAll(EncodeHello(hello)));
    auto welcome = ReadFrame(&*conn, 1 << 20);
    if (!welcome.ok()) return welcome.status();
    if (welcome->type != MsgType::kWelcome) {
      return Status::Internal("handshake did not yield WELCOME");
    }
    return conn;
  }

  /// Reads one frame and asserts it is a fatal ERROR, then asserts the
  /// server closed the connection (clean EOF on the next read).
  void ExpectFatalErrorThenClose(TcpConn* conn, StatusCode code) {
    auto frame = ReadFrame(conn, 1 << 20);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, MsgType::kError);
    auto error = DecodeError(frame->payload);
    ASSERT_TRUE(error.ok());
    EXPECT_TRUE(error->fatal);
    EXPECT_EQ(error->code, code) << error->message;
    auto next = ReadFrame(conn, 1 << 20);
    ASSERT_FALSE(next.ok());
    EXPECT_EQ(next.status().code(), StatusCode::kAborted);
  }
};

TEST_F(ServerFailureTest, DisconnectWhileQueuedCancelsTheJob) {
  auto lanes = DefaultLanes();
  lanes.quick_workers = 1;
  StartServer(lanes, ServerOptions());

  std::promise<void> release;
  uint64_t blocked = BlockWorker("blocker", release.get_future().share());

  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  // Submit from a thread (Query blocks on the terminal frame, which
  // never comes -- we are about to vanish).
  std::thread submitter([&client] {
    auto outcome = client->Query(kQuickSql);
    EXPECT_FALSE(outcome.ok());  // Connection died before a terminal.
  });
  // Wait until the wire query is queued behind the blocker, find it.
  uint64_t wire_job = 0;
  for (;;) {
    for (const auto& snap : scheduler_->Jobs()) {
      if (snap.user == "alice") wire_job = snap.id;
    }
    if (wire_job != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  client->Abort();  // Vanish without BYE or CANCEL.
  submitter.join();

  // The session's drain loop must notice the disconnect and cancel the
  // queued job -- it never runs, and no worker is left waiting on it.
  EXPECT_EQ(AwaitTerminal(wire_job), JobState::kCancelled);
  release.set_value();
  EXPECT_EQ(AwaitTerminal(blocked), JobState::kSucceeded);
}

TEST_F(ServerFailureTest, MidStreamDisconnectCancelsTheRunningJob) {
  StartServer(DefaultLanes(), ServerOptions());
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());

  int batches_seen = 0;
  auto outcome = client->Query(
      kSlowStreamSql, [&client, &batches_seen](const query::RowBatch&) {
        if (++batches_seen == 1) client->Abort();
        return true;  // Never a protocol CANCEL: just vanish.
      });
  EXPECT_FALSE(outcome.ok());
  EXPECT_GE(batches_seen, 1);

  // No leaked worker: the job must reach a terminal state (cancelled
  // via the failed-write path or the drain loop's disconnect path).
  uint64_t wire_job = 0;
  for (const auto& snap : scheduler_->Jobs()) {
    if (snap.user == "alice") wire_job = snap.id;
  }
  ASSERT_NE(wire_job, 0u);
  JobState state = AwaitTerminal(wire_job);
  EXPECT_EQ(state, JobState::kCancelled);
}

TEST_F(ServerFailureTest, CancelFrameEndsTheJobWithACleanError) {
  StartServer(DefaultLanes(), ServerOptions());
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());

  // The streaming sink returning false makes the client send CANCEL
  // and keep draining; the terminal frame must be ERROR / Cancelled.
  auto outcome = client->Query(kSlowStreamSql,
                               [](const query::RowBatch&) { return false; });
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->kind, QueryOutcome::Kind::kError);
  EXPECT_FALSE(outcome->error.fatal);
  EXPECT_EQ(outcome->error.code, StatusCode::kCancelled);

  // The session survives a per-query cancel.
  auto after = client->Query(kQuickSql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->kind, QueryOutcome::Kind::kDone);
  EXPECT_TRUE(client->Bye().ok());
}

TEST_F(ServerFailureTest, CancelWhileQueuedNeverRunsTheJob) {
  auto lanes = DefaultLanes();
  lanes.quick_workers = 1;
  StartServer(lanes, ServerOptions());

  std::promise<void> release;
  uint64_t blocked = BlockWorker("blocker", release.get_future().share());

  // Raw frames so this thread is free to send CANCEL while the query
  // sits queued behind the blocker.
  auto conn = RawHandshake("alice");
  ASSERT_TRUE(conn.ok());
  QueryMsg query;
  query.sql = kQuickSql;
  ASSERT_TRUE(conn->WriteAll(EncodeQuery(query)).ok());
  uint64_t wire_job = 0;
  for (;;) {
    for (const auto& snap : scheduler_->Jobs()) {
      if (snap.user == "alice") wire_job = snap.id;
    }
    if (wire_job != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(conn->WriteAll(EncodeCancel()).ok());

  // Terminal frame: ERROR / Cancelled, with no HEADER or ROWS before it
  // (the job never started).
  auto frame = ReadFrame(&*conn, 1 << 20);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, MsgType::kError);
  auto error = DecodeError(frame->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kCancelled);
  EXPECT_FALSE(error->fatal);
  EXPECT_EQ(AwaitTerminal(wire_job), JobState::kCancelled);

  release.set_value();
  EXPECT_EQ(AwaitTerminal(blocked), JobState::kSucceeded);
}

TEST_F(ServerFailureTest, ZeroLengthFrameIsAFatalProtocolError) {
  StartServer(DefaultLanes(), ServerOptions());
  auto conn = RawHandshake("alice");
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->WriteAll(Bytes({0x00, 0x00, 0x00, 0x00})).ok());
  ExpectFatalErrorThenClose(&*conn, StatusCode::kInvalidArgument);
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(ServerFailureTest, OversizedFrameIsAFatalProtocolError) {
  ServerOptions options;
  options.max_frame_bytes = 512;
  StartServer(DefaultLanes(), options);
  auto conn = RawHandshake("alice");
  ASSERT_TRUE(conn.ok());
  // A length prefix promising 1 MiB against a 512-byte limit: refused
  // from the prefix alone, without reading (or allocating) the body.
  ASSERT_TRUE(conn->WriteAll(Bytes({0x00, 0x00, 0x10, 0x00})).ok());
  ExpectFatalErrorThenClose(&*conn, StatusCode::kInvalidArgument);
}

TEST_F(ServerFailureTest, TruncatedPayloadIsAFatalProtocolError) {
  StartServer(DefaultLanes(), ServerOptions());
  auto conn = RawHandshake("alice");
  ASSERT_TRUE(conn.ok());
  // A QUERY frame whose payload is one byte: the length-prefixed sql
  // cannot decode.
  ASSERT_TRUE(conn->WriteAll(Bytes({0x02, 0x00, 0x00, 0x00, 0x03, 0x01}))
                  .ok());
  ExpectFatalErrorThenClose(&*conn, StatusCode::kInvalidArgument);
}

TEST_F(ServerFailureTest, UnknownFrameTypeIsAFatalProtocolError) {
  StartServer(DefaultLanes(), ServerOptions());
  auto conn = RawHandshake("alice");
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->WriteAll(Bytes({0x01, 0x00, 0x00, 0x00, 0x63})).ok());
  ExpectFatalErrorThenClose(&*conn, StatusCode::kInvalidArgument);
}

TEST_F(ServerFailureTest, QueryBeforeHelloIsRefused) {
  StartServer(DefaultLanes(), ServerOptions());
  auto conn = TcpConn::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  QueryMsg query;
  query.sql = kQuickSql;
  ASSERT_TRUE(conn->WriteAll(EncodeQuery(query)).ok());
  ExpectFatalErrorThenClose(&*conn, StatusCode::kInvalidArgument);
}

TEST_F(ServerFailureTest, VersionMismatchIsRefused) {
  StartServer(DefaultLanes(), ServerOptions());
  auto conn = TcpConn::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  HelloMsg hello;
  hello.version = 99;
  hello.user = "alice";
  ASSERT_TRUE(conn->WriteAll(EncodeHello(hello)).ok());
  ExpectFatalErrorThenClose(&*conn, StatusCode::kFailedPrecondition);
}

TEST_F(ServerFailureTest, OversizedStatementGetsANonFatalError) {
  ServerOptions options;
  options.max_sql_bytes = 64;
  StartServer(DefaultLanes(), options);
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  auto refused = client->Query(std::string(200, 'x'));
  ASSERT_TRUE(refused.ok());
  ASSERT_EQ(refused->kind, QueryOutcome::Kind::kError);
  EXPECT_FALSE(refused->error.fatal);
  EXPECT_EQ(refused->error.code, StatusCode::kInvalidArgument);
  // The session survives and serves the next (legal) statement.
  auto after = client->Query(kQuickSql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->kind, QueryOutcome::Kind::kDone);
}

TEST_F(ServerFailureTest, SameUserSessionsShareThePerUserQuota) {
  auto lanes = DefaultLanes();
  lanes.quick_workers = 2;  // Two free workers: only the quota gates.
  lanes.per_user_running = 1;
  StartServer(lanes, ServerOptions());

  // Alice already runs one job (started, held pre-scan by the gate).
  std::promise<void> release;
  uint64_t running = BlockWorker("alice", release.get_future().share());

  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  std::thread submitter([&client] {
    auto outcome = client->Query(kQuickSql);
    ASSERT_TRUE(outcome.ok());
    // Once the quota slot frees, the job runs to completion.
    EXPECT_EQ(outcome->kind, QueryOutcome::Kind::kDone);
  });

  // The wire-submitted job must sit QUEUED behind the quota even though
  // a quick worker is idle.
  uint64_t wire_job = 0;
  for (;;) {
    for (const auto& snap : scheduler_->Jobs()) {
      if (snap.id != running && snap.user == "alice") wire_job = snap.id;
    }
    if (wire_job != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 50; ++i) {
    auto snap = scheduler_->Snapshot(wire_job);
    ASSERT_TRUE(snap.ok());
    ASSERT_EQ(snap->state, JobState::kQueued)
        << "second session of the same user ran past the quota";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  release.set_value();
  submitter.join();
  EXPECT_EQ(AwaitTerminal(running), JobState::kSucceeded);
  EXPECT_EQ(AwaitTerminal(wire_job), JobState::kSucceeded);
}

}  // namespace
}  // namespace sdss::server
