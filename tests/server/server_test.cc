// End-to-end query server tests over loopback TCP: handshake + auth,
// result-equivalence against direct engine execution, INTO
// materialization through the wire, and graceful degradation under
// load (session ceiling, fast-path BUSY shed, bounded-lane BUSY).

#include "server/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.h"
#include "server/server_test_util.h"

namespace sdss::server {
namespace {

using server_test::ServerTest;
using server_test::kQuickSql;
using workbench::JobState;

using RowKey = std::pair<uint64_t, std::vector<double>>;

std::vector<RowKey> Normalize(const query::RowBatch& rows) {
  std::vector<RowKey> keys;
  keys.reserve(rows.size());
  for (const auto& row : rows) keys.emplace_back(row.obj_id, row.values);
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST_F(ServerTest, HandshakeThenQueryMatchesDirectExecution) {
  StartServer(DefaultLanes(), ServerOptions());
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_GT(client->welcome().session_id, 0u);
  EXPECT_EQ(client->welcome().version, kProtocolVersion);

  auto outcome = client->Query(kQuickSql);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->kind, QueryOutcome::Kind::kDone);
  ASSERT_TRUE(outcome->have_header);
  EXPECT_FALSE(outcome->header.is_aggregate);
  EXPECT_EQ(outcome->header.columns,
            (std::vector<std::string>{"obj_id", "r"}));
  EXPECT_EQ(outcome->done.rows, outcome->rows.size());
  EXPECT_GT(outcome->done.containers_scanned, 0u);

  auto direct = engine_->Execute(kQuickSql);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Normalize(outcome->rows), Normalize(direct->rows));
  EXPECT_TRUE(client->Bye().ok());
}

TEST_F(ServerTest, SeveralStatementsOverOneSession) {
  StartServer(DefaultLanes(), ServerOptions());
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> sqls = {
      "SELECT obj_id, r FROM photo WHERE r < 19",
      "SELECT obj_id, g FROM tag WHERE g < 20 ORDER BY g LIMIT 10",
      "SELECT obj_id FROM photo WHERE class = 'QSO'",
  };
  for (const std::string& sql : sqls) {
    SCOPED_TRACE(sql);
    auto outcome = client->Query(sql);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_EQ(outcome->kind, QueryOutcome::Kind::kDone);
    auto direct = engine_->Execute(sql);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(outcome->rows.size(), direct->rows.size());
  }
  EXPECT_TRUE(client->Bye().ok());
}

TEST_F(ServerTest, AggregateStreamsExactlyOneRow) {
  StartServer(DefaultLanes(), ServerOptions());
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  const std::string sql =
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 8)";
  auto outcome = client->Query(sql);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, QueryOutcome::Kind::kDone);
  ASSERT_TRUE(outcome->have_header);
  EXPECT_TRUE(outcome->header.is_aggregate);
  ASSERT_EQ(outcome->rows.size(), 1u);
  auto direct = engine_->Execute(sql);
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(outcome->rows[0].values.at(0), direct->aggregate_value);
}

TEST_F(ServerTest, IntoMaterializesIntoTheUsersMyDb) {
  StartServer(DefaultLanes(), ServerOptions());
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  auto outcome =
      client->Query("SELECT * INTO mydb.bright FROM photo WHERE r < 19");
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, QueryOutcome::Kind::kDone)
      << outcome->error.message;
  // INTO streams no ROWS frames; the row count arrives in DONE.
  EXPECT_TRUE(outcome->rows.empty());
  EXPECT_GT(outcome->done.rows, 0u);
  auto table = mydb_->Find("alice", "bright");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->object_count(), outcome->done.rows);
}

TEST_F(ServerTest, AuthenticatedAccessControlsTheDoor) {
  ServerOptions options;
  options.users = {{"alice", "sesame"}};
  StartServer(DefaultLanes(), options);

  auto wrong = Connect("alice", "wrong-token");
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);

  auto unknown = Connect("mallory", "sesame");
  ASSERT_FALSE(unknown.ok());

  auto right = Connect("alice", "sesame");
  ASSERT_TRUE(right.ok());
  auto outcome = right->Query(kQuickSql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, QueryOutcome::Kind::kDone);
  EXPECT_GE(server_->stats().auth_failures, 2u);
}

TEST_F(ServerTest, SessionCeilingAnswersBusyAtTheDoor) {
  ServerOptions options;
  options.max_sessions = 2;
  StartServer(DefaultLanes(), options);

  auto first = Connect("u1");
  auto second = Connect("u2");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  auto third = Connect("u3");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(server_->stats().sessions_refused, 1u);

  // Freeing a slot readmits: close one session and poll (teardown is
  // asynchronous) until a new connection succeeds.
  ASSERT_TRUE(first->Bye().ok());
  for (int attempt = 0;; ++attempt) {
    auto retry = Connect("u3");
    if (retry.ok()) {
      auto outcome = retry->Query(kQuickSql);
      ASSERT_TRUE(outcome.ok());
      EXPECT_EQ(outcome->kind, QueryOutcome::Kind::kDone);
      break;
    }
    ASSERT_LT(attempt, 1000) << "session slot never freed";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST_F(ServerTest, QuickLaneDepthShedsBeforeParsing) {
  auto lanes = DefaultLanes();
  lanes.quick_workers = 1;
  ServerOptions options;
  options.busy_quick_depth = 1;
  options.busy_retry_ms = 75;
  StartServer(lanes, options);

  // Occupy the only quick worker, then queue one more job: depth 1
  // reaches the threshold.
  std::promise<void> release;
  uint64_t blocked = BlockWorker("blocker", release.get_future().share());
  auto queued = scheduler_->Submit("queuer", kQuickSql);
  ASSERT_TRUE(queued.ok());

  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  // The shed happens before parsing -- even an unparseable statement
  // gets BUSY, not a syntax error, because no cycles go to work that
  // would be refused anyway.
  auto outcome = client->Query("THIS IS NOT A QUERY");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->kind, QueryOutcome::Kind::kBusy);
  EXPECT_EQ(outcome->busy.retry_after_ms, 75u);
  EXPECT_GE(outcome->busy.quick_queued, 1u);
  EXPECT_GE(server_->stats().busy_shed, 1u);

  release.set_value();
  EXPECT_EQ(AwaitTerminal(blocked), JobState::kSucceeded);
  EXPECT_EQ(AwaitTerminal(*queued), JobState::kSucceeded);

  // With the lane drained the same session's next statement runs.
  auto after = client->Query(kQuickSql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->kind, QueryOutcome::Kind::kDone);
}

TEST_F(ServerTest, BoundedLaneAdmissionMapsToBusy) {
  auto lanes = DefaultLanes();
  lanes.quick_workers = 1;
  lanes.max_queued_quick = 1;
  ServerOptions options;
  options.busy_quick_depth = 0;  // Fast-path shed off: reach admission.
  StartServer(lanes, options);

  std::promise<void> release;
  uint64_t blocked = BlockWorker("blocker", release.get_future().share());
  auto queued = scheduler_->Submit("queuer", kQuickSql);
  ASSERT_TRUE(queued.ok());

  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  auto outcome = client->Query(kQuickSql);
  ASSERT_TRUE(outcome.ok());
  // The statement was parsed and priced; the lane bound refused it with
  // kUnavailable, which the session translates to BUSY.
  EXPECT_EQ(outcome->kind, QueryOutcome::Kind::kBusy);

  release.set_value();
  EXPECT_EQ(AwaitTerminal(blocked), JobState::kSucceeded);
  EXPECT_EQ(AwaitTerminal(*queued), JobState::kSucceeded);
}

TEST_F(ServerTest, StatsCountTheConversation) {
  StartServer(DefaultLanes(), ServerOptions());
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client->Query(kQuickSql)->kind, QueryOutcome::Kind::kDone);
  ASSERT_EQ(client->Query("SELECT syntax error")->kind,
            QueryOutcome::Kind::kError);
  ASSERT_TRUE(client->Bye().ok());

  ServerStats stats = server_->stats();
  EXPECT_GE(stats.sessions_accepted, 1u);
  // The parse error is refused at submit: it never reaches a lane.
  EXPECT_EQ(stats.queries_submitted, 1u);
  EXPECT_EQ(stats.queries_succeeded, 1u);
  EXPECT_EQ(stats.queries_failed, 0u);
}

TEST_F(ServerTest, StatsFrameShipsTheMetricsSnapshot) {
  StartServer(DefaultLanes(), ServerOptions());
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client->Query(kQuickSql)->kind, QueryOutcome::Kind::kDone);

  auto report = client->Stats();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->version, 1u);
  auto value = [&report](const std::string& name) -> uint64_t {
    for (const auto& ins : report->instruments) {
      if (ins.name == name) return ins.counter;
    }
    ADD_FAILURE() << "instrument " << name << " missing from report";
    return 0;
  };
  EXPECT_EQ(value("server_queries_submitted"), 1u);
  EXPECT_EQ(value("server_queries_succeeded"), 1u);
  EXPECT_GE(value("server_sessions_accepted"), 1u);

  // The session stays usable after the STATS exchange.
  ASSERT_EQ(client->Query(kQuickSql)->kind, QueryOutcome::Kind::kDone);
  auto again = client->Stats();
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(client->Bye().ok());
}

TEST_F(ServerTest, SharedRegistryReportsEveryLayer) {
  // Wire one registry through scheduler and server: the STATS frame
  // must then carry workbench_* and server_* instruments side by side.
  metrics::Registry registry;
  auto lanes = DefaultLanes();
  lanes.metrics = &registry;
  ServerOptions options;
  options.metrics = &registry;
  StartServer(lanes, options);
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client->Query(kQuickSql)->kind, QueryOutcome::Kind::kDone);

  auto report = client->Stats();
  ASSERT_TRUE(report.ok());
  bool saw_server = false, saw_workbench = false;
  for (const auto& ins : report->instruments) {
    if (ins.name == "server_queries_succeeded" && ins.counter == 1) {
      saw_server = true;
    }
    if (ins.name == "workbench_jobs_finished" && ins.counter == 1) {
      saw_workbench = true;
    }
  }
  EXPECT_TRUE(saw_server);
  EXPECT_TRUE(saw_workbench);
  ASSERT_TRUE(client->Bye().ok());
}

TEST_F(ServerTest, DoneCarriesStageSeconds) {
  StartServer(DefaultLanes(), ServerOptions());
  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  auto outcome = client->Query(kQuickSql);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, QueryOutcome::Kind::kDone);
  // Planning happened and is accounted; the stage sum stays within the
  // job's total running time.
  EXPECT_GT(outcome->done.seconds_plan, 0.0);
  EXPECT_GT(outcome->done.seconds_fan_out, 0.0);
  EXPECT_LE(outcome->done.seconds_plan + outcome->done.seconds_fan_out,
            outcome->done.seconds_running + 0.001);
  ASSERT_TRUE(client->Bye().ok());
}

TEST_F(ServerTest, ConcurrentSessionsAllComplete) {
  StartServer(DefaultLanes(), ServerOptions());
  constexpr int kSessions = 8;
  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([this, i, &completed] {
      auto client = Connect("user" + std::to_string(i));
      ASSERT_TRUE(client.ok());
      for (int q = 0; q < 3; ++q) {
        auto outcome = client->Query(kQuickSql);
        ASSERT_TRUE(outcome.ok());
        ASSERT_EQ(outcome->kind, QueryOutcome::Kind::kDone)
            << StatusCodeName(outcome->error.code) << ": "
            << outcome->error.message;
      }
      ASSERT_TRUE(client->Bye().ok());
      ++completed;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), kSessions);
  // The terminal frame is written by the lane worker; the session
  // thread does its bookkeeping just after. Join the session threads
  // before reading the counters.
  server_->Stop();
  EXPECT_EQ(server_->stats().queries_succeeded,
            static_cast<uint64_t>(kSessions) * 3);
}

/// Threads of this process, from /proc (Linux; the CI and dev targets).
int ProcessThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

TEST_F(ServerTest, FinishedSessionThreadsAreReaped) {
  StartServer(DefaultLanes(), ServerOptions());
  const int baseline = ProcessThreadCount();
  ASSERT_GT(baseline, 0);
  // Serve many short sessions; each accept reaps the previously
  // finished session threads, so the process must not accumulate one
  // zombie thread per session ever served.
  for (int i = 0; i < 40; ++i) {
    auto client = Connect("u" + std::to_string(i));
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Bye().ok());
  }
  // Fresh probe connections trigger the reap; poll until the count
  // settles back near the baseline (each probe leaves at most its own
  // session pending).
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int threads = 0;
  for (;;) {
    auto probe = Connect("probe");
    ASSERT_TRUE(probe.ok());
    ASSERT_TRUE(probe->Bye().ok());
    threads = ProcessThreadCount();
    if (threads <= baseline + 4) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "session threads never reaped: " << threads << " threads vs "
        << baseline << " at baseline";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(threads, baseline + 4);
}

TEST_F(ServerTest, StopJoinsEverySessionAndCancelsInFlightWork) {
  auto lanes = DefaultLanes();
  lanes.quick_workers = 1;
  StartServer(lanes, ServerOptions());

  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());

  // Hold the lane so a wire-submitted query is still queued at Stop.
  std::promise<void> release;
  uint64_t blocked = BlockWorker("blocker", release.get_future().share());

  // Submit from a thread (the client call blocks until its terminal
  // frame, which will be the cancel verdict).
  std::thread submitter([&client] {
    auto outcome = client->Query(kQuickSql);
    // Either a clean ERROR/cancelled frame or a torn connection,
    // depending on how far teardown got -- both are acceptable here.
    (void)outcome;
  });
  // Wait until the job is queued behind the blocker.
  for (;;) {
    if (scheduler_->LaneDepths().quick_queued >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  release.set_value();
  server_->Stop();  // Must join sessions without hanging.
  submitter.join();
  EXPECT_NE(AwaitTerminal(blocked), JobState::kRunning);
}

TEST_F(ServerTest, CacheVerdictCountersTrackEveryQuery) {
  // A cache-enabled engine local to this test (the shared fixture
  // engine keeps caching off so scan-counter assertions stay exact).
  query::FederatedQueryEngine::Options opt;
  opt.result_cache_bytes = 8u << 20;
  opt.cache_epoch_source = [] { return sharded_->Epoch(); };
  auto shards = sharded_->LiveShards();
  ASSERT_TRUE(shards.ok());
  query::FederatedQueryEngine cached(*shards, opt);
  scheduler_ = std::make_unique<workbench::JobScheduler>(
      &cached, mydb_.get(), DefaultLanes());
  server_ = std::make_unique<QueryServer>(scheduler_.get(), ServerOptions());
  ASSERT_TRUE(server_->Start().ok());

  auto client = Connect("alice");
  ASSERT_TRUE(client.ok());
  // Miss (cold), hit (verbatim replay), containment (narrower cone
  // re-filtered from the first query's rows).
  auto cold = client->Query(kQuickSql);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->kind, QueryOutcome::Kind::kDone);
  auto warm = client->Query(kQuickSql);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->kind, QueryOutcome::Kind::kDone);
  EXPECT_EQ(warm->rows.size(), cold->rows.size());
  auto narrower = client->Query(
      "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 4) "
      "AND r < 21");
  ASSERT_TRUE(narrower.ok());
  ASSERT_EQ(narrower->kind, QueryOutcome::Kind::kDone);
  EXPECT_TRUE(client->Bye().ok());

  // The session thread folds verdicts into the counters after the DONE
  // frame is on the wire; poll for the last one to land.
  ServerStats stats;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {
    stats = server_->stats();
    if (stats.cache_hits + stats.cache_misses + stats.cache_containment >=
        3) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  } while (std::chrono::steady_clock::now() < deadline);
  EXPECT_EQ(stats.queries_succeeded, 3u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_containment, 1u);

  // The local engine must outlive the scheduler: tear down in order.
  server_.reset();
  scheduler_.reset();
}

}  // namespace
}  // namespace sdss::server
