// Wire-format conformance: pins every frame layout of docs/PROTOCOL.md
// byte for byte, round-trips the full message vocabulary, and checks
// the decoder contracts (bounds-checked truncation errors, trailing-
// byte tolerance, hostile-count rejection) plus ReadFrame's framing
// errors over a real loopback socket.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>

#include "core/net.h"

namespace sdss::server {
namespace {

std::string Bytes(std::initializer_list<unsigned char> bytes) {
  return std::string(bytes.begin(), bytes.end());
}

/// Splits an encoded frame into (declared length, type, payload) the
/// way a reader would, asserting the frame is self-consistent.
Frame Parse(const std::string& frame) {
  EXPECT_GE(frame.size(), kFrameOverheadBytes - 1);
  uint32_t len = static_cast<uint8_t>(frame[0]) |
                 static_cast<uint32_t>(static_cast<uint8_t>(frame[1])) << 8 |
                 static_cast<uint32_t>(static_cast<uint8_t>(frame[2])) << 16 |
                 static_cast<uint32_t>(static_cast<uint8_t>(frame[3])) << 24;
  EXPECT_EQ(len, frame.size() - 4) << "length prefix must cover "
                                      "type byte + payload exactly";
  Frame out;
  out.type = static_cast<MsgType>(static_cast<uint8_t>(frame[4]));
  out.payload = frame.substr(5);
  return out;
}

// ---------------------------------------------------------------------
// Byte-level layout pins (normative examples in docs/PROTOCOL.md).

TEST(ServerProtocolLayout, EmptyFramesAreFiveBytes) {
  EXPECT_EQ(EncodeCancel(), Bytes({0x01, 0x00, 0x00, 0x00, 0x09}));
  EXPECT_EQ(EncodeBye(), Bytes({0x01, 0x00, 0x00, 0x00, 0x0a}));
}

TEST(ServerProtocolLayout, HelloMatchesTheSpecExample) {
  HelloMsg hello;
  hello.version = 1;
  hello.user = "alice";
  hello.token = "s3cr3t";
  // len = 1 (type) + 4 (version) + 4+5 (user) + 4+6 (token) = 24.
  EXPECT_EQ(EncodeHello(hello),
            Bytes({0x18, 0x00, 0x00, 0x00,              // len
                   0x01,                                // HELLO
                   0x01, 0x00, 0x00, 0x00,              // version
                   0x05, 0x00, 0x00, 0x00,              // |user|
                   'a', 'l', 'i', 'c', 'e',             // user
                   0x06, 0x00, 0x00, 0x00,              // |token|
                   's', '3', 'c', 'r', '3', 't'}));     // token
}

TEST(ServerProtocolLayout, QueryMatchesTheSpecExample) {
  QueryMsg query;
  query.sql = "SELECT 1";
  EXPECT_EQ(EncodeQuery(query),
            Bytes({0x0d, 0x00, 0x00, 0x00,  // len = 1 + 4 + 8
                   0x03,                    // QUERY
                   0x08, 0x00, 0x00, 0x00,  // |sql|
                   'S', 'E', 'L', 'E', 'C', 'T', ' ', '1'}));
}

TEST(ServerProtocolLayout, BusyMatchesTheSpecExample) {
  BusyMsg busy;
  busy.retry_after_ms = 50;
  busy.quick_queued = 3;
  busy.long_queued = 259;
  EXPECT_EQ(EncodeBusy(busy),
            Bytes({0x0d, 0x00, 0x00, 0x00,    // len = 1 + 12
                   0x08,                      // BUSY
                   0x32, 0x00, 0x00, 0x00,    // retry_after_ms
                   0x03, 0x00, 0x00, 0x00,    // quick_queued
                   0x03, 0x01, 0x00, 0x00})); // long_queued = 0x103
}

TEST(ServerProtocolLayout, RowsMatchesTheSpecExample) {
  RowsMsg rows;
  query::ResultRow row;
  row.obj_id = 0x0102030405060708ull;
  row.obj_id_b = 0;
  row.values = {1.5};
  rows.rows.push_back(row);
  // len = 1 + 4 (nrows) + 8 + 8 + 4 (nvals) + 8 (one f64) = 33.
  // 1.5 = IEEE-754 0x3FF8000000000000, little-endian on the wire.
  EXPECT_EQ(EncodeRows(rows),
            Bytes({0x21, 0x00, 0x00, 0x00,
                   0x05,                                            // ROWS
                   0x01, 0x00, 0x00, 0x00,                          // nrows
                   0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // obj_id
                   0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // obj_id_b
                   0x01, 0x00, 0x00, 0x00,                          // nvals
                   0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf8, 0x3f}));
}

TEST(ServerProtocolLayout, ErrorMatchesTheSpecExample) {
  ErrorMsg error;
  error.code = StatusCode::kUnavailable;  // 13 in the journaled order.
  error.fatal = true;
  error.message = "no";
  EXPECT_EQ(EncodeError(error),
            Bytes({0x09, 0x00, 0x00, 0x00,
                   0x07,                    // ERROR
                   0x0d,                    // code
                   0x01,                    // fatal
                   0x02, 0x00, 0x00, 0x00,  // |message|
                   'n', 'o'}));
}

// ---------------------------------------------------------------------
// Round trips over the whole vocabulary.

TEST(ServerProtocolRoundTrip, Hello) {
  HelloMsg in;
  in.version = 7;
  in.user = "bob";
  in.token = "hunter2";
  Frame f = Parse(EncodeHello(in));
  ASSERT_EQ(f.type, MsgType::kHello);
  auto out = DecodeHello(f.payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->version, 7u);
  EXPECT_EQ(out->user, "bob");
  EXPECT_EQ(out->token, "hunter2");
}

TEST(ServerProtocolRoundTrip, Welcome) {
  WelcomeMsg in;
  in.session_id = 42;
  in.banner = "sdss-archive";
  Frame f = Parse(EncodeWelcome(in));
  ASSERT_EQ(f.type, MsgType::kWelcome);
  auto out = DecodeWelcome(f.payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->version, kProtocolVersion);
  EXPECT_EQ(out->session_id, 42u);
  EXPECT_EQ(out->banner, "sdss-archive");
}

TEST(ServerProtocolRoundTrip, Header) {
  HeaderMsg in;
  in.job_id = 9;
  in.lane = 1;
  in.is_aggregate = true;
  in.columns = {"obj_id", "r"};
  Frame f = Parse(EncodeHeader(in));
  ASSERT_EQ(f.type, MsgType::kHeader);
  auto out = DecodeHeader(f.payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->job_id, 9u);
  EXPECT_EQ(out->lane, 1);
  EXPECT_TRUE(out->is_aggregate);
  EXPECT_EQ(out->columns, in.columns);
}

TEST(ServerProtocolRoundTrip, RowsPreservesEveryValueBitExactly) {
  RowsMsg in;
  for (uint64_t i = 0; i < 17; ++i) {
    query::ResultRow row;
    row.obj_id = i * 1000003;
    row.obj_id_b = i % 3 == 0 ? i + 7 : 0;
    row.values = {static_cast<double>(i) / 3.0, -1e300, 0.0};
    in.rows.push_back(row);
  }
  Frame f = Parse(EncodeRows(in));
  ASSERT_EQ(f.type, MsgType::kRows);
  auto out = DecodeRows(f.payload);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), in.rows.size());
  for (size_t i = 0; i < in.rows.size(); ++i) {
    EXPECT_EQ(out->rows[i].obj_id, in.rows[i].obj_id);
    EXPECT_EQ(out->rows[i].obj_id_b, in.rows[i].obj_id_b);
    EXPECT_EQ(out->rows[i].values, in.rows[i].values);
  }
}

TEST(ServerProtocolRoundTrip, Done) {
  DoneMsg in;
  in.job_id = 5;
  in.rows = 1234;
  in.seconds_queued = 0.25;
  in.seconds_running = 1.75;
  in.containers_scanned = 88;
  in.bytes_touched = 1 << 20;
  Frame f = Parse(EncodeDone(in));
  ASSERT_EQ(f.type, MsgType::kDone);
  auto out = DecodeDone(f.payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->job_id, 5u);
  EXPECT_EQ(out->rows, 1234u);
  EXPECT_EQ(out->seconds_queued, 0.25);
  EXPECT_EQ(out->seconds_running, 1.75);
  EXPECT_EQ(out->containers_scanned, 88u);
  EXPECT_EQ(out->bytes_touched, 1u << 20);
}

TEST(ServerProtocolRoundTrip, ErrorMapsBackToItsStatus) {
  ErrorMsg in;
  in.code = StatusCode::kCancelled;
  in.fatal = false;
  in.message = "stream consumer stopped";
  Frame f = Parse(EncodeError(in));
  ASSERT_EQ(f.type, MsgType::kError);
  auto out = DecodeError(f.payload);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->fatal);
  Status status = out->ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(status.message(), "stream consumer stopped");
}

TEST(ServerProtocolRoundTrip, Busy) {
  BusyMsg in;
  in.retry_after_ms = 75;
  in.quick_queued = 12;
  in.long_queued = 4;
  Frame f = Parse(EncodeBusy(in));
  ASSERT_EQ(f.type, MsgType::kBusy);
  auto out = DecodeBusy(f.payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->retry_after_ms, 75u);
  EXPECT_EQ(out->quick_queued, 12u);
  EXPECT_EQ(out->long_queued, 4u);
}

// ---------------------------------------------------------------------
// Decoder contracts.

TEST(ServerProtocolDecode, TruncationIsACleanError) {
  HelloMsg hello;
  hello.user = "alice";
  hello.token = "x";
  std::string payload = Parse(EncodeHello(hello)).payload;
  // Every proper prefix must fail cleanly, never read out of bounds.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto out = DecodeHello(std::string_view(payload).substr(0, cut));
    EXPECT_FALSE(out.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ServerProtocolDecode, TrailingBytesAreIgnoredForCompatibility) {
  // The versioning rule: a future minor revision may append fields, so
  // decoders must tolerate unconsumed payload tail.
  WelcomeMsg welcome;
  welcome.session_id = 3;
  welcome.banner = "b";
  std::string payload =
      Parse(EncodeWelcome(welcome)).payload + "future-field";
  auto out = DecodeWelcome(payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->session_id, 3u);
  EXPECT_EQ(out->banner, "b");
}

TEST(ServerProtocolDecode, HostileRowCountsAreRejectedBeforeAllocation) {
  // nrows = 2^31 with a 4-byte body: must refuse, not reserve gigabytes.
  std::string payload = Bytes({0x00, 0x00, 0x00, 0x80, 0x01, 0x02});
  auto out = DecodeRows(payload);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);

  // Same for a hostile per-row value count.
  std::string one_row;
  {
    RowsMsg rows;
    rows.rows.emplace_back();
    one_row = Parse(EncodeRows(rows)).payload;
  }
  // Patch nvals (last 4 bytes of the single row) to 2^30.
  one_row[one_row.size() - 1] = 0x40;
  auto patched = DecodeRows(one_row);
  EXPECT_FALSE(patched.ok());
}

TEST(ServerProtocolDecode, UnknownStatusCodeIsRejected) {
  std::string payload = Bytes({0xee, 0x00, 0x00, 0x00, 0x00, 0x00});
  auto out = DecodeError(payload);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// ReadFrame over a real socket.

class ServerProtocolSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto listener = TcpListener::Listen("127.0.0.1", 0, 4);
    ASSERT_TRUE(listener.ok());
    listener_ = std::move(*listener);
    auto client = TcpConn::Connect("127.0.0.1", listener_.port());
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
    auto served = listener_.Accept();
    ASSERT_TRUE(served.ok());
    served_ = std::move(*served);
  }

  TcpListener listener_;
  TcpConn client_;   ///< Write side in these tests.
  TcpConn served_;   ///< Read side (the server's perspective).
};

TEST_F(ServerProtocolSocketTest, ReadsBackToBackFrames) {
  QueryMsg query;
  query.sql = "SELECT COUNT(*) FROM photo";
  ASSERT_TRUE(client_.WriteAll(EncodeQuery(query) + EncodeBye()).ok());

  auto first = ReadFrame(&served_, 1 << 20);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->type, MsgType::kQuery);
  auto decoded = DecodeQuery(first->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sql, query.sql);

  auto second = ReadFrame(&served_, 1 << 20);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, MsgType::kBye);
  EXPECT_TRUE(second->payload.empty());
}

TEST_F(ServerProtocolSocketTest, CleanEofBetweenFramesIsAborted) {
  client_.Shutdown();
  auto frame = ReadFrame(&served_, 1 << 20);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kAborted);
}

TEST_F(ServerProtocolSocketTest, EofMidFrameIsAnIOError) {
  // A length prefix promising 100 bytes, then hang up.
  ASSERT_TRUE(client_.WriteAll(Bytes({0x64, 0x00, 0x00, 0x00, 0x03})).ok());
  client_.Shutdown();
  auto frame = ReadFrame(&served_, 1 << 20);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIOError);
}

TEST(ServerProtocolHelpersTest, ConstantTimeEqualsMatchesOperatorEq) {
  EXPECT_TRUE(ConstantTimeEquals("", ""));
  EXPECT_TRUE(ConstantTimeEquals("secret", "secret"));
  EXPECT_FALSE(ConstantTimeEquals("secret", "secres"));
  EXPECT_FALSE(ConstantTimeEquals("Xecret", "secret"));
  EXPECT_FALSE(ConstantTimeEquals("secret", ""));
  EXPECT_FALSE(ConstantTimeEquals("", "secret"));
  EXPECT_FALSE(ConstantTimeEquals("secret", "secretlonger"));
  // Embedded NULs are data, not terminators.
  EXPECT_TRUE(ConstantTimeEquals(std::string("a\0b", 3),
                                 std::string("a\0b", 3)));
  EXPECT_FALSE(ConstantTimeEquals(std::string("a\0b", 3),
                                  std::string("a\0c", 3)));
}

TEST(ServerProtocolHelpersTest, SaturatingU32ClampsInsteadOfTruncating) {
  EXPECT_EQ(SaturatingU32(0), 0u);
  EXPECT_EQ(SaturatingU32(1234), 1234u);
  EXPECT_EQ(SaturatingU32(0xffffffffull), 0xffffffffu);
  // One past the ceiling used to truncate to 0 -- a full queue reported
  // as empty; now it saturates.
  EXPECT_EQ(SaturatingU32(0x100000000ull), 0xffffffffu);
  EXPECT_EQ(SaturatingU32(std::numeric_limits<size_t>::max()),
            0xffffffffu);
}

TEST_F(ServerProtocolSocketTest, ZeroAndOversizedLengthsAreViolations) {
  ASSERT_TRUE(client_.WriteAll(Bytes({0x00, 0x00, 0x00, 0x00})).ok());
  auto zero = ReadFrame(&served_, 1 << 20);
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(client_.WriteAll(Bytes({0xff, 0xff, 0xff, 0x7f})).ok());
  auto oversized = ReadFrame(&served_, 1 << 20);
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// STATS / STATS_REPORT (revision 1.1) and the DONE stage extension.

TEST(ServerProtocolLayout, StatsRequestIsAnEmptyFrame) {
  EXPECT_EQ(EncodeStatsRequest(), Bytes({0x01, 0x00, 0x00, 0x00, 0x0b}));
}

TEST(ServerProtocolLayout, StatsReportMatchesTheSpecExample) {
  // One counter "q" = 7: version 1, count 1, lp("q"), kind 1, u64 7.
  StatsMsg msg;
  metrics::InstrumentSnapshot ins;
  ins.name = "q";
  ins.kind = metrics::Kind::kCounter;
  ins.counter = 7;
  msg.instruments.push_back(ins);
  EXPECT_EQ(EncodeStatsReport(msg),
            Bytes({0x17, 0x00, 0x00, 0x00,                    // len = 23
                   0x0c,                                      // STATS_REPORT
                   0x01, 0x00, 0x00, 0x00,                    // version
                   0x01, 0x00, 0x00, 0x00,                    // count
                   0x01, 0x00, 0x00, 0x00, 0x71,              // "q"
                   0x01,                                      // kind counter
                   0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // value
                   0x00}));
}

TEST(ServerProtocolRoundTrip, StatsReportAllThreeKinds) {
  StatsMsg in;
  metrics::InstrumentSnapshot counter;
  counter.name = "server_queries_submitted";
  counter.kind = metrics::Kind::kCounter;
  counter.counter = 12345678901234ull;
  metrics::InstrumentSnapshot gauge;
  gauge.name = "workbench_quick_queued";
  gauge.kind = metrics::Kind::kGauge;
  gauge.gauge = -42;
  metrics::InstrumentSnapshot hist;
  hist.name = "query_exec_us";
  hist.kind = metrics::Kind::kHistogram;
  hist.hist.count = 100;
  hist.hist.sum = 99000;
  hist.hist.buckets = {{7, 90}, {10, 9}, {14, 1}};
  in.instruments = {counter, gauge, hist};

  Frame f = Parse(EncodeStatsReport(in));
  ASSERT_EQ(f.type, MsgType::kStatsReport);
  auto out = DecodeStatsReport(f.payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->version, 1u);
  ASSERT_EQ(out->instruments.size(), 3u);
  EXPECT_EQ(out->instruments[0].name, "server_queries_submitted");
  EXPECT_EQ(out->instruments[0].counter, 12345678901234ull);
  EXPECT_EQ(out->instruments[1].kind, metrics::Kind::kGauge);
  EXPECT_EQ(out->instruments[1].gauge, -42);
  const auto& h = out->instruments[2].hist;
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.sum, 99000u);
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[1], (std::pair<uint8_t, uint64_t>{10, 9}));
  // Quantiles survive the wire: the snapshot is reconstructed whole.
  EXPECT_EQ(h.P50(), 127u);
  EXPECT_EQ(h.P99(), 1023u);
}

TEST(ServerProtocolDecode, StatsReportToleratesTrailingBytes) {
  StatsMsg in;
  metrics::InstrumentSnapshot ins;
  ins.name = "x";
  ins.kind = metrics::Kind::kCounter;
  ins.counter = 1;
  in.instruments.push_back(ins);
  std::string payload =
      Parse(EncodeStatsReport(in)).payload + "future-field";
  auto out = DecodeStatsReport(payload);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->instruments.size(), 1u);
  EXPECT_EQ(out->instruments[0].counter, 1u);
}

TEST(ServerProtocolDecode, StatsReportHostileCountsAreRejected) {
  // Instrument count far beyond what the payload could carry.
  {
    std::string payload;
    payload += Bytes({0x01, 0x00, 0x00, 0x00});  // version
    payload += Bytes({0xff, 0xff, 0xff, 0x7f});  // count = 2^31 - 1
    auto out = DecodeStatsReport(payload);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  }
  // Histogram bucket count beyond the 65-bucket layout.
  {
    std::string payload;
    payload += Bytes({0x01, 0x00, 0x00, 0x00});  // version
    payload += Bytes({0x01, 0x00, 0x00, 0x00});  // count = 1
    payload += Bytes({0x01, 0x00, 0x00, 0x00, 'h'});  // name "h"
    payload += Bytes({0x03});                    // kind histogram
    payload += std::string(16, '\0');            // count, sum
    payload += Bytes({0xff, 0x00, 0x00, 0x00});  // nbuckets = 255
    auto out = DecodeStatsReport(payload);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  }
  // A bucket index outside the fixed layout.
  {
    std::string payload;
    payload += Bytes({0x01, 0x00, 0x00, 0x00});
    payload += Bytes({0x01, 0x00, 0x00, 0x00});
    payload += Bytes({0x01, 0x00, 0x00, 0x00, 'h'});
    payload += Bytes({0x03});
    payload += std::string(16, '\0');
    payload += Bytes({0x01, 0x00, 0x00, 0x00});  // nbuckets = 1
    payload += Bytes({0x41});                    // index 65: out of range
    payload += std::string(8, '\0');
    auto out = DecodeStatsReport(payload);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  }
  // An unknown instrument kind.
  {
    std::string payload;
    payload += Bytes({0x01, 0x00, 0x00, 0x00});
    payload += Bytes({0x01, 0x00, 0x00, 0x00});
    payload += Bytes({0x01, 0x00, 0x00, 0x00, 'x'});
    payload += Bytes({0x09});                    // kind 9: unknown
    payload += std::string(8, '\0');
    auto out = DecodeStatsReport(payload);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ServerProtocolRoundTrip, DoneCarriesTheStageBreakdown) {
  DoneMsg in;
  in.job_id = 9;
  in.rows = 10;
  in.seconds_queued = 0.5;
  in.seconds_running = 2.0;
  in.containers_scanned = 3;
  in.bytes_touched = 4096;
  in.seconds_plan = 0.01;
  in.seconds_cache_probe = 0.002;
  in.seconds_ghost_harvest = 0.25;
  in.seconds_fan_out = 1.5;
  in.seconds_stream_out = 0.125;
  Frame f = Parse(EncodeDone(in));
  auto out = DecodeDone(f.payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->seconds_plan, 0.01);
  EXPECT_EQ(out->seconds_cache_probe, 0.002);
  EXPECT_EQ(out->seconds_ghost_harvest, 0.25);
  EXPECT_EQ(out->seconds_fan_out, 1.5);
  EXPECT_EQ(out->seconds_stream_out, 0.125);
}

TEST(ServerProtocolDecode, DoneFromAnOldEncoderLeavesStagesZero) {
  // A revision-1.0 DONE payload is the new one minus the trailing
  // 40-byte stage block; the decoder must accept it and default the
  // five stage fields to zero (the all-or-nothing trailing-block rule).
  DoneMsg in;
  in.job_id = 9;
  in.rows = 10;
  in.seconds_running = 2.0;
  in.seconds_plan = 0.75;  // Must NOT survive the truncation.
  std::string payload = Parse(EncodeDone(in)).payload;
  ASSERT_GT(payload.size(), 40u);
  std::string old_payload = payload.substr(0, payload.size() - 40);
  auto out = DecodeDone(old_payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->job_id, 9u);
  EXPECT_EQ(out->rows, 10u);
  EXPECT_EQ(out->seconds_running, 2.0);
  EXPECT_EQ(out->seconds_plan, 0.0);
  EXPECT_EQ(out->seconds_cache_probe, 0.0);
  EXPECT_EQ(out->seconds_ghost_harvest, 0.0);
  EXPECT_EQ(out->seconds_fan_out, 0.0);
  EXPECT_EQ(out->seconds_stream_out, 0.0);

  // A partial stage block (not the full 40 bytes) is also treated as
  // absent, never half-read.
  std::string torn = payload.substr(0, payload.size() - 8);
  auto torn_out = DecodeDone(torn);
  ASSERT_TRUE(torn_out.ok());
  EXPECT_EQ(torn_out->seconds_plan, 0.0);
  EXPECT_EQ(torn_out->seconds_stream_out, 0.0);
}

}  // namespace
}  // namespace sdss::server
