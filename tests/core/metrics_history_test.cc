// History: windowed counter rates, gauge envelopes, histogram deltas,
// the ring seam after wraparound, and the sampler thread.

#include "core/metrics_history.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/metrics.h"

namespace sdss::metrics {
namespace {

TEST(MetricsHistory, WindowNeedsTwoSamples) {
  Registry registry;
  History history(&registry);
  EXPECT_EQ(history.Window(60.0).status().code(),
            StatusCode::kFailedPrecondition);
  history.Sample(0.0);
  EXPECT_EQ(history.Window(60.0).status().code(),
            StatusCode::kFailedPrecondition);
  history.Sample(10.0);
  EXPECT_TRUE(history.Window(60.0).ok());
}

TEST(MetricsHistory, CounterRateOverWindow) {
  Registry registry;
  Counter* c = registry.GetCounter("reqs_total");
  History history(&registry);
  history.Sample(0.0);
  c->Inc(100);
  history.Sample(10.0);
  c->Inc(50);
  history.Sample(20.0);

  // Full window: 150 events over 20 s.
  auto window = history.Window(60.0);
  ASSERT_TRUE(window.ok());
  EXPECT_DOUBLE_EQ(window->seconds, 20.0);
  const WindowEntry* entry = window->Find("reqs_total");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, Kind::kCounter);
  EXPECT_EQ(entry->delta, 150u);
  EXPECT_DOUBLE_EQ(entry->rate_per_sec, 7.5);

  // Trailing 10 s only sees the second burst.
  window = history.Window(10.0);
  ASSERT_TRUE(window.ok());
  entry = window->Find("reqs_total");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->delta, 50u);
  EXPECT_DOUBLE_EQ(entry->rate_per_sec, 5.0);
}

TEST(MetricsHistory, GaugeEnvelopeOverWindow) {
  Registry registry;
  Gauge* g = registry.GetGauge("depth");
  History history(&registry);
  g->Set(3);
  history.Sample(0.0);
  g->Set(8);
  history.Sample(10.0);
  g->Set(1);
  history.Sample(20.0);
  auto window = history.Window(60.0);
  ASSERT_TRUE(window.ok());
  const WindowEntry* entry = window->Find("depth");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, Kind::kGauge);
  EXPECT_EQ(entry->gauge_last, 1);
  EXPECT_EQ(entry->gauge_min, 1);
  EXPECT_EQ(entry->gauge_max, 8);
}

TEST(MetricsHistory, HistogramDeltaIsolatesTheWindow) {
  Registry registry;
  Histogram* h = registry.GetHistogram("lat_us");
  History history(&registry);
  // A week of fast observations...
  for (int i = 0; i < 1000; ++i) h->Record(100);
  history.Sample(0.0);
  // ...then a slow minute. A lifetime p99 would still say 127us.
  for (int i = 0; i < 100; ++i) h->Record(8000);
  history.Sample(10.0);
  auto window = history.Window(10.0);
  ASSERT_TRUE(window.ok());
  const WindowEntry* entry = window->Find("lat_us");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->hist_delta.count, 100u);
  EXPECT_EQ(entry->hist_delta.sum, 800000u);
  EXPECT_EQ(entry->hist_delta.P99(), 8191u);  // bit_width(8000) = 13.
}

TEST(MetricsHistory, NonForwardStampIgnored) {
  Registry registry;
  Counter* c = registry.GetCounter("reqs_total");
  History history(&registry);
  history.Sample(10.0);
  c->Inc(5);
  history.Sample(10.0);  // Same stamp: dropped.
  history.Sample(5.0);   // Backwards: dropped.
  EXPECT_EQ(history.size(), 1u);
  c->Inc(5);
  history.Sample(20.0);
  auto window = history.Window(60.0);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->Find("reqs_total")->delta, 10u);
}

TEST(MetricsHistory, RingWraparoundSeamRate) {
  // Capacity 4: after many samples the ring's physical slot 0 holds a
  // recent sample and the oldest retained is mid-array. A window larger
  // than the retained span must clamp to the oldest *retained* sample
  // and compute the rate across the seam correctly.
  Registry registry;
  Counter* c = registry.GetCounter("reqs_total");
  History::Options options;
  options.capacity = 4;
  History history(&registry, options);
  for (int i = 1; i <= 10; ++i) {
    c->Inc(7);
    history.Sample(static_cast<double>(i) * 10.0);
  }
  EXPECT_EQ(history.size(), 4u);
  EXPECT_EQ(history.samples_taken(), 10u);
  // Retained stamps: 70, 80, 90, 100; counter values 49, 56, 63, 70.
  auto window = history.Window(1000.0);
  ASSERT_TRUE(window.ok());
  EXPECT_DOUBLE_EQ(window->seconds, 30.0);
  EXPECT_EQ(window->samples, 4u);
  const WindowEntry* entry = window->Find("reqs_total");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->delta, 21u);  // 70 - 49 across the seam.
  EXPECT_DOUBLE_EQ(entry->rate_per_sec, 0.7);

  // A one-period window still resolves to the newest pair.
  window = history.Window(10.0);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->Find("reqs_total")->delta, 7u);
}

TEST(MetricsHistory, CounterGoingBackwardsClampsToZero) {
  // The registry outlives resets in practice, but a snapshot swap must
  // not produce a negative (wrapped) delta.
  Registry a;
  a.GetCounter("reqs_total")->Inc(100);
  History history(&a);
  history.Sample(0.0);
  // Same registry, but imagine a lower read: simulate by sampling a
  // second registry state via direct manipulation is impossible, so use
  // two instruments: one that grows, the Find on a name only present in
  // the newest sample exercises the missing-baseline path instead.
  a.GetCounter("late_total")->Inc(5);
  history.Sample(10.0);
  auto window = history.Window(10.0);
  ASSERT_TRUE(window.ok());
  // An instrument absent from the baseline sample reads as delta from 0.
  const WindowEntry* late = window->Find("late_total");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->delta, 5u);
}

TEST(MetricsHistory, TextWindowRendersAllKinds) {
  Registry registry;
  registry.GetCounter("reqs_total")->Inc(0);
  History history(&registry);
  history.Sample(0.0);
  registry.GetCounter("reqs_total")->Inc(120);
  registry.GetGauge("depth")->Set(4);
  registry.GetHistogram("lat_us")->Record(500);
  history.Sample(10.0);
  auto text = history.TextWindow(60.0);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("# window"), std::string::npos);
  EXPECT_NE(text->find("reqs_total rate=12.00/s delta=120"),
            std::string::npos);
  EXPECT_NE(text->find("depth value=4"), std::string::npos);
  EXPECT_NE(text->find("lat_us count=1"), std::string::npos);
  // Too young for a window: the error propagates, not a crash.
  Registry empty;
  History young(&empty);
  EXPECT_FALSE(young.TextWindow(60.0).ok());
}

TEST(MetricsHistory, SamplerThreadTakesSamplesAndRunsHook) {
  Registry registry;
  registry.GetCounter("reqs_total")->Inc(1);
  History::Options options;
  options.capacity = 16;
  options.period_seconds = 0.01;
  History history(&registry, options);
  std::atomic<int> hooks{0};
  history.Start([&hooks] { hooks.fetch_add(1); });
  // Wait for a few periods' worth of samples.
  for (int i = 0; i < 500 && history.size() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  history.Stop();
  EXPECT_GE(history.size(), 3u);
  EXPECT_GE(hooks.load(), 3);
  const size_t after_stop = history.size();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(history.size(), after_stop);  // Stop really stopped it.
  history.Stop();  // Idempotent.
}

}  // namespace
}  // namespace sdss::metrics
