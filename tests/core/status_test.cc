#include "core/status.h"

#include <gtest/gtest.h>

namespace sdss {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad radius");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad radius");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad radius");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Status Fails() { return Status::IOError("disk"); }
Status Propagate() {
  SDSS_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(Propagate().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace sdss
