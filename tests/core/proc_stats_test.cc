// Process self-metrics: /proc/self readers return sane values and the
// gauges land in the registry.

#include "core/proc_stats.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/metrics.h"

namespace sdss {
namespace {

TEST(ProcStats, ReadersReturnPlausibleValues) {
  auto fds = ReadOpenFdCount();
  ASSERT_TRUE(fds.ok()) << fds.status().ToString();
  EXPECT_GE(*fds, 3);  // stdin/stdout/stderr at minimum.

  auto threads = ReadThreadCount();
  ASSERT_TRUE(threads.ok()) << threads.status().ToString();
  EXPECT_GE(*threads, 1);

  auto rss = ReadRssBytes();
  ASSERT_TRUE(rss.ok()) << rss.status().ToString();
  EXPECT_GT(*rss, 0);
}

TEST(ProcStats, ThreadCountSeesNewThreads) {
  auto before = ReadThreadCount();
  ASSERT_TRUE(before.ok());
  std::thread parked([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  });
  auto during = ReadThreadCount();
  ASSERT_TRUE(during.ok());
  EXPECT_GT(*during, *before);
  parked.join();
}

TEST(ProcStats, UpdateProcessMetricsSetsGauges) {
  metrics::Registry registry;
  UpdateProcessMetrics(&registry, 12.7);
  EXPECT_GE(registry.GetGauge("process_open_fds")->Value(), 3);
  EXPECT_GE(registry.GetGauge("process_threads")->Value(), 1);
  EXPECT_GT(registry.GetGauge("process_rss_bytes")->Value(), 0);
  EXPECT_EQ(registry.GetGauge("process_uptime_seconds")->Value(), 12);
  UpdateProcessMetrics(nullptr, 1.0);  // Null-safe.
}

}  // namespace
}  // namespace sdss
