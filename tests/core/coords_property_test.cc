// Property sweep over coordinate frames: transforms must be isometries,
// round-trip exactly, and commute with the region algebra (a band built
// in frame F contains exactly the points whose F-latitude is in range).

#include <gtest/gtest.h>

#include "core/angle.h"
#include "core/coords.h"
#include "core/random.h"

namespace sdss {
namespace {

class FramePropertyTest : public ::testing::TestWithParam<Frame> {};

TEST_P(FramePropertyTest, RoundTripIsExact) {
  Frame frame = GetParam();
  Rng rng(42 + static_cast<uint64_t>(frame));
  for (int i = 0; i < 1000; ++i) {
    Vec3 v = rng.UnitSphere();
    Vec3 back = TransformFrame(TransformFrame(v, Frame::kEquatorial, frame),
                               frame, Frame::kEquatorial);
    ASSERT_TRUE(ApproxEqual(back, v, 1e-13)) << FrameName(frame);
  }
}

TEST_P(FramePropertyTest, TransformIsAnIsometry) {
  Frame frame = GetParam();
  Rng rng(43 + static_cast<uint64_t>(frame));
  for (int i = 0; i < 300; ++i) {
    Vec3 a = rng.UnitSphere();
    Vec3 b = rng.UnitSphere();
    double before = a.AngleTo(b);
    double after = TransformFrame(a, Frame::kEquatorial, frame)
                       .AngleTo(TransformFrame(b, Frame::kEquatorial,
                                               frame));
    ASSERT_NEAR(after, before, 1e-12);
  }
}

TEST_P(FramePropertyTest, SphericalConversionConsistent) {
  Frame frame = GetParam();
  Rng rng(44 + static_cast<uint64_t>(frame));
  for (int i = 0; i < 500; ++i) {
    Vec3 eq = rng.UnitSphere();
    SphericalCoord s = ToSpherical(eq, frame);
    ASSERT_EQ(s.frame, frame);
    ASSERT_GE(s.lon_deg, 0.0);
    ASSERT_LT(s.lon_deg, 360.0);
    ASSERT_GE(s.lat_deg, -90.0);
    ASSERT_LE(s.lat_deg, 90.0);
    Vec3 back = EquatorialUnitVector(s);
    ASSERT_TRUE(ApproxEqual(back, eq, 1e-12));
  }
}

TEST_P(FramePropertyTest, LatitudeMatchesFrameLatitude) {
  // A point's latitude in frame F (via ToSpherical) must equal the
  // latitude encoded by the frame's pole direction: sin(lat) = p . pole.
  Frame frame = GetParam();
  Vec3 pole = RotationToEquatorial(frame) * Vec3{0, 0, 1};
  Rng rng(45 + static_cast<uint64_t>(frame));
  for (int i = 0; i < 500; ++i) {
    Vec3 p = rng.UnitSphere();
    SphericalCoord s = ToSpherical(p, frame);
    ASSERT_NEAR(std::sin(DegToRad(s.lat_deg)), p.Dot(pole), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Frames, FramePropertyTest,
                         ::testing::Values(Frame::kEquatorial,
                                           Frame::kGalactic,
                                           Frame::kSupergalactic),
                         [](const ::testing::TestParamInfo<Frame>& info) {
                           return FrameName(info.param);
                         });

}  // namespace
}  // namespace sdss
