#include "core/vec3.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/angle.h"

namespace sdss {
namespace {

TEST(Vec3Test, Arithmetic) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3Test, DotAndCross) {
  Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.Dot(y), 0.0);
  EXPECT_EQ(x.Cross(y), z);
  EXPECT_EQ(y.Cross(z), x);
  EXPECT_EQ(z.Cross(x), y);
  EXPECT_DOUBLE_EQ(Vec3(1, 2, 3).Dot(Vec3(4, 5, 6)), 32.0);
}

TEST(Vec3Test, NormAndNormalize) {
  Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_TRUE(ApproxEqual(v.Normalized(), Vec3(0.6, 0.8, 0)));
  // Zero vector normalizes to itself rather than NaN.
  EXPECT_EQ(Vec3().Normalized(), Vec3());
}

TEST(Vec3Test, AngleToIsRobustNearZeroAndPi) {
  Vec3 x{1, 0, 0};
  EXPECT_NEAR(x.AngleTo(x), 0.0, 1e-15);
  EXPECT_NEAR(x.AngleTo(-x), kPi, 1e-15);
  EXPECT_NEAR(x.AngleTo(Vec3(0, 1, 0)), kPi / 2, 1e-15);
  // Tiny angle: atan2 formulation keeps precision where acos would not.
  Vec3 nearly_x = Vec3(1, 1e-9, 0).Normalized();
  EXPECT_NEAR(x.AngleTo(nearly_x), 1e-9, 1e-15);
}

TEST(Matrix3Test, IdentityActsTrivially) {
  Matrix3 id = Matrix3::Identity();
  Vec3 v{1, 2, 3};
  EXPECT_EQ(id * v, v);
  EXPECT_DOUBLE_EQ(id.Determinant(), 1.0);
}

TEST(Matrix3Test, RotationZQuarterTurn) {
  Matrix3 r = Matrix3::RotationZ(kPi / 2);
  EXPECT_TRUE(ApproxEqual(r * Vec3(1, 0, 0), Vec3(0, 1, 0), 1e-15));
  EXPECT_TRUE(ApproxEqual(r * Vec3(0, 1, 0), Vec3(-1, 0, 0), 1e-15));
  EXPECT_NEAR(r.Determinant(), 1.0, 1e-15);
}

TEST(Matrix3Test, RotationXAndY) {
  EXPECT_TRUE(ApproxEqual(Matrix3::RotationX(kPi / 2) * Vec3(0, 1, 0),
                          Vec3(0, 0, 1), 1e-15));
  EXPECT_TRUE(ApproxEqual(Matrix3::RotationY(kPi / 2) * Vec3(0, 0, 1),
                          Vec3(1, 0, 0), 1e-15));
}

TEST(Matrix3Test, TransposeInvertsRotation) {
  Matrix3 r = Matrix3::RotationZ(0.7) * Matrix3::RotationX(-0.3);
  Vec3 v{0.2, -0.5, 0.8};
  Vec3 round_trip = r.Transposed() * (r * v);
  EXPECT_TRUE(ApproxEqual(round_trip, v, 1e-14));
}

TEST(Matrix3Test, CompositionMatchesSequentialApplication) {
  Matrix3 a = Matrix3::RotationZ(0.4);
  Matrix3 b = Matrix3::RotationY(1.1);
  Vec3 v{1, 2, 3};
  EXPECT_TRUE(ApproxEqual((a * b) * v, a * (b * v), 1e-13));
}

TEST(Matrix3Test, FromRowsLaysOutRows) {
  Matrix3 m = Matrix3::FromRows({1, 2, 3}, {4, 5, 6}, {7, 8, 9});
  EXPECT_EQ(m * Vec3(1, 0, 0), Vec3(1, 4, 7));
  EXPECT_EQ(m * Vec3(0, 1, 0), Vec3(2, 5, 8));
}

}  // namespace
}  // namespace sdss
