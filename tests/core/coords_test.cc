#include "core/coords.h"

#include <gtest/gtest.h>

#include "core/angle.h"

namespace sdss {
namespace {

TEST(CoordsTest, UnitVectorCardinalDirections) {
  EXPECT_TRUE(ApproxEqual(UnitVectorFromSpherical(0, 0), Vec3(1, 0, 0)));
  EXPECT_TRUE(ApproxEqual(UnitVectorFromSpherical(90, 0), Vec3(0, 1, 0)));
  EXPECT_TRUE(ApproxEqual(UnitVectorFromSpherical(0, 90), Vec3(0, 0, 1)));
  EXPECT_TRUE(ApproxEqual(UnitVectorFromSpherical(0, -90), Vec3(0, 0, -1)));
  EXPECT_TRUE(ApproxEqual(UnitVectorFromSpherical(180, 0), Vec3(-1, 0, 0)));
}

TEST(CoordsTest, SphericalRoundTrip) {
  for (double lon : {0.0, 33.0, 123.456, 250.0, 359.9}) {
    for (double lat : {-89.0, -45.5, 0.0, 12.34, 88.8}) {
      Vec3 v = UnitVectorFromSpherical(lon, lat);
      double lon2, lat2;
      SphericalFromUnitVector(v, &lon2, &lat2);
      EXPECT_NEAR(lon2, lon, 1e-10) << lon << " " << lat;
      EXPECT_NEAR(lat2, lat, 1e-10) << lon << " " << lat;
    }
  }
}

TEST(CoordsTest, PoleLongitudeIsZero) {
  double lon, lat;
  SphericalFromUnitVector(Vec3(0, 0, 1), &lon, &lat);
  EXPECT_DOUBLE_EQ(lon, 0.0);
  EXPECT_DOUBLE_EQ(lat, 90.0);
}

TEST(CoordsTest, FrameNamesRoundTrip) {
  for (Frame f : {Frame::kEquatorial, Frame::kGalactic,
                  Frame::kSupergalactic}) {
    auto r = FrameFromName(FrameName(f));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, f);
  }
  EXPECT_TRUE(FrameFromName("gal").ok());
  EXPECT_TRUE(FrameFromName("EQ").ok());
  EXPECT_FALSE(FrameFromName("ecliptic").ok());
}

TEST(CoordsTest, RotationMatricesAreProperRotations) {
  for (Frame f : {Frame::kGalactic, Frame::kSupergalactic}) {
    const Matrix3& m = RotationFromEquatorial(f);
    EXPECT_NEAR(m.Determinant(), 1.0, 1e-12) << FrameName(f);
    // Rows are orthonormal.
    Vec3 r0{m.m[0][0], m.m[0][1], m.m[0][2]};
    Vec3 r1{m.m[1][0], m.m[1][1], m.m[1][2]};
    Vec3 r2{m.m[2][0], m.m[2][1], m.m[2][2]};
    EXPECT_NEAR(r0.Norm(), 1.0, 1e-12);
    EXPECT_NEAR(r1.Norm(), 1.0, 1e-12);
    EXPECT_NEAR(r2.Norm(), 1.0, 1e-12);
    EXPECT_NEAR(r0.Dot(r1), 0.0, 1e-12);
    EXPECT_NEAR(r1.Dot(r2), 0.0, 1e-12);
    EXPECT_NEAR(r2.Dot(r0), 0.0, 1e-12);
  }
}

TEST(CoordsTest, GalacticPoleMapsToNinetyLatitude) {
  // The J2000 NGP (ra=192.859508, dec=27.128336) is b = +90 by definition.
  Vec3 ngp_eq = UnitVectorFromSpherical(192.859508, 27.128336);
  SphericalCoord gal = ToSpherical(ngp_eq, Frame::kGalactic);
  EXPECT_NEAR(gal.lat_deg, 90.0, 1e-9);
}

TEST(CoordsTest, GalacticCenterIsOriginOfGalacticFrame) {
  Vec3 gc_eq = UnitVectorFromSpherical(266.405100, -28.936175);
  SphericalCoord gal = ToSpherical(gc_eq, Frame::kGalactic);
  // The IAU NGP/GC constants are mutually consistent to ~0.4 milli-degrees;
  // the frame construction projects the residual into latitude.
  EXPECT_NEAR(gal.lon_deg, 0.0, 1e-3);
  EXPECT_NEAR(gal.lat_deg, 0.0, 1e-3);
}

TEST(CoordsTest, SupergalacticPoleInGalacticCoords) {
  // The SGP is at galactic (l, b) = (47.37, +6.32) by definition.
  SphericalCoord sgp_gal{47.37, 6.32, Frame::kGalactic};
  Vec3 eq = EquatorialUnitVector(sgp_gal);
  SphericalCoord sg = ToSpherical(eq, Frame::kSupergalactic);
  EXPECT_NEAR(sg.lat_deg, 90.0, 1e-9);
}

TEST(CoordsTest, FrameTransformRoundTrip) {
  Vec3 v = UnitVectorFromSpherical(123.4, -56.7);
  for (Frame f : {Frame::kGalactic, Frame::kSupergalactic}) {
    Vec3 there = TransformFrame(v, Frame::kEquatorial, f);
    Vec3 back = TransformFrame(there, f, Frame::kEquatorial);
    EXPECT_TRUE(ApproxEqual(back, v, 1e-13)) << FrameName(f);
  }
}

TEST(CoordsTest, TransformPreservesAngles) {
  Vec3 a = UnitVectorFromSpherical(10, 20);
  Vec3 b = UnitVectorFromSpherical(30, -40);
  double before = a.AngleTo(b);
  Vec3 ag = TransformFrame(a, Frame::kEquatorial, Frame::kGalactic);
  Vec3 bg = TransformFrame(b, Frame::kEquatorial, Frame::kGalactic);
  EXPECT_NEAR(ag.AngleTo(bg), before, 1e-12);
}

TEST(CoordsTest, AngularDistanceDeg) {
  EXPECT_NEAR(AngularDistanceDeg(0, 0, 90, 0), 90.0, 1e-12);
  EXPECT_NEAR(AngularDistanceDeg(0, 0, 0, 45), 45.0, 1e-12);
  EXPECT_NEAR(AngularDistanceDeg(10, 10, 10, 10), 0.0, 1e-12);
  // One arcsecond apart along the equator.
  EXPECT_NEAR(AngularDistanceDeg(0, 0, ArcsecToDeg(1), 0), ArcsecToDeg(1),
              1e-12);
}

TEST(CoordsTest, AngleHelpers) {
  EXPECT_DOUBLE_EQ(DegToRad(180.0), kPi);
  EXPECT_DOUBLE_EQ(RadToDeg(kPi / 2), 90.0);
  EXPECT_DOUBLE_EQ(ArcsecToDeg(3600.0), 1.0);
  EXPECT_DOUBLE_EQ(ArcminToDeg(60.0), 1.0);
  EXPECT_DOUBLE_EQ(NormalizeDeg360(-30.0), 330.0);
  EXPECT_DOUBLE_EQ(NormalizeDeg360(370.0), 10.0);
  EXPECT_DOUBLE_EQ(NormalizeDeg180(270.0), -90.0);
  EXPECT_DOUBLE_EQ(ClampLatitudeDeg(95.0), 90.0);
  EXPECT_DOUBLE_EQ(ClampLatitudeDeg(-95.0), -90.0);
}

}  // namespace
}  // namespace sdss
