#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sdss {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitWithResultReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.SubmitWithResult([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForSingleIteration) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.ParallelFor(1, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPoolTest, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(64, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace sdss
