#include "core/sim_clock.h"

#include <gtest/gtest.h>

namespace sdss {
namespace {

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.Advance(5.0);
  EXPECT_DOUBLE_EQ(c.now(), 5.0);
  c.Advance(2.5);
  EXPECT_DOUBLE_EQ(c.now(), 7.5);
}

TEST(SimClockTest, NegativeAdvanceIsIgnored) {
  SimClock c;
  c.Advance(10.0);
  c.Advance(-5.0);
  EXPECT_DOUBLE_EQ(c.now(), 10.0);
}

TEST(SimClockTest, AdvanceToNeverGoesBackwards) {
  SimClock c;
  c.AdvanceTo(100.0);
  EXPECT_DOUBLE_EQ(c.now(), 100.0);
  c.AdvanceTo(50.0);
  EXPECT_DOUBLE_EQ(c.now(), 100.0);
}

TEST(SimClockTest, Reset) {
  SimClock c;
  c.Advance(9.0);
  c.Reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(SimClockTest, DurationFormatting) {
  EXPECT_EQ(FormatSimDuration(30.0), "30.00 s");
  EXPECT_EQ(FormatSimDuration(120.0), "2.00 min");
  EXPECT_EQ(FormatSimDuration(2.0 * kSimHour), "2.00 h");
  EXPECT_EQ(FormatSimDuration(1.5 * kSimDay), "1.50 d");
}

TEST(SimClockTest, ByteFormatting) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(20'000), "20.0 KB");
  EXPECT_EQ(FormatBytes(150'000'000), "150.0 MB");
  EXPECT_EQ(FormatBytes(20'000'000'000ull), "20.00 GB");
  EXPECT_EQ(FormatBytes(1'500'000'000'000ull), "1.50 TB");
}

}  // namespace
}  // namespace sdss
