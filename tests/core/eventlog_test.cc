// EventLog: line format, JSONL round trips, rotation + pruning, and
// the reopen-never-appends discipline.

#include "core/eventlog.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/metrics.h"

namespace sdss {
namespace {

namespace fs = std::filesystem;

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("eventlog_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<std::string> ReadAllLines() {
    std::vector<std::string> lines;
    for (const std::string& name : ListEventLogFiles(dir_.string())) {
      std::ifstream in(dir_ / name);
      std::string line;
      while (std::getline(in, line)) lines.push_back(line);
    }
    return lines;
  }

  fs::path dir_;
};

TEST_F(EventLogTest, FormatLineIsByteExact) {
  Event event;
  event.severity = EventSeverity::kWarn;
  event.component = "workbench";
  event.name = "slow_query";
  event.id = 42;
  event.fields = {{"user", "alice"}, {"seconds", "3.20"}};
  EXPECT_EQ(EventLog::FormatLine(event, 1234),
            "{\"ts_ms\":1234,\"severity\":\"WARN\","
            "\"component\":\"workbench\",\"event\":\"slow_query\","
            "\"id\":42,\"user\":\"alice\",\"seconds\":\"3.20\"}");
}

TEST_F(EventLogTest, FormatLineOmitsZeroIdAndEscapes) {
  Event event;
  event.severity = EventSeverity::kError;
  event.component = "server";
  event.name = "protocol_error";
  event.fields = {{"detail", "quote\" slash\\ newline\n tab\t ctl\x01"}};
  EXPECT_EQ(EventLog::FormatLine(event, 0),
            "{\"ts_ms\":0,\"severity\":\"ERROR\","
            "\"component\":\"server\",\"event\":\"protocol_error\","
            "\"detail\":\"quote\\\" slash\\\\ newline\\n tab\\t "
            "ctl\\u0001\"}");
}

TEST_F(EventLogTest, EmitWritesParseableLines) {
  EventLog::Options options;
  uint64_t fake_ms = 1000;
  options.now_ms = [&fake_ms] { return fake_ms++; };
  auto log = EventLog::Open(dir_.string(), options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  (*log)->Emit(EventSeverity::kInfo, "server", "session_accepted", 7,
               {{"user", "bob"}});
  (*log)->Emit(EventSeverity::kError, "persist", "journal_poisoned", 0);
  EXPECT_EQ((*log)->events_written(), 2u);
  EXPECT_EQ((*log)->write_errors(), 0u);

  std::vector<std::string> lines = ReadAllLines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "{\"ts_ms\":1000,\"severity\":\"INFO\",\"component\":\"server\","
            "\"event\":\"session_accepted\",\"id\":7,\"user\":\"bob\"}");
  EXPECT_EQ(lines[1],
            "{\"ts_ms\":1001,\"severity\":\"ERROR\","
            "\"component\":\"persist\",\"event\":\"journal_poisoned\"}");
}

TEST_F(EventLogTest, RotatesBySizeAndPrunesOldest) {
  EventLog::Options options;
  options.rotate_bytes = 200;  // A couple of lines per file.
  options.max_files = 3;
  options.now_ms = [] { return uint64_t{1}; };
  auto log = EventLog::Open(dir_.string(), options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  for (int i = 0; i < 40; ++i) {
    (*log)->Emit(EventSeverity::kInfo, "test", "tick",
                 static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ((*log)->events_written(), 40u);
  EXPECT_GT((*log)->current_file(), 1u);
  std::vector<std::string> files = ListEventLogFiles(dir_.string());
  EXPECT_LE(files.size(), 3u);
  ASSERT_FALSE(files.empty());
  // Ascending and the newest matches current_file().
  for (size_t i = 1; i < files.size(); ++i) {
    EXPECT_LT(files[i - 1], files[i]);
  }
  // No events lost across rotation boundaries among retained files is
  // not guaranteed (old files are pruned); but retained lines parse.
  for (const std::string& line : ReadAllLines()) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST_F(EventLogTest, ReopenStartsFreshFile) {
  uint64_t first_file = 0;
  {
    auto log = EventLog::Open(dir_.string());
    ASSERT_TRUE(log.ok());
    (*log)->Emit(EventSeverity::kInfo, "test", "one", 0);
    first_file = (*log)->current_file();
  }
  auto log = EventLog::Open(dir_.string());
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->current_file(), first_file + 1);
  (*log)->Emit(EventSeverity::kInfo, "test", "two", 0);
  EXPECT_EQ(ListEventLogFiles(dir_.string()).size(), 2u);
}

TEST_F(EventLogTest, MetricsCountersWiredWhenRegistrySet) {
  metrics::Registry registry;
  EventLog::Options options;
  options.metrics = &registry;
  options.rotate_bytes = 100;
  auto log = EventLog::Open(dir_.string(), options);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 10; ++i) {
    (*log)->Emit(EventSeverity::kInfo, "test", "tick", 0);
  }
  EXPECT_EQ(registry.GetCounter("eventlog_events_emitted")->Value(), 10u);
  EXPECT_GT(registry.GetCounter("eventlog_rotations")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("eventlog_write_errors")->Value(), 0u);
}

TEST_F(EventLogTest, LogEventIsNullSafe) {
  LogEvent(nullptr, EventSeverity::kInfo, "test", "noop", 0);  // No crash.
  EXPECT_TRUE(ListEventLogFiles((dir_ / "missing").string()).empty());
}

}  // namespace
}  // namespace sdss
