// HealthWatchdog: rule kinds firing and clearing against an injected
// sample timeline, streak persistence, and transition events.

#include "core/watchdog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/eventlog.h"
#include "core/metrics.h"
#include "core/metrics_history.h"

namespace sdss {
namespace {

namespace fs = std::filesystem;

HealthRule GaugeNonZeroRule(const std::string& metric) {
  HealthRule rule;
  rule.name = metric + "_rule";
  rule.kind = HealthRule::Kind::kGaugeNonZero;
  rule.metric = metric;
  return rule;
}

TEST(Watchdog, StartsReadyBeforeAnyEvaluation) {
  metrics::Registry registry;
  metrics::History history(&registry);
  HealthWatchdog::Options options;
  options.rules = {GaugeNonZeroRule("persist_journal_poisoned")};
  HealthWatchdog watchdog(&history, options);
  EXPECT_TRUE(watchdog.ready());
  // Too few samples: rules cannot judge, readiness holds.
  watchdog.Evaluate();
  EXPECT_TRUE(watchdog.ready());
}

TEST(Watchdog, GaugeNonZeroFiresAndClears) {
  metrics::Registry registry;
  metrics::Gauge* poisoned = registry.GetGauge("persist_journal_poisoned");
  metrics::History history(&registry);
  HealthWatchdog::Options options;
  options.rules = {GaugeNonZeroRule("persist_journal_poisoned")};
  HealthWatchdog watchdog(&history, options);

  history.Sample(0.0);
  history.Sample(10.0);
  watchdog.Evaluate();
  EXPECT_TRUE(watchdog.ready());

  poisoned->Set(1);
  history.Sample(20.0);
  watchdog.Evaluate();  // One sampler period later: not ready.
  EXPECT_FALSE(watchdog.ready());
  ASSERT_EQ(watchdog.failing().size(), 1u);
  EXPECT_EQ(watchdog.failing()[0], "persist_journal_poisoned_rule");

  poisoned->Set(0);
  history.Sample(30.0);
  watchdog.Evaluate();
  EXPECT_TRUE(watchdog.ready());
  EXPECT_TRUE(watchdog.failing().empty());
}

TEST(Watchdog, GaugeAtLeastNeedsConsecutiveStreak) {
  metrics::Registry registry;
  metrics::Gauge* depth = registry.GetGauge("workbench_quick_queued");
  metrics::History history(&registry);
  HealthRule rule;
  rule.name = "quick_lane_pinned";
  rule.kind = HealthRule::Kind::kGaugeAtLeast;
  rule.metric = "workbench_quick_queued";
  rule.threshold = 4.0;
  rule.consecutive = 3;
  HealthWatchdog::Options options;
  options.rules = {rule};
  HealthWatchdog watchdog(&history, options);

  depth->Set(4);
  double now = 0.0;
  history.Sample(now);
  history.Sample(now += 10.0);
  watchdog.Evaluate();  // Streak 1.
  EXPECT_TRUE(watchdog.ready());
  history.Sample(now += 10.0);
  watchdog.Evaluate();  // Streak 2.
  EXPECT_TRUE(watchdog.ready());
  history.Sample(now += 10.0);
  watchdog.Evaluate();  // Streak 3: pinned.
  EXPECT_FALSE(watchdog.ready());

  // One dip below the bound resets the streak and clears the rule.
  depth->Set(3);
  history.Sample(now += 10.0);
  watchdog.Evaluate();
  EXPECT_TRUE(watchdog.ready());
}

TEST(Watchdog, CounterRateAboveFires) {
  metrics::Registry registry;
  metrics::Counter* retries = registry.GetCounter("server_accept_retries");
  metrics::History history(&registry);
  HealthRule rule;
  rule.name = "accept_retries_climbing";
  rule.kind = HealthRule::Kind::kCounterRateAbove;
  rule.metric = "server_accept_retries";
  rule.threshold = 1.0;  // Per second.
  rule.window_seconds = 60.0;
  HealthWatchdog::Options options;
  options.rules = {rule};
  HealthWatchdog watchdog(&history, options);

  history.Sample(0.0);
  retries->Inc(5);  // 0.5/s over 10s: under threshold.
  history.Sample(10.0);
  watchdog.Evaluate();
  EXPECT_TRUE(watchdog.ready());

  retries->Inc(100);  // 10/s over the last 10s.
  history.Sample(20.0);
  watchdog.Evaluate();
  EXPECT_FALSE(watchdog.ready());
}

TEST(Watchdog, HistogramP99AboveFiresOnlyWithObservations) {
  metrics::Registry registry;
  metrics::Histogram* fsync = registry.GetHistogram("persist_journal_fsync_us");
  metrics::History history(&registry);
  HealthRule rule;
  rule.name = "fsync_p99_high";
  rule.kind = HealthRule::Kind::kHistogramP99Above;
  rule.metric = "persist_journal_fsync_us";
  rule.threshold = 200000.0;
  rule.window_seconds = 60.0;
  HealthWatchdog::Options options;
  options.rules = {rule};
  HealthWatchdog watchdog(&history, options);

  history.Sample(0.0);
  history.Sample(10.0);
  watchdog.Evaluate();  // No observations: passes.
  EXPECT_TRUE(watchdog.ready());

  for (int i = 0; i < 100; ++i) fsync->Record(1'000'000);  // A sick disk.
  history.Sample(20.0);
  watchdog.Evaluate();
  EXPECT_FALSE(watchdog.ready());

  // A healthy window (new observations all fast) clears it.
  for (int i = 0; i < 100; ++i) fsync->Record(500);
  history.Sample(90.0);
  watchdog.Evaluate();
  EXPECT_TRUE(watchdog.ready());
}

TEST(Watchdog, TransitionsEmitEvents) {
  fs::path dir = fs::path(::testing::TempDir()) / "watchdog_events";
  fs::remove_all(dir);
  auto log = EventLog::Open(dir.string());
  ASSERT_TRUE(log.ok());

  metrics::Registry registry;
  metrics::Gauge* poisoned = registry.GetGauge("persist_journal_poisoned");
  metrics::History history(&registry);
  HealthWatchdog::Options options;
  options.rules = {GaugeNonZeroRule("persist_journal_poisoned")};
  options.events = log->get();
  HealthWatchdog watchdog(&history, options);

  history.Sample(0.0);
  history.Sample(10.0);
  watchdog.Evaluate();
  EXPECT_EQ((*log)->events_written(), 0u);  // Steady state: silent.

  poisoned->Set(1);
  history.Sample(20.0);
  watchdog.Evaluate();  // Fire transition.
  watchdog.Evaluate();  // Still firing: no duplicate event.
  EXPECT_EQ((*log)->events_written(), 1u);

  poisoned->Set(0);
  history.Sample(30.0);
  watchdog.Evaluate();  // Clear transition.
  EXPECT_EQ((*log)->events_written(), 2u);
  fs::remove_all(dir);
}

TEST(Watchdog, DefaultRulesCoverTheStockConditions) {
  std::vector<HealthRule> rules = HealthWatchdog::DefaultRules(8);
  ASSERT_EQ(rules.size(), 4u);
  std::vector<std::string> names;
  for (const HealthRule& rule : rules) names.push_back(rule.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "accept_retries_climbing"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "quick_lane_pinned"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "journal_poisoned"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fsync_p99_high"),
            names.end());
}

}  // namespace
}  // namespace sdss
