#include "core/random.h"

#include <gtest/gtest.h>

#include "core/angle.h"

namespace sdss {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double u = r.Uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng r(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = r.Gaussian(2.0, 3.0);
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += r.Bernoulli(0.25);
  EXPECT_NEAR(hits / double(n), 0.25, 0.02);
}

TEST(RngTest, PoissonMean) {
  Rng r(17);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.Poisson(6.0));
  EXPECT_NEAR(sum / n, 6.0, 0.2);
}

TEST(RngTest, UnitSphereIsUnitAndCoversHemispheres) {
  Rng r(19);
  int north = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    Vec3 v = r.UnitSphere();
    EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
    north += v.z > 0;
  }
  EXPECT_NEAR(north / double(n), 0.5, 0.05);
}

TEST(RngTest, UnitCapStaysWithinRadius) {
  Rng r(23);
  Vec3 center = Vec3(0.3, -0.5, 0.8).Normalized();
  double radius = DegToRad(5.0);
  for (int i = 0; i < 2000; ++i) {
    Vec3 v = r.UnitCap(center, radius);
    EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
    EXPECT_LE(center.AngleTo(v), radius + 1e-12);
  }
}

TEST(RngTest, UnitCapIsAreaUniform) {
  // Points in the half-angle sub-cap should appear with probability
  // (1-cos(r/2)) / (1-cos(r)) ~ 0.2512 for r = 30 deg.
  Rng r(29);
  Vec3 center{0, 0, 1};
  double radius = DegToRad(30.0);
  int inner = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (center.AngleTo(r.UnitCap(center, radius)) < radius / 2) ++inner;
  }
  double expected = (1 - std::cos(radius / 2)) / (1 - std::cos(radius));
  EXPECT_NEAR(inner / double(n), expected, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream is not identical to the parent's continuation.
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.Next64() != child.Next64()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace sdss
