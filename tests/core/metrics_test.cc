#include "core/metrics.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace sdss::metrics {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Gauge, SetAddAndNegativeValues) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds zeros; bucket i (i >= 1) holds values with
  // bit_width == i, i.e. [2^(i-1), 2^i).
  Histogram h;
  h.Record(0);                         // bucket 0
  h.Record(1);                         // bucket 1
  h.Record(2);                         // bucket 2
  h.Record(3);                         // bucket 2
  h.Record(4);                         // bucket 3
  h.Record(1023);                      // bucket 10
  h.Record(1024);                      // bucket 11
  h.Record(UINT64_MAX);                // bucket 64
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 8u);

  auto bucket_count = [&snap](uint8_t index) -> uint64_t {
    for (const auto& [i, n] : snap.buckets) {
      if (i == index) return n;
    }
    return 0;
  };
  EXPECT_EQ(bucket_count(0), 1u);
  EXPECT_EQ(bucket_count(1), 1u);
  EXPECT_EQ(bucket_count(2), 2u);
  EXPECT_EQ(bucket_count(3), 1u);
  EXPECT_EQ(bucket_count(10), 1u);
  EXPECT_EQ(bucket_count(11), 1u);
  EXPECT_EQ(bucket_count(64), 1u);

  // Sparse invariants: ascending indexes, no zero-count entries.
  for (size_t i = 1; i < snap.buckets.size(); ++i) {
    EXPECT_LT(snap.buckets[i - 1].first, snap.buckets[i].first);
  }
  for (const auto& [index, n] : snap.buckets) EXPECT_GT(n, 0u);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(HistogramBucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramBucketUpperBound(1), 1u);
  EXPECT_EQ(HistogramBucketUpperBound(2), 3u);
  EXPECT_EQ(HistogramBucketUpperBound(10), 1023u);
  EXPECT_EQ(HistogramBucketUpperBound(64), UINT64_MAX);
}

TEST(Histogram, QuantilesAtBucketResolution) {
  Histogram h;
  // 90 observations of ~100us, 9 of ~1000us, 1 of ~10000us: a classic
  // latency tail.
  for (int i = 0; i < 90; ++i) h.Record(100);
  for (int i = 0; i < 9; ++i) h.Record(1000);
  h.Record(10000);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 90u * 100 + 9u * 1000 + 10000);
  // p50 and p90 land in the 100-bucket (bit_width(100)=7, bound 127);
  // p95 in the 1000-bucket (bit_width=10, bound 1023); p99 rank 99 is
  // still a 1000 observation; the max lands in the 10000 bucket.
  EXPECT_EQ(snap.Quantile(0.50), 127u);
  EXPECT_EQ(snap.Quantile(0.90), 127u);
  EXPECT_EQ(snap.P95(), 1023u);
  EXPECT_EQ(snap.P99(), 1023u);
  EXPECT_EQ(snap.Quantile(1.0), 16383u);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Snapshot().Quantile(0.5), 0u);
}

TEST(Registry, GetOrCreateReturnsStableAddress) {
  Registry reg;
  Counter* a = reg.GetCounter("x_total");
  Counter* b = reg.GetCounter("x_total");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->Value(), 3u);
}

TEST(Registry, KindClashReturnsDetachedInstrument) {
  Registry reg;
  Counter* c = reg.GetCounter("clash");
  Gauge* g = reg.GetGauge("clash");  // Wrong kind: detached dummy.
  ASSERT_NE(g, nullptr);
  g->Set(99);
  c->Inc();
  auto snaps = reg.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].kind, Kind::kCounter);
  EXPECT_EQ(snaps[0].counter, 1u);
}

TEST(Registry, SnapshotSortedByName) {
  Registry reg;
  reg.GetCounter("zeta");
  reg.GetGauge("alpha");
  reg.GetHistogram("mid");
  auto snaps = reg.Snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "alpha");
  EXPECT_EQ(snaps[1].name, "mid");
  EXPECT_EQ(snaps[2].name, "zeta");
}

TEST(Registry, TextExpositionShape) {
  Registry reg;
  reg.GetCounter("reqs_total")->Inc(5);
  reg.GetGauge("depth")->Set(-2);
  Histogram* h = reg.GetHistogram("lat_us");
  h->Record(3);
  h->Record(100);
  std::string text = reg.TextExposition();
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 103"), std::string::npos);
  // Cumulative buckets end with the +Inf catch-all.
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
}

TEST(Registry, ConcurrentRecordingIsExact) {
  // Satellite 1 (data-race audit): hammer one counter, one gauge, and
  // one histogram from several threads; under TSAN this is the race
  // detector's probe, and in any build the totals must be exact --
  // relaxed ordering may not lose increments.
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  Counter* c = reg.GetCounter("stress_total");
  Gauge* g = reg.GetGauge("stress_depth");
  Histogram* h = reg.GetHistogram("stress_us");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        g->Add(1);
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
        // Concurrent registration of the same names must also be safe.
        if (i % 4096 == 0) reg.GetCounter("stress_total");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(g->Value(), int64_t{kThreads} * kPerThread);
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, uint64_t{kThreads} * kPerThread);
  uint64_t bucket_total = 0;
  for (const auto& [index, n] : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.count);
}

}  // namespace
}  // namespace sdss::metrics
