#include "core/metrics.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace sdss::metrics {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Gauge, SetAddAndNegativeValues) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds zeros; bucket i (i >= 1) holds values with
  // bit_width == i, i.e. [2^(i-1), 2^i).
  Histogram h;
  h.Record(0);                         // bucket 0
  h.Record(1);                         // bucket 1
  h.Record(2);                         // bucket 2
  h.Record(3);                         // bucket 2
  h.Record(4);                         // bucket 3
  h.Record(1023);                      // bucket 10
  h.Record(1024);                      // bucket 11
  h.Record(UINT64_MAX);                // bucket 64
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 8u);

  auto bucket_count = [&snap](uint8_t index) -> uint64_t {
    for (const auto& [i, n] : snap.buckets) {
      if (i == index) return n;
    }
    return 0;
  };
  EXPECT_EQ(bucket_count(0), 1u);
  EXPECT_EQ(bucket_count(1), 1u);
  EXPECT_EQ(bucket_count(2), 2u);
  EXPECT_EQ(bucket_count(3), 1u);
  EXPECT_EQ(bucket_count(10), 1u);
  EXPECT_EQ(bucket_count(11), 1u);
  EXPECT_EQ(bucket_count(64), 1u);

  // Sparse invariants: ascending indexes, no zero-count entries.
  for (size_t i = 1; i < snap.buckets.size(); ++i) {
    EXPECT_LT(snap.buckets[i - 1].first, snap.buckets[i].first);
  }
  for (const auto& [index, n] : snap.buckets) EXPECT_GT(n, 0u);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(HistogramBucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramBucketUpperBound(1), 1u);
  EXPECT_EQ(HistogramBucketUpperBound(2), 3u);
  EXPECT_EQ(HistogramBucketUpperBound(10), 1023u);
  EXPECT_EQ(HistogramBucketUpperBound(64), UINT64_MAX);
}

TEST(Histogram, QuantilesAtBucketResolution) {
  Histogram h;
  // 90 observations of ~100us, 9 of ~1000us, 1 of ~10000us: a classic
  // latency tail.
  for (int i = 0; i < 90; ++i) h.Record(100);
  for (int i = 0; i < 9; ++i) h.Record(1000);
  h.Record(10000);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 90u * 100 + 9u * 1000 + 10000);
  // p50 and p90 land in the 100-bucket (bit_width(100)=7, bound 127);
  // p95 in the 1000-bucket (bit_width=10, bound 1023); p99 rank 99 is
  // still a 1000 observation; the max lands in the 10000 bucket.
  EXPECT_EQ(snap.Quantile(0.50), 127u);
  EXPECT_EQ(snap.Quantile(0.90), 127u);
  EXPECT_EQ(snap.P95(), 1023u);
  EXPECT_EQ(snap.P99(), 1023u);
  EXPECT_EQ(snap.Quantile(1.0), 16383u);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Snapshot().Quantile(0.5), 0u);
}

TEST(Registry, GetOrCreateReturnsStableAddress) {
  Registry reg;
  Counter* a = reg.GetCounter("x_total");
  Counter* b = reg.GetCounter("x_total");
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->Value(), 3u);
}

TEST(Registry, KindClashReturnsDetachedInstrument) {
  Registry reg;
  Counter* c = reg.GetCounter("clash");
  Gauge* g = reg.GetGauge("clash");  // Wrong kind: detached dummy.
  ASSERT_NE(g, nullptr);
  g->Set(99);
  c->Inc();
  auto snaps = reg.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].kind, Kind::kCounter);
  EXPECT_EQ(snaps[0].counter, 1u);
}

TEST(Registry, SnapshotSortedByName) {
  Registry reg;
  reg.GetCounter("zeta");
  reg.GetGauge("alpha");
  reg.GetHistogram("mid");
  auto snaps = reg.Snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "alpha");
  EXPECT_EQ(snaps[1].name, "mid");
  EXPECT_EQ(snaps[2].name, "zeta");
}

TEST(Registry, TextExpositionShape) {
  Registry reg;
  reg.GetCounter("reqs_total")->Inc(5);
  reg.GetGauge("depth")->Set(-2);
  Histogram* h = reg.GetHistogram("lat_us");
  h->Record(3);
  h->Record(100);
  std::string text = reg.TextExposition();
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 103"), std::string::npos);
  // Cumulative buckets end with the +Inf catch-all.
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
}

TEST(Histogram, AllCountsInOneBucketQuantiles) {
  // Every observation identical: all quantiles collapse to that
  // bucket's bound.
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(500);  // bit_width = 9.
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.buckets.size(), 1u);
  EXPECT_EQ(snap.Quantile(0.0), 511u);
  EXPECT_EQ(snap.P50(), 511u);
  EXPECT_EQ(snap.P99(), 511u);
  EXPECT_EQ(snap.Quantile(1.0), 511u);
}

TEST(Histogram, TopBucketOverflowQuantile) {
  // UINT64_MAX lands in bucket 64, whose inclusive upper bound is
  // UINT64_MAX itself -- the quantile must not wrap to 0 via 1 << 64.
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX - 1);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Quantile(1.0), UINT64_MAX);
  EXPECT_EQ(snap.P50(), UINT64_MAX);
  // Sum wraps modulo 2^64 by design of uint64_t accumulation.
  EXPECT_EQ(snap.count, 2u);
}

TEST(PrometheusName, SanitizesToCharset) {
  EXPECT_EQ(PrometheusMetricName("server_reqs_total"), "server_reqs_total");
  EXPECT_EQ(PrometheusMetricName("ns:reqs"), "ns:reqs");
  EXPECT_EQ(PrometheusMetricName("bad-name.with spaces"),
            "bad_name_with_spaces");
  EXPECT_EQ(PrometheusMetricName("2fast"), "_2fast");
  EXPECT_EQ(PrometheusMetricName(""), "_");
}

// A strict line-level parser for the Prometheus text format (0.0.4),
// scoped to what TextExposition emits: # TYPE comments, bare samples,
// and histogram series. Fails the test on any malformed line.
void CheckPrometheusText(const std::string& text) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n') << "exposition must end with a newline";
  auto valid_name = [](const std::string& name) {
    if (name.empty()) return false;
    for (size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         c == '_' || c == ':';
      const bool digit = c >= '0' && c <= '9';
      if (!alpha && !(digit && i > 0)) return false;
    }
    return true;
  };
  size_t start = 0;
  std::string last_type_name;
  std::string last_type;
  uint64_t last_bucket_cumulative = 0;
  bool saw_inf = false;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.rfind("# TYPE ", 0) == 0) {
      // "# TYPE <name> <counter|gauge|histogram>"
      std::string rest = line.substr(7);
      size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      last_type_name = rest.substr(0, sp);
      last_type = rest.substr(sp + 1);
      EXPECT_TRUE(valid_name(last_type_name)) << line;
      EXPECT_TRUE(last_type == "counter" || last_type == "gauge" ||
                  last_type == "histogram")
          << line;
      last_bucket_cumulative = 0;
      saw_inf = false;
      continue;
    }
    ASSERT_NE(line.find(' '), std::string::npos) << line;
    // "<name>[{le="<bound>"}] <value>"
    size_t sp = line.rfind(' ');
    std::string series = line.substr(0, sp);
    std::string value = line.substr(sp + 1);
    ASSERT_FALSE(value.empty()) << line;
    for (size_t i = 0; i < value.size(); ++i) {
      const char c = value[i];
      EXPECT_TRUE((c >= '0' && c <= '9') || (i == 0 && c == '-')) << line;
    }
    std::string name = series;
    if (size_t brace = series.find('{'); brace != std::string::npos) {
      name = series.substr(0, brace);
      ASSERT_EQ(series.back(), '}') << line;
      std::string labels = series.substr(brace + 1,
                                         series.size() - brace - 2);
      // TextExposition only emits the `le` label on _bucket series.
      ASSERT_EQ(labels.rfind("le=\"", 0), 0u) << line;
      ASSERT_EQ(labels.back(), '"') << line;
      std::string bound = labels.substr(4, labels.size() - 5);
      EXPECT_FALSE(bound.empty()) << line;
      ASSERT_EQ(name.size() >= 7 &&
                    name.compare(name.size() - 7, 7, "_bucket") == 0,
                true)
          << line;
      // Cumulative: counts never decrease as `le` rises.
      uint64_t v = std::stoull(value);
      EXPECT_GE(v, last_bucket_cumulative) << line;
      last_bucket_cumulative = v;
      if (bound == "+Inf") saw_inf = true;
    }
    EXPECT_TRUE(valid_name(name)) << line;
    // Samples must follow their own TYPE comment.
    ASSERT_FALSE(last_type_name.empty()) << line;
    if (last_type == "histogram") {
      EXPECT_TRUE(name == last_type_name + "_bucket" ||
                  name == last_type_name + "_sum" ||
                  name == last_type_name + "_count")
          << line;
      if (name == last_type_name + "_count") {
        EXPECT_TRUE(saw_inf) << "histogram without +Inf bucket: " << line;
        EXPECT_EQ(std::stoull(value), last_bucket_cumulative)
            << "_count must equal the +Inf bucket: " << line;
      }
    } else {
      EXPECT_EQ(name, last_type_name) << line;
    }
  }
}

TEST(Registry, TextExpositionIsStrictlyConformant) {
  Registry reg;
  reg.GetCounter("reqs_total")->Inc(7);
  reg.GetGauge("depth")->Set(-3);
  Histogram* h = reg.GetHistogram("lat_us");
  h->Record(0);
  h->Record(5);
  h->Record(100);
  h->Record(UINT64_MAX);  // Top bucket: le bound must not wrap.
  Histogram* empty = reg.GetHistogram("never_us");  // No observations.
  (void)empty;
  CheckPrometheusText(reg.TextExposition());
  std::string text = reg.TextExposition();
  // Empty histogram still exposes the full series family.
  EXPECT_NE(text.find("never_us_bucket{le=\"+Inf\"} 0"), std::string::npos);
  EXPECT_NE(text.find("never_us_sum 0"), std::string::npos);
  EXPECT_NE(text.find("never_us_count 0"), std::string::npos);
  // The top bucket's bound is UINT64_MAX in decimal, not 0.
  EXPECT_NE(text.find("lat_us_bucket{le=\"18446744073709551615\"}"),
            std::string::npos);
}

TEST(Registry, TextExpositionLongAndHostileNames) {
  // The old formatter built lines in a 160-byte stack buffer; a long
  // name silently truncated mid-line and corrupted the page. Names are
  // also sanitized, so a hostile registry name cannot break a scraper.
  Registry reg;
  std::string long_name(300, 'a');
  reg.GetCounter(long_name)->Inc(1);
  reg.GetHistogram("weird name-with.dots")->Record(42);
  std::string text = reg.TextExposition();
  EXPECT_NE(text.find("# TYPE " + long_name + " counter"),
            std::string::npos);
  EXPECT_NE(text.find(long_name + " 1"), std::string::npos);
  EXPECT_NE(text.find("weird_name_with_dots_count 1"), std::string::npos);
  CheckPrometheusText(text);
}

TEST(Registry, ConcurrentRecordingIsExact) {
  // Satellite 1 (data-race audit): hammer one counter, one gauge, and
  // one histogram from several threads; under TSAN this is the race
  // detector's probe, and in any build the totals must be exact --
  // relaxed ordering may not lose increments.
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  Counter* c = reg.GetCounter("stress_total");
  Gauge* g = reg.GetGauge("stress_depth");
  Histogram* h = reg.GetHistogram("stress_us");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        g->Add(1);
        h->Record(static_cast<uint64_t>(t * kPerThread + i));
        // Concurrent registration of the same names must also be safe.
        if (i % 4096 == 0) reg.GetCounter("stress_total");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(g->Value(), int64_t{kThreads} * kPerThread);
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, uint64_t{kThreads} * kPerThread);
  uint64_t bucket_total = 0;
  for (const auto& [index, n] : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.count);
}

}  // namespace
}  // namespace sdss::metrics
