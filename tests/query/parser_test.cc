#include "query/parser.h"

#include <gtest/gtest.h>

#include "catalog/photo_obj.h"

namespace sdss::query {
namespace {

TEST(ParserTest, MinimalSelect) {
  auto q = Parse("SELECT * FROM photo");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->first.table, TableRef::kPhoto);
  EXPECT_TRUE(q->first.projection.empty());
  EXPECT_EQ(q->first.agg, AggFunc::kNone);
  EXPECT_EQ(q->first.where, nullptr);
  EXPECT_FALSE(q->IsSetQuery());
}

TEST(ParserTest, ProjectionList) {
  auto q = Parse("SELECT obj_id, ra, dec, r FROM photo");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->first.projection,
            (std::vector<std::string>{"obj_id", "ra", "dec", "r"}));
}

TEST(ParserTest, TagTable) {
  auto q = Parse("SELECT r FROM tag");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->first.table, TableRef::kTag);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  auto q = Parse("select R from PHOTO where CLASS = 'qso' Limit 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->first.limit, 5);
}

TEST(ParserTest, WherePredicate) {
  auto q = Parse("SELECT obj_id FROM photo WHERE r < 22 AND g - r > 0.5");
  ASSERT_TRUE(q.ok());
  ASSERT_NE(q->first.where, nullptr);
  std::string s = q->first.where->ToString();
  EXPECT_NE(s.find("r < 22"), std::string::npos);
  EXPECT_NE(s.find("(g - r) > 0.5"), std::string::npos);
}

TEST(ParserTest, ClassLiteralBecomesEnumValue) {
  auto q = Parse("SELECT obj_id FROM photo WHERE class = 'QSO'");
  ASSERT_TRUE(q.ok());
  std::string s = q->first.where->ToString();
  // QSO = 3 in the enum.
  EXPECT_NE(s.find("class = 3"), std::string::npos);
}

TEST(ParserTest, SpatialCircle) {
  auto q = Parse("SELECT obj_id FROM photo WHERE CIRCLE(185.0, 2.5, 1.5)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::string s = q->first.where->ToString();
  EXPECT_NE(s.find("CIRCLE[Equatorial](185,2.5,1.5)"), std::string::npos);
}

TEST(ParserTest, SpatialWithFrameAndNegatives) {
  auto q =
      Parse("SELECT obj_id FROM photo WHERE BAND('GAL', -10, 10)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_NE(q->first.where->ToString().find("BAND[Galactic](-10,10)"),
            std::string::npos);
}

TEST(ParserTest, SpatialRect) {
  auto q = Parse(
      "SELECT obj_id FROM photo WHERE RECT('SGAL', 10, 20, -5, 5) AND r < "
      "20");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_NE(q->first.where->ToString().find("RECT[Supergalactic]"),
            std::string::npos);
}

TEST(ParserTest, OrderLimitSample) {
  auto q = Parse(
      "SELECT obj_id, r FROM photo WHERE r < 20 ORDER BY r DESC LIMIT 10 "
      "SAMPLE 0.5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->first.has_order);
  EXPECT_EQ(q->first.order_by, "r");
  EXPECT_TRUE(q->first.order_desc);
  EXPECT_EQ(q->first.limit, 10);
  EXPECT_DOUBLE_EQ(q->first.sample, 0.5);
}

TEST(ParserTest, OrderAscIsDefault) {
  auto q = Parse("SELECT r FROM photo ORDER BY r");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->first.order_desc);
  auto q2 = Parse("SELECT r FROM photo ORDER BY r ASC");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(q2->first.order_desc);
}

TEST(ParserTest, Aggregates) {
  auto q = Parse("SELECT COUNT(*) FROM photo WHERE r < 22");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->first.agg, AggFunc::kCount);
  EXPECT_TRUE(q->first.agg_attr.empty());

  auto q2 = Parse("SELECT AVG(r) FROM tag");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->first.agg, AggFunc::kAvg);
  EXPECT_EQ(q2->first.agg_attr, "r");

  for (const char* fn : {"MIN", "MAX", "SUM"}) {
    auto qf = Parse(std::string("SELECT ") + fn + "(g) FROM photo");
    ASSERT_TRUE(qf.ok()) << fn;
    EXPECT_EQ(qf->first.agg_attr, "g");
  }
}

TEST(ParserTest, SetOperations) {
  auto q = Parse(
      "SELECT obj_id FROM photo WHERE r < 20 "
      "UNION SELECT obj_id FROM photo WHERE g < 20 "
      "EXCEPT SELECT obj_id FROM photo WHERE i < 15");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->rest.size(), 2u);
  EXPECT_EQ(q->rest[0].first, SetOp::kUnion);
  EXPECT_EQ(q->rest[1].first, SetOp::kExcept);
  EXPECT_TRUE(q->IsSetQuery());
}

TEST(ParserTest, IntersectQuery) {
  auto q = Parse(
      "SELECT obj_id FROM tag WHERE r < 20 "
      "INTERSECT SELECT obj_id FROM tag WHERE g - r > 0.8");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->rest.size(), 1u);
  EXPECT_EQ(q->rest[0].first, SetOp::kIntersect);
}

TEST(ParserTest, ParenthesizedExpressions) {
  auto q = Parse(
      "SELECT obj_id FROM photo WHERE (r < 20 OR g < 19) AND NOT (i > 22)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::string s = q->first.where->ToString();
  EXPECT_NE(s.find("OR"), std::string::npos);
  EXPECT_NE(s.find("NOT"), std::string::npos);
}

TEST(ParserTest, OperatorPrecedence) {
  auto q = Parse("SELECT obj_id FROM photo WHERE u - g < 0.2 + 0.1 * 2");
  ASSERT_TRUE(q.ok());
  // Multiplication binds tighter than addition, both tighter than '<'.
  EXPECT_EQ(q->first.where->ToString(),
            "((u - g) < (0.2 + (0.1 * 2)))");
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto q = Parse("SELECT FROM photo");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("position"), std::string::npos);
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT *").ok());
  EXPECT_FALSE(Parse("SELECT * FROM spectra").ok());
  EXPECT_FALSE(Parse("SELECT * FROM photo WHERE").ok());
  EXPECT_FALSE(Parse("SELECT * FROM photo LIMIT x").ok());
  EXPECT_FALSE(Parse("SELECT * FROM photo SAMPLE 2.0").ok());
  EXPECT_FALSE(Parse("SELECT * FROM photo trailing garbage").ok());
  EXPECT_FALSE(Parse("SELECT * FROM photo WHERE CIRCLE(1,2)").ok());
  EXPECT_FALSE(Parse("SELECT * FROM photo WHERE class = 'NEBULA'").ok());
  EXPECT_FALSE(Parse("SELECT * FROM photo WHERE r <").ok());
  EXPECT_FALSE(
      Parse("SELECT * FROM photo WHERE CIRCLE('ECLIPTIC', 1, 2, 3)").ok());
}

TEST(ParserTest, IntoMyDbTarget) {
  auto q = Parse("SELECT * INTO mydb.bright FROM photo WHERE r < 21");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->first.into_mydb, "bright");
  EXPECT_EQ(q->first.table, TableRef::kPhoto);
}

TEST(ParserTest, FromMyDbTable) {
  auto q = Parse("SELECT obj_id, r FROM mydb.bright WHERE g - r < 0.5 "
                 "ORDER BY r LIMIT 10");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->first.table, TableRef::kMyDb);
  EXPECT_EQ(q->first.mydb_name, "bright");
  EXPECT_TRUE(q->first.into_mydb.empty());
  EXPECT_EQ(q->first.limit, 10);
}

TEST(ParserTest, IntoFromMyDbChains) {
  auto q = Parse("SELECT * INTO mydb.refined FROM mydb.bright "
                 "WHERE class = 'GALAXY'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->first.into_mydb, "refined");
  EXPECT_EQ(q->first.mydb_name, "bright");
}

TEST(ParserTest, RejectsMalformedMyDb) {
  // INTO demands SELECT * over full photo objects, first SELECT only.
  EXPECT_FALSE(Parse("SELECT obj_id INTO mydb.t FROM photo").ok());
  EXPECT_FALSE(Parse("SELECT COUNT(*) INTO mydb.t FROM photo").ok());
  EXPECT_FALSE(Parse("SELECT * INTO mydb.t FROM tag").ok());
  EXPECT_FALSE(Parse("SELECT * INTO mydb.t FROM photo AS a "
                     "JOIN photoobj AS b WITHIN 5 ARCSEC").ok());
  EXPECT_FALSE(Parse("SELECT * INTO mydb.t FROM mydb.t").ok());
  EXPECT_FALSE(Parse("SELECT * FROM photo UNION "
                     "SELECT * INTO mydb.t FROM photo").ok());
  EXPECT_FALSE(Parse("SELECT * INTO mydb FROM photo").ok());
  // A pair join must read the photo table, not a personal store.
  EXPECT_FALSE(Parse("SELECT * FROM mydb.t AS a "
                     "JOIN photoobj AS b WITHIN 5 ARCSEC").ok());
}

TEST(ParserTest, RejectsMyDbNamesThatAreUnsafeOnDisk) {
  // Table names become paths under the durable store: the parser gates
  // them with the same core ValidatePathComponent rule as MyDb::Put, so
  // a bad name is a uniform InvalidArgument before it costs a queue
  // slot. ('/' never lexes into the identifier, so the reachable bad
  // shapes are dots and oversized names.)
  for (const char* sql : {
           "SELECT * INTO mydb... FROM photo",
           "SELECT * INTO mydb..hidden FROM photo",
           "SELECT COUNT(*) FROM mydb...",
           "SELECT COUNT(*) FROM mydb.a..b",
       }) {
    auto q = Parse(sql);
    ASSERT_FALSE(q.ok()) << sql;
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument) << sql;
  }
  std::string long_name(65, 'n');
  auto q = Parse("SELECT * INTO mydb." + long_name + " FROM photo");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  // 64 chars is still legal.
  EXPECT_TRUE(
      Parse("SELECT * INTO mydb." + std::string(64, 'n') + " FROM photo")
          .ok());
}

TEST(ParserTest, HelperNames) {
  EXPECT_STREQ(AggFuncName(AggFunc::kCount), "COUNT");
  EXPECT_STREQ(SetOpName(SetOp::kUnion), "UNION");
  EXPECT_STREQ(SetOpName(SetOp::kExcept), "EXCEPT");
}

}  // namespace
}  // namespace sdss::query
