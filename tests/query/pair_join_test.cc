// The neighbor join end to end on one store: JOIN ... WITHIN parsing,
// kPairJoin planning (bucket level, WHERE splitting, Explain), and
// executor results against an independent brute-force evaluation of the
// same SQL semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/sky_generator.h"
#include "core/angle.h"
#include "core/coords.h"
#include "core/random.h"
#include "query/query_engine.h"

namespace sdss::query {
namespace {

using catalog::ObjClass;
using catalog::ObjectStore;
using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SkyModel;

// A dense clustered patch salted with planted QSO + faint-blue-galaxy
// neighbors, so both symmetric and asymmetric joins find real pairs.
std::vector<PhotoObj> MakeSkyObjects(uint64_t seed) {
  SkyModel m;
  m.seed = seed;
  m.num_galaxies = 900;
  m.num_stars = 300;
  m.num_quasars = 120;
  m.num_clusters = 8;
  m.cluster_fraction = 0.6;
  m.cluster_radius_deg = 0.05;
  std::vector<PhotoObj> objs = SkyGenerator(m).Generate();
  Rng rng(seed * 7 + 1);
  uint64_t next_id = 90'000'000;
  std::vector<PhotoObj> extra;
  for (const PhotoObj& o : objs) {
    if (o.obj_class != ObjClass::kQuasar) continue;
    if (!rng.Bernoulli(0.3)) continue;
    PhotoObj g = o;
    g.obj_id = next_id++;
    g.obj_class = ObjClass::kGalaxy;
    g.pos = rng.UnitCap(o.pos, ArcsecToRad(4.0)).Normalized();
    SphericalFromUnitVector(g.pos, &g.ra_deg, &g.dec_deg);
    g.mag[2] = static_cast<float>(rng.Uniform(20.6, 23.0));
    g.mag[1] = g.mag[2] + 0.2f;
    extra.push_back(g);
  }
  objs.insert(objs.end(), extra.begin(), extra.end());
  return objs;
}

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

PairSet ResultPairs(const QueryResult& r) {
  PairSet pairs;
  EXPECT_GE(r.columns.size(), 2u);
  for (const auto& row : r.rows) {
    uint64_t a = static_cast<uint64_t>(row.values[0]);
    uint64_t b = static_cast<uint64_t>(row.values[1]);
    EXPECT_TRUE(pairs.emplace(std::min(a, b), std::max(a, b)).second)
        << "duplicate pair " << a << ", " << b;
  }
  return pairs;
}

// Unordered brute force under the either-assignment semantics: {x, y}
// qualifies when both pass `select` and W holds under some role
// assignment.
template <typename SelectFn, typename RoleFn>
PairSet BrutePairs(const std::vector<PhotoObj>& objs, double sep_arcsec,
                   const SelectFn& select, const RoleFn& w) {
  double cos_sep = std::cos(ArcsecToRad(sep_arcsec));
  PairSet pairs;
  for (size_t i = 0; i < objs.size(); ++i) {
    if (!select(objs[i])) continue;
    for (size_t j = i + 1; j < objs.size(); ++j) {
      if (!select(objs[j])) continue;
      if (objs[i].pos.Dot(objs[j].pos) < cos_sep) continue;
      if (!w(objs[i], objs[j]) && !w(objs[j], objs[i])) continue;
      pairs.emplace(std::min(objs[i].obj_id, objs[j].obj_id),
                    std::max(objs[i].obj_id, objs[j].obj_id));
    }
  }
  return pairs;
}

class PairJoinTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    objs_ = new std::vector<PhotoObj>(MakeSkyObjects(4242));
    store_ = new ObjectStore();
    ASSERT_TRUE(store_->BulkLoad(*objs_).ok());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete objs_;
    store_ = nullptr;
    objs_ = nullptr;
  }

  static std::vector<PhotoObj>* objs_;
  static ObjectStore* store_;
};

std::vector<PhotoObj>* PairJoinTest::objs_ = nullptr;
ObjectStore* PairJoinTest::store_ = nullptr;

TEST_F(PairJoinTest, ParsesJoinClause) {
  auto q = Parse(
      "SELECT x.obj_id, y.obj_id FROM photo AS x JOIN photoobj AS y "
      "WITHIN 2 ARCMIN WHERE x.r < 20");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->first.join.present);
  EXPECT_EQ(q->first.join.alias_a, "x");
  EXPECT_EQ(q->first.join.alias_b, "y");
  EXPECT_DOUBLE_EQ(q->first.join.max_sep_arcsec, 120.0);

  // Default left alias, DEG unit, the ISSUE's spelling.
  auto deg = Parse(
      "SELECT a.obj_id, b.obj_id FROM photoobj JOIN photoobj AS b "
      "WITHIN 0.5 DEG");
  ASSERT_TRUE(deg.ok()) << deg.status().ToString();
  EXPECT_EQ(deg->first.join.alias_a, "a");
  EXPECT_DOUBLE_EQ(deg->first.join.max_sep_arcsec, 1800.0);
}

TEST_F(PairJoinTest, RejectsMalformedJoins) {
  EXPECT_FALSE(Parse("SELECT * FROM tag JOIN photo AS b WITHIN 2 ARCSEC")
                   .ok());
  EXPECT_FALSE(Parse("SELECT * FROM photo JOIN tag AS b WITHIN 2 ARCSEC")
                   .ok());
  EXPECT_FALSE(
      Parse("SELECT * FROM photo AS a JOIN photo AS a WITHIN 2 ARCSEC")
          .ok());
  EXPECT_FALSE(
      Parse("SELECT * FROM photo JOIN photo AS b WITHIN 0 ARCSEC").ok());
  EXPECT_FALSE(
      Parse("SELECT * FROM photo JOIN photo AS b WITHIN 2 PARSEC").ok());
}

TEST_F(PairJoinTest, PlannerRejectsUnsupportedShapes) {
  auto plan_of = [&](const std::string& sql) {
    auto parsed = Parse(sql);
    EXPECT_TRUE(parsed.ok()) << sql;
    return BuildPlan(*parsed, *store_);
  };
  // SAMPLE with JOIN.
  EXPECT_FALSE(plan_of("SELECT COUNT(*) FROM photo JOIN photo AS b "
                       "WITHIN 2 ARCSEC SAMPLE 0.5")
                   .ok());
  // JOIN inside a set operation.
  EXPECT_FALSE(plan_of("SELECT a.obj_id FROM photo AS a JOIN photo AS b "
                       "WITHIN 2 ARCSEC UNION SELECT obj_id FROM photo")
                   .ok());
  // Unknown alias and unknown attribute.
  EXPECT_FALSE(plan_of("SELECT c.obj_id FROM photo AS a JOIN photo AS b "
                       "WITHIN 2 ARCSEC")
                   .ok());
  EXPECT_FALSE(plan_of("SELECT a.bogus FROM photo AS a JOIN photo AS b "
                       "WITHIN 2 ARCSEC")
                   .ok());
  // A pair conjunct mixing qualified and bare attributes is ambiguous.
  EXPECT_FALSE(plan_of("SELECT a.obj_id FROM photo AS a JOIN photo AS b "
                       "WITHIN 2 ARCSEC WHERE a.r - g < 1")
                   .ok());
}

TEST_F(PairJoinTest, PlanShapeAndExplain) {
  auto parsed = Parse(
      "SELECT a.obj_id, b.obj_id, sep FROM photo AS a JOIN photo AS b "
      "WITHIN 10 ARCSEC WHERE r < 22 AND a.g - b.g < 0.1 AND "
      "b.g - a.g < 0.1 ORDER BY sep LIMIT 20");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto plan = BuildPlan(*parsed, *store_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // LIMIT -> SORT -> PAIR_JOIN chain; the join leaf carries the planner
  // bucket level and the split predicates.
  const PlanNode* n = plan->root.get();
  ASSERT_EQ(n->type, PlanNodeType::kLimit);
  n = n->children[0].get();
  ASSERT_EQ(n->type, PlanNodeType::kSort);
  n = n->children[0].get();
  ASSERT_EQ(n->type, PlanNodeType::kPairJoin);
  EXPECT_DOUBLE_EQ(n->pair_max_sep_arcsec, 10.0);
  EXPECT_GE(n->pair_bucket_level, 9);
  EXPECT_LE(n->pair_bucket_level, 12);
  ASSERT_NE(n->pair_select, nullptr);   // The unqualified r < 22.
  ASSERT_NE(n->pair_where, nullptr);    // The color-similarity conjuncts.

  std::string explain = plan->Explain();
  EXPECT_NE(explain.find("PAIR_JOIN"), std::string::npos) << explain;
  EXPECT_NE(explain.find("within 10 arcsec"), std::string::npos) << explain;
  EXPECT_NE(explain.find("buckets level"), std::string::npos) << explain;
}

TEST_F(PairJoinTest, LensQueryMatchesBruteForce) {
  // C9 (c): objects within the radius with near-identical g-r color.
  QueryEngine engine(store_);
  auto result = engine.Execute(
      "SELECT a.obj_id, b.obj_id, sep FROM photo AS a JOIN photo AS b "
      "WITHIN 30 ARCSEC WHERE a.g - a.r - b.g + b.r < 0.05 AND "
      "b.g - b.r - a.g + a.r < 0.05");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  PairSet expect = BrutePairs(
      *objs_, 30.0, [](const PhotoObj&) { return true; },
      [](const PhotoObj& a, const PhotoObj& b) {
        // Mirrors the SQL's left-associative double arithmetic exactly.
        double ag = a.mag[1], ar = a.mag[2], bg = b.mag[1], br = b.mag[2];
        return ((ag - ar) - bg) + br < 0.05 &&
               ((bg - br) - ag) + ar < 0.05;
      });
  EXPECT_GT(expect.size(), 0u) << "sky produced no lens pairs";
  EXPECT_EQ(ResultPairs(*result), expect);
}

TEST_F(PairJoinTest, AsymmetricRolesBindTheSatisfyingAssignment) {
  // C9 (b): quasars brighter than r=22 with a faint blue galaxy within
  // 5 arcsec. The a role must come out bound to the quasar.
  QueryEngine engine(store_);
  auto result = engine.Execute(
      "SELECT a.obj_id, b.obj_id, a.class, b.class FROM photo AS a "
      "JOIN photo AS b WITHIN 5 ARCSEC "
      "WHERE a.class = 'QSO' AND a.r < 22 AND "
      "b.class = 'GALAXY' AND b.r > 20.5 AND b.g - b.r < 0.5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto is_qso = [](const PhotoObj& o) {
    return o.obj_class == ObjClass::kQuasar && o.mag[2] < 22.0f;
  };
  auto is_fbg = [](const PhotoObj& o) {
    return o.obj_class == ObjClass::kGalaxy &&
           static_cast<double>(o.mag[2]) > 20.5 &&
           static_cast<double>(o.mag[1]) - static_cast<double>(o.mag[2]) <
               0.5;
  };
  PairSet expect = BrutePairs(
      *objs_, 5.0,
      [&](const PhotoObj& o) { return is_qso(o) || is_fbg(o); },
      [&](const PhotoObj& a, const PhotoObj& b) {
        return is_qso(a) && is_fbg(b);
      });
  EXPECT_GT(expect.size(), 0u) << "sky produced no planted neighbors";
  EXPECT_EQ(ResultPairs(*result), expect);
  for (const auto& row : result->rows) {
    EXPECT_EQ(row.values[2],
              static_cast<double>(ObjClass::kQuasar))
        << "a role not bound to the quasar";
    EXPECT_EQ(row.values[3],
              static_cast<double>(ObjClass::kGalaxy));
  }
}

TEST_F(PairJoinTest, OrderBySepLimitIsSortedAndCapped) {
  QueryEngine engine(store_);
  auto result = engine.Execute(
      "SELECT a.obj_id, b.obj_id, sep FROM photo AS a JOIN photo AS b "
      "WITHIN 60 ARCSEC ORDER BY sep LIMIT 15");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_LE(result->rows.size(), 15u);
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_LE(result->rows[i - 1].values[2], result->rows[i].values[2]);
  }
}

TEST_F(PairJoinTest, CountAggregateOverJoin) {
  QueryEngine engine(store_);
  auto count = engine.Execute(
      "SELECT COUNT(*) FROM photo AS a JOIN photo AS b WITHIN 30 ARCSEC");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  ASSERT_TRUE(count->is_aggregate);

  PairSet expect = BrutePairs(
      *objs_, 30.0, [](const PhotoObj&) { return true; },
      [](const PhotoObj&, const PhotoObj&) { return true; });
  EXPECT_EQ(static_cast<uint64_t>(count->aggregate_value), expect.size());
}

TEST_F(PairJoinTest, SpatialConjunctPrunesTheJoinScan) {
  // An unqualified CIRCLE filters every candidate, so the planner can
  // prune the join's container scan with its cover -- the paper's full
  // quasar query shape.
  const std::string sql =
      "SELECT a.obj_id, b.obj_id FROM photo AS a JOIN photo AS b "
      "WITHIN 60 ARCSEC WHERE CIRCLE('GAL', 30, 70, 25)";
  auto parsed = Parse(sql);
  ASSERT_TRUE(parsed.ok());
  auto plan = BuildPlan(*parsed, *store_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->root->has_region);
  EXPECT_TRUE(plan->used_spatial_index);
  EXPECT_NE(plan->Explain().find("[spatially pruned]"), std::string::npos);

  QueryEngine engine(store_);
  auto result = engine.Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->exec.containers_scanned, store_->container_count())
      << "join scan was not pruned";

  htm::Region circle = htm::Region::Circle(30, 70, 25, Frame::kGalactic);
  PairSet expect = BrutePairs(
      *objs_, 60.0,
      [&circle](const PhotoObj& o) { return circle.Contains(o.pos); },
      [](const PhotoObj&, const PhotoObj&) { return true; });
  EXPECT_GT(expect.size(), 0u) << "no pairs inside the circle";
  EXPECT_EQ(ResultPairs(*result), expect);
}

TEST_F(PairJoinTest, DefaultProjectionIsIdsAndSeparation) {
  QueryEngine engine(store_);
  auto result = engine.Execute(
      "SELECT * FROM photo AS a JOIN photo AS b WITHIN 10 ARCSEC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->columns.size(), 3u);
  EXPECT_EQ(result->columns[0], "a.obj_id");
  EXPECT_EQ(result->columns[1], "b.obj_id");
  EXPECT_EQ(result->columns[2], "sep");
  for (const auto& row : result->rows) {
    EXPECT_EQ(static_cast<uint64_t>(row.values[0]), row.obj_id);
    EXPECT_EQ(static_cast<uint64_t>(row.values[1]), row.obj_id_b);
    EXPECT_LE(row.values[2], 10.0);
  }
}

}  // namespace
}  // namespace sdss::query
