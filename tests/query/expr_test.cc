#include "query/expr.h"

#include <gtest/gtest.h>

#include "catalog/photo_obj.h"
#include "core/coords.h"

namespace sdss::query {
namespace {

RowAccessor MakeRow(double r_mag, double g_mag, const Vec3& pos) {
  RowAccessor acc;
  acc.position = pos;
  acc.get = [r_mag, g_mag](const std::string& name) -> Result<double> {
    if (name == "r") return r_mag;
    if (name == "g") return g_mag;
    return Status::NotFound("unknown attribute: " + name);
  };
  return acc;
}

TEST(ExprTest, LiteralAndAttr) {
  RowAccessor row = MakeRow(17.5, 18.2, Vec3(1, 0, 0));
  EXPECT_DOUBLE_EQ(*Expr::Literal(3.5)->Eval(row), 3.5);
  EXPECT_DOUBLE_EQ(*Expr::Attr("r")->Eval(row), 17.5);
  EXPECT_FALSE(Expr::Attr("nope")->Eval(row).ok());
}

TEST(ExprTest, Arithmetic) {
  RowAccessor row = MakeRow(17.5, 18.2, Vec3(1, 0, 0));
  auto color = Expr::Binary(BinOp::kSub, Expr::Attr("g"), Expr::Attr("r"));
  EXPECT_NEAR(*color->Eval(row), 0.7, 1e-12);
  auto scaled = Expr::Binary(BinOp::kMul, color, Expr::Literal(2.0));
  EXPECT_NEAR(*scaled->Eval(row), 1.4, 1e-12);
  auto half = Expr::Binary(BinOp::kDiv, color, Expr::Literal(2.0));
  EXPECT_NEAR(*half->Eval(row), 0.35, 1e-12);
  auto neg = Expr::Neg(color);
  EXPECT_NEAR(*neg->Eval(row), -0.7, 1e-12);
}

TEST(ExprTest, DivisionByZeroIsError) {
  RowAccessor row = MakeRow(1, 1, Vec3(1, 0, 0));
  auto bad = Expr::Binary(BinOp::kDiv, Expr::Literal(1.0),
                          Expr::Literal(0.0));
  EXPECT_FALSE(bad->Eval(row).ok());
}

TEST(ExprTest, Comparisons) {
  RowAccessor row = MakeRow(17.5, 18.2, Vec3(1, 0, 0));
  EXPECT_TRUE(*Expr::Binary(BinOp::kLt, Expr::Attr("r"),
                            Expr::Literal(22.0))
                   ->EvalBool(row));
  EXPECT_FALSE(*Expr::Binary(BinOp::kGt, Expr::Attr("r"),
                             Expr::Literal(22.0))
                    ->EvalBool(row));
  EXPECT_TRUE(*Expr::Binary(BinOp::kLe, Expr::Literal(17.5),
                            Expr::Attr("r"))
                   ->EvalBool(row));
  EXPECT_TRUE(*Expr::Binary(BinOp::kEq, Expr::Attr("r"),
                            Expr::Literal(17.5))
                   ->EvalBool(row));
  EXPECT_TRUE(*Expr::Binary(BinOp::kNe, Expr::Attr("r"),
                            Expr::Attr("g"))
                   ->EvalBool(row));
}

TEST(ExprTest, BooleanShortCircuit) {
  RowAccessor row = MakeRow(17.5, 18.2, Vec3(1, 0, 0));
  // AND short-circuits: the erroring right side is never evaluated.
  auto and_expr = Expr::Binary(
      BinOp::kAnd,
      Expr::Binary(BinOp::kGt, Expr::Attr("r"), Expr::Literal(100.0)),
      Expr::Attr("missing"));
  auto v = and_expr->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 0.0);

  auto or_expr = Expr::Binary(
      BinOp::kOr,
      Expr::Binary(BinOp::kLt, Expr::Attr("r"), Expr::Literal(100.0)),
      Expr::Attr("missing"));
  auto v2 = or_expr->Eval(row);
  ASSERT_TRUE(v2.ok());
  EXPECT_DOUBLE_EQ(*v2, 1.0);
}

TEST(ExprTest, NotOperator) {
  RowAccessor row = MakeRow(17.5, 18.2, Vec3(1, 0, 0));
  auto t = Expr::Binary(BinOp::kLt, Expr::Attr("r"), Expr::Literal(22.0));
  EXPECT_FALSE(*Expr::Not(t)->EvalBool(row));
  EXPECT_TRUE(*Expr::Not(Expr::Not(t))->EvalBool(row));
}

TEST(ExprTest, SpatialAtomUsesPosition) {
  htm::Region circle = htm::Region::Circle(0.0, 0.0, 5.0);
  auto atom = Expr::Spatial(circle, "CIRCLE(0,0,5)");
  RowAccessor inside = MakeRow(0, 0, UnitVectorFromSpherical(1.0, 1.0));
  RowAccessor outside = MakeRow(0, 0, UnitVectorFromSpherical(30.0, 0.0));
  EXPECT_TRUE(*atom->EvalBool(inside));
  EXPECT_FALSE(*atom->EvalBool(outside));
}

TEST(ExprTest, CollectAttrsDeduplicates) {
  auto e = Expr::Binary(
      BinOp::kAnd,
      Expr::Binary(BinOp::kLt, Expr::Attr("r"), Expr::Literal(22.0)),
      Expr::Binary(BinOp::kLt,
                   Expr::Binary(BinOp::kSub, Expr::Attr("g"),
                                Expr::Attr("r")),
                   Expr::Literal(0.5)));
  std::vector<std::string> attrs;
  e->CollectAttrs(&attrs);
  EXPECT_EQ(attrs, (std::vector<std::string>{"r", "g"}));
}

TEST(ExprTest, ToStringIsReadable) {
  auto e = Expr::Binary(BinOp::kAnd,
                        Expr::Binary(BinOp::kLt, Expr::Attr("r"),
                                     Expr::Literal(22.0)),
                        Expr::Spatial(htm::Region::Circle(0, 0, 1),
                                      "CIRCLE(0,0,1)"));
  std::string s = e->ToString();
  EXPECT_NE(s.find("r < 22"), std::string::npos);
  EXPECT_NE(s.find("CIRCLE(0,0,1)"), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
}

TEST(ExtractRegionTest, SingleAtom) {
  auto atom = Expr::Spatial(htm::Region::Circle(10, 10, 5), "c");
  htm::Region out;
  ASSERT_TRUE(ExtractRegion(atom, &out));
  EXPECT_TRUE(out.Contains(UnitVectorFromSpherical(10, 10)));
  EXPECT_FALSE(out.Contains(UnitVectorFromSpherical(100, -20)));
}

TEST(ExtractRegionTest, AndIntersects) {
  auto e = Expr::Binary(
      BinOp::kAnd, Expr::Spatial(htm::Region::LatBand(0, 20), "band"),
      Expr::Spatial(htm::Region::Circle(10, 10, 30), "circle"));
  htm::Region out;
  ASSERT_TRUE(ExtractRegion(e, &out));
  EXPECT_TRUE(out.Contains(UnitVectorFromSpherical(10, 10)));
  EXPECT_FALSE(out.Contains(UnitVectorFromSpherical(10, -10)));  // Off band.
  EXPECT_FALSE(out.Contains(UnitVectorFromSpherical(80, 10)));   // Off circ.
}

TEST(ExtractRegionTest, AndWithNonSpatialKeepsSpatialBound) {
  auto e = Expr::Binary(
      BinOp::kAnd,
      Expr::Binary(BinOp::kLt, Expr::Attr("r"), Expr::Literal(22.0)),
      Expr::Spatial(htm::Region::Circle(10, 10, 5), "circle"));
  htm::Region out;
  ASSERT_TRUE(ExtractRegion(e, &out));
  EXPECT_TRUE(out.Contains(UnitVectorFromSpherical(10, 10)));
  EXPECT_FALSE(out.Contains(UnitVectorFromSpherical(50, 50)));
}

TEST(ExtractRegionTest, OrOfTwoAtomsUnions) {
  auto e = Expr::Binary(BinOp::kOr,
                        Expr::Spatial(htm::Region::Circle(0, 0, 2), "a"),
                        Expr::Spatial(htm::Region::Circle(90, 0, 2), "b"));
  htm::Region out;
  ASSERT_TRUE(ExtractRegion(e, &out));
  EXPECT_TRUE(out.Contains(UnitVectorFromSpherical(0, 0)));
  EXPECT_TRUE(out.Contains(UnitVectorFromSpherical(90, 0)));
  EXPECT_FALSE(out.Contains(UnitVectorFromSpherical(45, 0)));
}

TEST(ExtractRegionTest, OrWithNonSpatialGivesNoBound) {
  auto e = Expr::Binary(
      BinOp::kOr, Expr::Spatial(htm::Region::Circle(0, 0, 2), "a"),
      Expr::Binary(BinOp::kLt, Expr::Attr("r"), Expr::Literal(15.0)));
  htm::Region out;
  EXPECT_FALSE(ExtractRegion(e, &out));
}

TEST(ExtractRegionTest, NotGivesNoBound) {
  auto e = Expr::Not(Expr::Spatial(htm::Region::Circle(0, 0, 2), "a"));
  htm::Region out;
  EXPECT_FALSE(ExtractRegion(e, &out));
}

TEST(ExtractRegionTest, PureAttributePredicateGivesNoBound) {
  auto e = Expr::Binary(BinOp::kLt, Expr::Attr("r"), Expr::Literal(22.0));
  htm::Region out;
  EXPECT_FALSE(ExtractRegion(e, &out));
}

}  // namespace
}  // namespace sdss::query
