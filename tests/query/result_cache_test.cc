// ResultCache unit tests: fingerprint canonicalization, the never-cached
// list, exact replay + epoch invalidation, containment answers checked
// against brute-force engine runs, and byte-budget eviction.

#include "query/result_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "catalog/object_store.h"
#include "catalog/sky_generator.h"
#include "query/parser.h"
#include "query/qet.h"
#include "query/query_engine.h"

namespace sdss::query {
namespace {

class ResultCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyModel m;
    m.seed = 4100;
    m.num_galaxies = 6000;
    m.num_stars = 5000;
    m.num_quasars = 150;
    store_ = new catalog::ObjectStore();
    ASSERT_TRUE(
        store_->BulkLoad(catalog::SkyGenerator(m).Generate()).ok());
    engine_ = new QueryEngine(store_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete store_;
    engine_ = nullptr;
    store_ = nullptr;
  }

  static Plan PlanFor(const std::string& sql) {
    auto parsed = Parse(sql);
    EXPECT_TRUE(parsed.ok()) << sql << ": " << parsed.status().ToString();
    auto plan = BuildPlan(*parsed, *store_);
    EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
    return std::move(*plan);
  }

  static std::string Fp(const std::string& sql) {
    return ResultCache::Fingerprint(PlanFor(sql));
  }

  static bool CacheableSql(const std::string& sql) {
    auto parsed = Parse(sql);
    EXPECT_TRUE(parsed.ok()) << sql << ": " << parsed.status().ToString();
    auto plan = BuildPlan(*parsed, *store_);
    EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
    return ResultCache::Cacheable(*parsed, *plan);
  }

  /// Runs `sql` on the ground-truth engine and installs its final rows.
  static void InstallFromRun(ResultCache* cache, const std::string& sql,
                             uint64_t epoch) {
    Plan plan = PlanFor(sql);
    auto run = engine_->Execute(sql);
    ASSERT_TRUE(run.ok()) << sql << ": " << run.status().ToString();
    cache->Install(ResultCache::Fingerprint(plan), plan, epoch,
                   std::move(run->rows));
  }

  using RowKey = std::pair<uint64_t, std::vector<double>>;
  static std::vector<RowKey> Normalize(const std::vector<ResultRow>& rows) {
    std::vector<RowKey> keys;
    keys.reserve(rows.size());
    for (const auto& r : rows) keys.emplace_back(r.obj_id, r.values);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  inline static catalog::ObjectStore* store_ = nullptr;
  inline static QueryEngine* engine_ = nullptr;
};

TEST_F(ResultCacheTest, FingerprintCanonicalizesEquivalentPredicates) {
  // Commutative conjunct order.
  EXPECT_EQ(Fp("SELECT obj_id FROM photo WHERE r < 22 AND g > 19"),
            Fp("SELECT obj_id FROM photo WHERE g > 19 AND r < 22"));
  // Associativity: the AND spine is flattened before sorting.
  EXPECT_EQ(
      Fp("SELECT obj_id FROM photo WHERE r < 22 AND (g > 19 AND u < 23)"),
      Fp("SELECT obj_id FROM photo WHERE (u < 23 AND r < 22) AND g > 19"));
  // Comparison direction: "22 > r" is "r < 22".
  EXPECT_EQ(Fp("SELECT obj_id FROM photo WHERE r < 22"),
            Fp("SELECT obj_id FROM photo WHERE 22 > r"));
  // Symmetric comparison operand order.
  EXPECT_EQ(Fp("SELECT obj_id FROM photo WHERE r = g"),
            Fp("SELECT obj_id FROM photo WHERE g = r"));
  // Commutative arithmetic inside a comparison.
  EXPECT_EQ(Fp("SELECT obj_id FROM photo WHERE g + r < 40"),
            Fp("SELECT obj_id FROM photo WHERE r + g < 40"));

  // Distinct constants, projections, and ordering stay distinct.
  EXPECT_NE(Fp("SELECT obj_id FROM photo WHERE r < 22"),
            Fp("SELECT obj_id FROM photo WHERE r < 21"));
  EXPECT_NE(Fp("SELECT obj_id FROM photo WHERE r < 22"),
            Fp("SELECT obj_id, g FROM photo WHERE r < 22"));
  EXPECT_NE(Fp("SELECT obj_id, r FROM photo WHERE r < 22 ORDER BY r"),
            Fp("SELECT obj_id, r FROM photo WHERE r < 22 ORDER BY r DESC"));
  // Subtraction is NOT commutative.
  EXPECT_NE(Fp("SELECT obj_id FROM photo WHERE g - r < 1"),
            Fp("SELECT obj_id FROM photo WHERE r - g < 1"));
}

TEST_F(ResultCacheTest, CacheableRefusesTheUnsoundShapes) {
  EXPECT_TRUE(CacheableSql("SELECT obj_id, r FROM photo WHERE r < 21"));
  EXPECT_TRUE(CacheableSql(
      "SELECT obj_id, r FROM photo WHERE r < 21 ORDER BY r LIMIT 10"));
  EXPECT_TRUE(CacheableSql("SELECT COUNT(*) FROM photo WHERE r < 21"));

  // INTO: the workbench materializes; the bare select must not be
  // replayed as if it had been stored.
  EXPECT_FALSE(CacheableSql(
      "SELECT * INTO mydb.bright FROM photo WHERE r < 20"));
  // SAMPLE draws fresh rows each run.
  EXPECT_FALSE(CacheableSql(
      "SELECT obj_id FROM photo WHERE r < 21 ORDER BY r SAMPLE 0.5"));
  // LIMIT without ORDER keeps an arrival-order-dependent subset.
  EXPECT_FALSE(CacheableSql("SELECT obj_id FROM photo WHERE r < 21 LIMIT 5"));
  // Division can raise divide-by-zero: reordering and subset
  // re-filtering are both observable, so such queries never cache.
  EXPECT_FALSE(CacheableSql("SELECT obj_id FROM photo WHERE r / 2 < 10"));
  // Set operations inherit every branch's restrictions.
  EXPECT_FALSE(CacheableSql(
      "SELECT obj_id, r FROM photo WHERE r < 20 UNION "
      "SELECT obj_id, r FROM photo WHERE g / 2 < 10"));
}

TEST_F(ResultCacheTest, ExactReplayHitsAndEpochBumpInvalidates) {
  const std::string sql = "SELECT obj_id, r FROM photo WHERE r < 20.5";
  Plan plan = PlanFor(sql);
  const std::string fp = ResultCache::Fingerprint(plan);
  auto run = engine_->Execute(sql);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run->rows.empty());

  ResultCache cache;
  ResultCache::Answer ans;
  EXPECT_FALSE(cache.TryAnswer(fp, plan, 7, &ans));
  cache.Install(fp, plan, 7, run->rows);
  ASSERT_TRUE(cache.TryAnswer(fp, plan, 7, &ans));
  EXPECT_FALSE(ans.containment);
  ASSERT_EQ(ans.rows.size(), run->rows.size());
  for (size_t i = 0; i < ans.rows.size(); ++i) {
    EXPECT_EQ(ans.rows[i].obj_id, run->rows[i].obj_id);
    EXPECT_EQ(ans.rows[i].values, run->rows[i].values);
  }
  EXPECT_TRUE(cache.WouldAnswer(fp, plan, 7));
  EXPECT_FALSE(cache.WouldAnswer(fp, plan, 8));

  // An epoch bump makes the entry permanently stale: the lookup misses
  // AND reaps it.
  EXPECT_FALSE(cache.TryAnswer(fp, plan, 8, &ans));
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.epoch_invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_used, 0u);
}

TEST_F(ResultCacheTest, ContainmentMatchesBruteForceRuns) {
  // One wide entry: every attribute narrower probes will need, complete
  // row set of a 10-degree cone. All attributes are tag attributes, so
  // auto tag selection routes the entry AND the probes below to the tag
  // table -- containment only serves within one physical table.
  ResultCache cache;
  InstallFromRun(
      &cache,
      "SELECT obj_id, u, g, r FROM photo "
      "WHERE CIRCLE('GAL', 30, 70, 10)",
      /*epoch=*/1);

  const std::vector<std::string> contained = {
      // Narrower cone + photometric cut.
      "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 5) "
      "AND r < 21",
      // Rectangle well inside the cone (same Galactic frame).
      "SELECT obj_id, g, r FROM photo WHERE RECT('GAL', 27, 33, 68, 72) "
      "AND g - r < 0.8",
      // Ordered + limited: re-sorted with the engine's total order.
      "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 6) "
      "AND g < 22 ORDER BY r LIMIT 20",
      "SELECT obj_id, u FROM photo WHERE CIRCLE('GAL', 30, 70, 4) "
      "ORDER BY u DESC",
  };
  for (const std::string& sql : contained) {
    SCOPED_TRACE(sql);
    Plan plan = PlanFor(sql);
    ResultCache::Answer ans;
    ASSERT_TRUE(
        cache.TryAnswer(ResultCache::Fingerprint(plan), plan, 1, &ans));
    EXPECT_TRUE(ans.containment);
    auto brute = engine_->Execute(sql);
    ASSERT_TRUE(brute.ok());
    if (sql.find("ORDER BY") != std::string::npos) {
      ASSERT_EQ(ans.rows.size(), brute->rows.size());
      for (size_t i = 0; i < ans.rows.size(); ++i) {
        EXPECT_EQ(ans.rows[i].obj_id, brute->rows[i].obj_id) << "row " << i;
        EXPECT_EQ(ans.rows[i].values, brute->rows[i].values) << "row " << i;
      }
    } else {
      EXPECT_EQ(Normalize(ans.rows), Normalize(brute->rows));
    }
  }

  // COUNT/MIN/MAX recombine exactly from the filtered subset.
  const std::vector<std::string> aggregates = {
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 5)",
      "SELECT MIN(r) FROM photo WHERE CIRCLE('GAL', 30, 70, 6) AND g < 22",
      "SELECT MAX(u) FROM photo WHERE CIRCLE('GAL', 30, 70, 4)",
  };
  for (const std::string& sql : aggregates) {
    SCOPED_TRACE(sql);
    Plan plan = PlanFor(sql);
    ResultCache::Answer ans;
    ASSERT_TRUE(
        cache.TryAnswer(ResultCache::Fingerprint(plan), plan, 1, &ans));
    EXPECT_TRUE(ans.containment);
    ASSERT_EQ(ans.rows.size(), 1u);
    auto brute = engine_->Execute(sql);
    ASSERT_TRUE(brute.ok());
    EXPECT_TRUE(brute->is_aggregate);
    ASSERT_FALSE(ans.rows[0].values.empty());
    EXPECT_EQ(ans.rows[0].values[0], brute->aggregate_value);
  }

  // Refused: order-sensitive folds, regions not provably inside,
  // attributes the entry does not carry, and cross-table probes.
  const std::vector<std::string> refused = {
      "SELECT SUM(r) FROM photo WHERE CIRCLE('GAL', 30, 70, 5)",
      "SELECT AVG(r) FROM photo WHERE CIRCLE('GAL', 30, 70, 5)",
      "SELECT obj_id FROM photo WHERE CIRCLE('GAL', 200, -40, 5)",
      "SELECT obj_id, z FROM photo WHERE CIRCLE('GAL', 30, 70, 5)",
      // Superset (radius 12 > 10) must never be served by the entry.
      "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 12)",
      // `dec` forces the photo table; the tag-table entry must refuse
      // (tag positions are float precision -- boundary membership can
      // differ from a real photo scan).
      "SELECT obj_id, dec FROM photo WHERE CIRCLE('GAL', 30, 70, 4)",
  };
  for (const std::string& sql : refused) {
    SCOPED_TRACE(sql);
    Plan plan = PlanFor(sql);
    ResultCache::Answer ans;
    EXPECT_FALSE(
        cache.TryAnswer(ResultCache::Fingerprint(plan), plan, 1, &ans));
  }
}

TEST_F(ResultCacheTest, PredicateSubsetContainmentWithoutSpatialAtom) {
  // Entry predicate "r < 21" is a conjunct of the probe's predicate:
  // containment needs no spatial reasoning at all.
  ResultCache cache;
  InstallFromRun(&cache,
                 "SELECT obj_id, g, r FROM photo WHERE r < 21",
                 /*epoch=*/3);
  const std::string sql =
      "SELECT obj_id, g FROM photo WHERE r < 21 AND g - r < 0.6";
  Plan plan = PlanFor(sql);
  ResultCache::Answer ans;
  ASSERT_TRUE(
      cache.TryAnswer(ResultCache::Fingerprint(plan), plan, 3, &ans));
  EXPECT_TRUE(ans.containment);
  auto brute = engine_->Execute(sql);
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(Normalize(ans.rows), Normalize(brute->rows));

  // The reverse direction (probe weaker than the entry) must refuse.
  Plan wider = PlanFor("SELECT obj_id, g FROM photo WHERE r < 21.5");
  EXPECT_FALSE(cache.TryAnswer(ResultCache::Fingerprint(wider), wider, 3,
                               &ans));
}

TEST_F(ResultCacheTest, EvictionRespectsTheByteBudget) {
  auto run = engine_->Execute("SELECT obj_id, r FROM photo WHERE r < 21");
  ASSERT_TRUE(run.ok());
  size_t row_bytes = 0;
  for (const auto& r : run->rows) {
    row_bytes += ResultCache::ApproxRowBytes(r);
  }
  ASSERT_GT(row_bytes, 0u);

  // Budget fits roughly three such entries; install six distinct ones.
  ResultCache::Options opt;
  opt.max_bytes = row_bytes * 3 + 4096;
  opt.max_entry_bytes = opt.max_bytes;  // Entries themselves always fit.
  ResultCache cache(opt);
  for (int i = 0; i < 6; ++i) {
    const std::string sql = "SELECT obj_id, r FROM photo WHERE r < 21 AND "
                            "g < " + std::to_string(30 + i);
    InstallFromRun(&cache, sql, /*epoch=*/1);
  }
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.installs, 6u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, opt.max_bytes);
  EXPECT_LT(stats.entries, 6u);
  EXPECT_GT(stats.entries, 0u);

  // The most recently installed entry survived the pressure.
  Plan last = PlanFor("SELECT obj_id, r FROM photo WHERE r < 21 AND g < 35");
  EXPECT_TRUE(cache.WouldAnswer(ResultCache::Fingerprint(last), last, 1));
}

TEST_F(ResultCacheTest, OversizedEntriesAreNeverAdmitted) {
  ResultCache::Options opt;
  opt.max_bytes = 1 << 20;
  opt.max_entry_bytes = 256;  // Smaller than any real result.
  ResultCache cache(opt);
  InstallFromRun(&cache, "SELECT obj_id, r FROM photo WHERE r < 21",
                 /*epoch=*/1);
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_used, 0u);
}

}  // namespace
}  // namespace sdss::query
