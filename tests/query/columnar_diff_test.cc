// Differential suite pinning the columnar scan kernel to the row path:
// the same SQL over (a) the original row store, (b) the mmap'd snapshot
// store with the kernel enabled, and (c) the mapped store with the
// kernel switched off must agree BIT-identically -- not approximately.
// Covers cone/rect/band scans, every aggregate, SAMPLE, set operations,
// tag queries (which always take the row path), and federated fleets of
// 1-8 shards whose members are mapped stores.
//
// Determinism note: float accumulation order and the SAMPLE Rng stream
// depend on container visit order, so every engine here runs with
// scan_threads = 1 -- that makes "bit-identical" a meaningful assertion
// rather than a tolerance. A final test re-checks multiset equality
// under the default thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "persist/snapshot.h"
#include "query/federated_engine.h"
#include "query/query_engine.h"

namespace sdss::query {
namespace {

namespace fs = std::filesystem;

catalog::ObjectStore MakeSky(uint64_t seed) {
  catalog::SkyModel m;
  m.seed = seed;
  m.num_galaxies = 3000;
  m.num_stars = 2200;
  m.num_quasars = 80;
  catalog::StoreOptions opts;
  opts.build_tags = true;
  catalog::ObjectStore store(opts);
  EXPECT_TRUE(store.BulkLoad(catalog::SkyGenerator(m).Generate()).ok());
  return store;
}

/// Snapshots `store` to a fresh file under the test tmpdir and maps it.
Result<catalog::ObjectStore> MapStore(const catalog::ObjectStore& store,
                                      const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / "columnar_diff";
  fs::create_directories(dir);
  const std::string path = (dir / (name + ".snap")).string();
  persist::SnapshotWriter writer(path);
  Status written = writer.Write(store);
  if (!written.ok()) return written;
  return persist::MapSnapshotStore(path);
}

/// How each query's answers are compared. Aggregates and ordered rows
/// compare exactly (operator== on doubles); kRows sorts first because
/// ASAP delivery order is not part of the contract even single-threaded
/// (set operations hash-merge).
enum class Mode { kRows, kOrdered, kAggregate };

struct DiffQuery {
  std::string sql;
  Mode mode = Mode::kRows;
  bool photo_scan = true;  ///< Expect the kernel to engage (not tag-only).
};

std::vector<DiffQuery> DiffQueries() {
  using M = Mode;
  return {
      {"SELECT obj_id, r FROM photo WHERE r < 20.5", M::kRows},
      {"SELECT obj_id, g, r FROM photo WHERE g - r < 0.8 AND r < 21",
       M::kRows},
      {"SELECT obj_id FROM photo WHERE class = 'QSO'", M::kRows},
      {"SELECT obj_id, u, z FROM photo WHERE u - g > 0.4 AND "
       "NOT (class = 'STAR')",
       M::kRows},
      {"SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 8)",
       M::kRows},
      {"SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 120, 55, 10) "
       "AND r < 21.5",
       M::kRows},
      {"SELECT obj_id FROM photo WHERE RECT(170, 210, 20, 50) AND "
       "class = 'GALAXY'",
       M::kRows},
      {"SELECT obj_id, r FROM photo WHERE BAND('GAL', 45, 65) AND r < 22",
       M::kRows},
      {"SELECT obj_id, redshift FROM photo WHERE redshift > 0.5",
       M::kRows},
      {"SELECT obj_id, err_r, sb FROM photo WHERE err_r < 0.05 AND "
       "sb < 24",
       M::kRows},
      {"SELECT obj_id, r FROM photo WHERE r < 21 ORDER BY r LIMIT 50",
       M::kOrdered},
      {"SELECT obj_id, dec FROM photo WHERE CIRCLE('GAL', 30, 70, 10) "
       "ORDER BY dec DESC LIMIT 30",
       M::kOrdered},
      {"SELECT COUNT(*) FROM photo", M::kAggregate},
      {"SELECT COUNT(*) FROM photo WHERE r < 21", M::kAggregate},
      {"SELECT SUM(r) FROM photo WHERE r < 22", M::kAggregate},
      {"SELECT AVG(g) FROM photo WHERE class = 'GALAXY'", M::kAggregate},
      {"SELECT MIN(r) FROM photo", M::kAggregate},
      {"SELECT MAX(z) FROM photo WHERE class = 'STAR'", M::kAggregate},
      {"SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 0, 60, 12)",
       M::kAggregate},
      {"SELECT obj_id FROM photo WHERE r < 22 SAMPLE 0.3", M::kRows},
      {"SELECT COUNT(*) FROM photo WHERE r < 23 SAMPLE 0.5",
       M::kAggregate},
      {"SELECT obj_id, r FROM photo WHERE class = 'QSO' UNION "
       "SELECT obj_id, r FROM photo WHERE r < 18.5",
       M::kRows},
      {"SELECT obj_id, r FROM photo WHERE r < 21 INTERSECT "
       "SELECT obj_id, r FROM photo WHERE g - r < 0.6",
       M::kRows},
      {"SELECT obj_id, r FROM photo WHERE r < 20 EXCEPT "
       "SELECT obj_id, r FROM photo WHERE class = 'STAR'",
       M::kRows},
      // Tag queries: the kernel never runs (the tag partition has no
      // column views) but the mapped store's lazily rebuilt tag rows
      // must still answer identically.
      {"SELECT * FROM tag WHERE r < 19", M::kRows, false},
      {"SELECT obj_id, r FROM tag WHERE r < 20 ORDER BY r LIMIT 40",
       M::kOrdered, false},
      {"SELECT AVG(r) FROM tag WHERE g - r < 1.0", M::kAggregate, false},
      // Division runs on the kernel too, with the row path's exact
      // divide-by-zero semantics (these divisors never hit zero; the
      // erroring cases get their own test below).
      {"SELECT obj_id FROM photo WHERE r / 2 < 10.2", M::kRows},
      {"SELECT obj_id, g FROM photo WHERE (g - r) / (r + 1) < 0.04",
       M::kRows},
      {"SELECT obj_id FROM photo WHERE CIRCLE('GAL', 30, 70, 8) AND "
       "u / (g + 1) < 1.2",
       M::kRows},
      {"SELECT AVG(r) FROM photo WHERE u / (g + 1) < 1.2", M::kAggregate},
  };
}

using SortedRows = std::vector<std::pair<uint64_t, std::vector<double>>>;

SortedRows Sorted(const QueryResult& r) {
  SortedRows rows;
  rows.reserve(r.rows.size());
  for (const auto& row : r.rows) rows.emplace_back(row.obj_id, row.values);
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Bit-exact equivalence of two results under `mode`. Doubles compare
/// with ==: the kernel's contract is the SAME bits, not close bits.
/// Scan counters compare too unless the query carries a bare LIMIT --
/// a filled limit cancels upstream scans at a point that differs
/// between the per-row path and the chunked kernel.
void ExpectIdentical(const QueryResult& want, const QueryResult& got,
                     Mode mode, const std::string& context) {
  SCOPED_TRACE(context);
  const bool deterministic_counters =
      context.find("LIMIT") == std::string::npos;
  ASSERT_EQ(want.is_aggregate, got.is_aggregate);
  EXPECT_EQ(want.columns, got.columns);
  switch (mode) {
    case Mode::kRows:
      EXPECT_EQ(Sorted(want), Sorted(got));
      break;
    case Mode::kOrdered:
      ASSERT_EQ(want.rows.size(), got.rows.size());
      for (size_t i = 0; i < want.rows.size(); ++i) {
        EXPECT_EQ(want.rows[i].obj_id, got.rows[i].obj_id) << "row " << i;
        EXPECT_EQ(want.rows[i].values, got.rows[i].values) << "row " << i;
      }
      break;
    case Mode::kAggregate:
      EXPECT_EQ(want.aggregate_value, got.aggregate_value);
      break;
  }
  if (deterministic_counters) {
    EXPECT_EQ(want.exec.objects_examined, got.exec.objects_examined);
    EXPECT_EQ(want.exec.objects_matched, got.exec.objects_matched);
  }
}

QueryEngine::Options SingleThreaded(bool columnar_kernel) {
  QueryEngine::Options opts;
  opts.executor.scan_threads = 1;
  opts.executor.columnar_kernel = columnar_kernel;
  // Without this, nearly every query in the list auto-selects the tag
  // vertical partition (its attributes all live in the tag) and never
  // reaches a photo container. Pinning selects to the photo table is
  // what makes this a KERNEL differential; the explicit FROM tag
  // queries cover the tag path.
  opts.planner.auto_tag_selection = false;
  return opts;
}

class ColumnarDiffTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    row_store_ = new catalog::ObjectStore(MakeSky(8101));
    auto mapped = MapStore(*row_store_, "diff");
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    mapped_store_ = new catalog::ObjectStore(std::move(*mapped));
  }
  static void TearDownTestSuite() {
    delete mapped_store_;
    delete row_store_;
    mapped_store_ = nullptr;
    row_store_ = nullptr;
  }
  static catalog::ObjectStore* row_store_;
  static catalog::ObjectStore* mapped_store_;
};

catalog::ObjectStore* ColumnarDiffTest::row_store_ = nullptr;
catalog::ObjectStore* ColumnarDiffTest::mapped_store_ = nullptr;

TEST_F(ColumnarDiffTest, KernelMatchesRowPathBitExactly) {
  QueryEngine rows(row_store_, SingleThreaded(false));
  QueryEngine kernel(mapped_store_, SingleThreaded(true));
  QueryEngine fallback(mapped_store_, SingleThreaded(false));

  for (const DiffQuery& q : DiffQueries()) {
    auto want = rows.Execute(q.sql);
    ASSERT_TRUE(want.ok()) << q.sql << ": " << want.status().ToString();
    auto via_kernel = kernel.Execute(q.sql);
    ASSERT_TRUE(via_kernel.ok())
        << q.sql << ": " << via_kernel.status().ToString();
    auto via_fallback = fallback.Execute(q.sql);
    ASSERT_TRUE(via_fallback.ok())
        << q.sql << ": " << via_fallback.status().ToString();

    ExpectIdentical(*want, *via_kernel, q.mode, q.sql + " [kernel]");
    ExpectIdentical(*want, *via_fallback, q.mode, q.sql + " [fallback]");

    // The row store has no column views, so its engine never reports
    // columnar containers; the mapped store with the kernel on must
    // (except for tag scans and leaves the kernel declines).
    EXPECT_EQ(want->exec.containers_columnar, 0u) << q.sql;
    EXPECT_EQ(via_fallback->exec.containers_columnar, 0u) << q.sql;
    if (q.photo_scan) {
      EXPECT_GT(via_kernel->exec.containers_columnar, 0u) << q.sql;
    } else {
      EXPECT_EQ(via_kernel->exec.containers_columnar, 0u) << q.sql;
    }
  }
}

TEST_F(ColumnarDiffTest, RuntimeErrorsSurfaceIdentically) {
  // The kernel runs division leaves itself now, so its divide-by-zero
  // must surface with the row path's exact status -- whether the zero
  // divisor hits on the very first row or midway through a container's
  // chunked predicate loop.
  QueryEngine rows(row_store_, SingleThreaded(false));
  QueryEngine kernel(mapped_store_, SingleThreaded(true));
  for (const char* sql : {
           // Every row divides by zero: the first chunk errors at k=0.
           "SELECT obj_id FROM photo WHERE 1 / (r - r) > 0",
           // Stars carry class = 1, so the divisor zeroes only on star
           // rows -- partway through a chunk, after galaxy survivors
           // were already marked.
           "SELECT obj_id FROM photo WHERE 1 / (class - 1) > 0",
           // Same mid-container zero divisor behind a spatial conjunct:
           // AND short-circuiting decides which rows divide at all.
           "SELECT obj_id FROM photo WHERE CIRCLE('GAL', 30, 70, 20) "
           "AND 1 / (class - 1) > 0",
       }) {
    SCOPED_TRACE(sql);
    auto a = rows.Execute(sql);
    auto b = kernel.Execute(sql);
    ASSERT_FALSE(a.ok());
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(a.status().code(), b.status().code());
    EXPECT_EQ(a.status().message(), b.status().message());
  }
}

TEST_F(ColumnarDiffTest, ParallelScansStillAgreeAsMultisets) {
  // Default thread count: delivery and accumulation order are free, so
  // compare order-free queries only (integer rows and COUNT).
  QueryEngine::Options opts;
  opts.planner.auto_tag_selection = false;
  QueryEngine rows(row_store_, opts);
  QueryEngine kernel(mapped_store_, opts);
  for (const char* sql :
       {"SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 120, 55, 10)",
        "SELECT obj_id FROM photo WHERE class = 'QSO'",
        "SELECT COUNT(*) FROM photo WHERE r < 21"}) {
    auto want = rows.Execute(sql);
    auto got = kernel.Execute(sql);
    ASSERT_TRUE(want.ok() && got.ok()) << sql;
    ExpectIdentical(*want, *got,
                    want->is_aggregate ? Mode::kAggregate : Mode::kRows,
                    std::string(sql) + " [parallel]");
  }
}

TEST_F(ColumnarDiffTest, MappedColdStartSkipsRebuild) {
  // Adoption is a rebuild-free cold start: every container holds column
  // views into the mapping and no materialized rows until asked.
  ASSERT_EQ(mapped_store_->object_count(), row_store_->object_count());
  ASSERT_EQ(mapped_store_->container_count(),
            row_store_->container_count());
  for (const auto& [raw, c] : mapped_store_->containers()) {
    EXPECT_GT(c.columnar.n, 0u) << "container " << raw;
    EXPECT_TRUE(c.objects.empty()) << "container " << raw;
  }
  // Mapped containers are immutable: mutation is refused whole.
  catalog::PhotoObj obj = row_store_->containers().begin()
                              ->second.rows()
                              .front();
  Status insert = mapped_store_->Insert(obj);
  EXPECT_EQ(insert.code(), StatusCode::kFailedPrecondition);
  // The density map (admission + routing) survives adoption.
  htm::Region cone = htm::Region::Circle(180.0, 40.0, 6.0);
  auto pa = row_store_->PredictRegion(cone);
  auto pb = mapped_store_->PredictRegion(cone);
  EXPECT_EQ(pa.bytes_to_scan, pb.bytes_to_scan);
  EXPECT_EQ(pa.max_objects, pb.max_objects);
}

TEST_F(ColumnarDiffTest, MappedStoreReencodesBitExact) {
  // Canonical encoding: a mapped store re-encodes to the byte string it
  // was mapped from, so snapshot-of-mapped-store is a faithful copy.
  EXPECT_EQ(persist::EncodeSnapshot(*mapped_store_),
            persist::EncodeSnapshot(*row_store_));
}

TEST(ColumnarFederationTest, MappedShardFleetsMatchRowFleets) {
  catalog::ObjectStore sky = MakeSky(8202);
  for (size_t servers : {size_t{1}, size_t{3}, size_t{8}}) {
    SCOPED_TRACE("servers=" + std::to_string(servers));
    archive::ReplicationOptions repl;
    repl.num_servers = servers;
    repl.base_replicas = servers > 1 ? 2 : 1;
    archive::ShardedStore sharded(sky, repl);
    auto row_shards = sharded.LiveShards();
    ASSERT_TRUE(row_shards.ok()) << row_shards.status().ToString();

    // The mapped fleet: each server's store snapshotted and mmap'd,
    // serving the same assigned container set.
    std::vector<catalog::ObjectStore> mapped_stores;
    mapped_stores.reserve(row_shards->size());
    std::vector<Shard> mapped_shards;
    for (const Shard& s : *row_shards) {
      auto mapped = MapStore(
          *s.store, "fleet" + std::to_string(servers) + "_srv" +
                        std::to_string(s.server));
      ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
      mapped_stores.push_back(std::move(*mapped));
      Shard shard = s;
      shard.store = &mapped_stores.back();
      mapped_shards.push_back(std::move(shard));
    }

    FederatedQueryEngine::Options opts;
    opts.executor.scan_threads = 1;
    opts.planner.auto_tag_selection = false;
    FederatedQueryEngine row_fed(*row_shards, opts);
    FederatedQueryEngine mapped_fed(mapped_shards, opts);

    bool saw_columnar = false;
    for (const DiffQuery& q : DiffQueries()) {
      auto want = row_fed.Execute(q.sql);
      ASSERT_TRUE(want.ok()) << q.sql << ": " << want.status().ToString();
      auto got = mapped_fed.Execute(q.sql);
      ASSERT_TRUE(got.ok()) << q.sql << ": " << got.status().ToString();
      ExpectIdentical(*want, *got, q.mode, q.sql);
      saw_columnar |= got->exec.containers_columnar > 0;
      EXPECT_EQ(want->exec.containers_columnar, 0u) << q.sql;
    }
    // The kernel (and its stat) flows through the federated merge.
    EXPECT_TRUE(saw_columnar);
  }
}

}  // namespace
}  // namespace sdss::query
