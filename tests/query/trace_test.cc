#include "query/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/sim_clock.h"

namespace sdss::query {
namespace {

/// A QueryTrace clocked by a SimClock: every Begin/End reads simulated
/// nanoseconds, so span trees are bit-for-bit deterministic.
struct SimTraced {
  sdss::SimClock clock;
  QueryTrace trace;
  SimTraced()
      : trace([this] {
          return static_cast<uint64_t>(clock.now() * 1e9);
        }) {}
};

TEST(QueryTrace, DeterministicTreeUnderSimClock) {
  SimTraced t;
  int root = t.trace.Begin("fan_out");
  t.clock.Advance(0.001);
  int shard0 = t.trace.Begin("shard", root, /*lane=*/1);
  int shard1 = t.trace.Begin("shard", root, /*lane=*/2);
  t.clock.Advance(0.002);
  t.trace.End(shard0);
  t.clock.Advance(0.001);
  t.trace.End(shard1);
  int merge = t.trace.Begin("merge", root);
  t.clock.Advance(0.0005);
  t.trace.End(merge);
  t.trace.End(root);

  ASSERT_EQ(t.trace.span_count(), 4u);
  std::vector<TraceSpan> spans = t.trace.Spans();
  // Begin order is the vector order; parent indices point into it.
  EXPECT_EQ(spans[0].name, "fan_out");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "shard");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].lane, 1);
  EXPECT_EQ(spans[2].lane, 2);
  EXPECT_EQ(spans[3].name, "merge");
  EXPECT_EQ(spans[3].parent, root);

  // Exact simulated timestamps.
  EXPECT_EQ(spans[0].start_ns, 0u);
  EXPECT_EQ(spans[0].end_ns, 4'500'000u);
  EXPECT_EQ(spans[1].start_ns, 1'000'000u);
  EXPECT_EQ(spans[1].end_ns, 3'000'000u);
  EXPECT_EQ(spans[2].start_ns, 1'000'000u);
  EXPECT_EQ(spans[2].end_ns, 4'000'000u);
  EXPECT_EQ(spans[3].start_ns, 4'000'000u);
  EXPECT_EQ(spans[3].end_ns, 4'500'000u);
}

TEST(QueryTrace, AnnotationsRoundTrip) {
  SimTraced t;
  int s = t.trace.Begin("shard");
  t.trace.Num(s, "rows", 42);
  t.trace.Num(s, "bytes", 1e6);
  t.trace.Note(s, "kernel", "columnar");
  t.trace.End(s);
  TraceSpan span = t.trace.Spans()[0];
  EXPECT_EQ(span.Num("rows"), 42.0);
  EXPECT_EQ(span.Num("bytes"), 1e6);
  EXPECT_EQ(span.Num("absent", -1.0), -1.0);
  EXPECT_EQ(span.Note("kernel"), "columnar");
  EXPECT_EQ(span.Note("absent"), "");
}

TEST(QueryTrace, FindByName) {
  SimTraced t;
  int root = t.trace.Begin("fan_out");
  t.trace.Begin("shard", root, 1);
  t.trace.Begin("shard", root, 2);
  t.trace.Begin("merge", root);
  EXPECT_EQ(t.trace.Find("shard").size(), 2u);
  EXPECT_EQ(t.trace.Find("merge").size(), 1u);
  EXPECT_EQ(t.trace.Find("nope").size(), 0u);
}

TEST(QueryTrace, ChromeJsonShape) {
  SimTraced t;
  t.trace.SetMeta("sql", "SELECT 1");
  t.trace.SetMeta("user", "ana");
  int root = t.trace.Begin("plan");
  t.clock.Advance(0.001);
  t.trace.Num(root, "shards", 3);
  t.trace.Note(root, "store", "mydb");
  t.trace.End(root);
  std::string json = t.trace.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":3"), std::string::npos);
  EXPECT_NE(json.find("\"store\":\"mydb\""), std::string::npos);
  EXPECT_NE(json.find("\"sql\":\"SELECT 1\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(QueryTrace, JsonEscapesMetaAndNotes) {
  SimTraced t;
  t.trace.SetMeta("sql", "SELECT \"x\"\nFROM t\\u");
  int s = t.trace.Begin("plan");
  t.trace.Note(s, "detail", "a\"b\\c");
  t.trace.End(s);
  std::string json = t.trace.ToChromeJson();
  EXPECT_NE(json.find("SELECT \\\"x\\\"\\nFROM t\\\\u"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(QueryTrace, NullSafeHelpersAreNoOps) {
  QueryTrace* none = nullptr;
  int s = TraceBegin(none, "plan");
  EXPECT_EQ(s, QueryTrace::kNoSpan);
  TraceNum(none, s, "rows", 1);   // Must not crash.
  TraceNote(none, s, "k", "v");
  TraceEnd(none, s);

  // With a live trace but an invalid span id, the helpers still no-op.
  QueryTrace trace;
  TraceNum(&trace, QueryTrace::kNoSpan, "rows", 1);
  TraceEnd(&trace, QueryTrace::kNoSpan);
  EXPECT_EQ(trace.span_count(), 0u);
}

TEST(QueryTrace, UnendedSpanExportsZeroLength) {
  SimTraced t;
  t.clock.Advance(0.002);
  t.trace.Begin("admission_wait");
  std::string json = t.trace.ToChromeJson();
  EXPECT_NE(json.find("\"dur\":0.000"), std::string::npos);
}

}  // namespace
}  // namespace sdss::query
