// End-to-end query engine tests: parse -> plan -> execute against a
// generated sky, validated against brute-force evaluation.

#include "query/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "catalog/sky_generator.h"
#include "core/coords.h"

namespace sdss::query {
namespace {

using catalog::ObjClass;
using catalog::ObjectStore;
using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SkyModel;

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SkyModel m;
    m.seed = 11;
    m.num_galaxies = 8000;
    m.num_stars = 6000;
    m.num_quasars = 200;
    objects_ = new std::vector<PhotoObj>(SkyGenerator(m).Generate());
    store_ = new ObjectStore();
    ASSERT_TRUE(store_->BulkLoad(*objects_).ok());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete objects_;
    store_ = nullptr;
    objects_ = nullptr;
  }

  QueryEngine Engine() { return QueryEngine(store_); }

  static std::set<uint64_t> BruteForce(
      const std::function<bool(const PhotoObj&)>& pred) {
    std::set<uint64_t> out;
    for (const auto& o : *objects_) {
      if (pred(o)) out.insert(o.obj_id);
    }
    return out;
  }

  static std::set<uint64_t> Ids(const QueryResult& r) {
    std::set<uint64_t> out;
    for (const auto& row : r.rows) out.insert(row.obj_id);
    return out;
  }

  static std::vector<PhotoObj>* objects_;
  static ObjectStore* store_;
};

std::vector<PhotoObj>* EngineTest::objects_ = nullptr;
ObjectStore* EngineTest::store_ = nullptr;

TEST_F(EngineTest, CountStarMatchesCatalog) {
  auto r = Engine().Execute("SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->is_aggregate);
  EXPECT_DOUBLE_EQ(r->aggregate_value,
                   static_cast<double>(objects_->size()));
}

TEST_F(EngineTest, MagnitudeCutMatchesBruteForce) {
  auto r = Engine().Execute("SELECT obj_id FROM photo WHERE r < 18");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Ids(*r),
            BruteForce([](const PhotoObj& o) { return o.mag[2] < 18.0f; }));
}

TEST_F(EngineTest, ColorCutMatchesBruteForce) {
  auto r = Engine().Execute(
      "SELECT obj_id FROM photo WHERE u - g < 0.2 AND class = 'QSO'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), BruteForce([](const PhotoObj& o) {
              return (o.mag[0] - o.mag[1]) < 0.2f &&
                     o.obj_class == ObjClass::kQuasar;
            }));
  EXPECT_FALSE(r->rows.empty());
}

TEST_F(EngineTest, SpatialConeMatchesBruteForce) {
  // Center the cone on the footprint.
  SphericalCoord eq = ToSpherical(
      EquatorialUnitVector({0.0, 90.0, Frame::kGalactic}),
      Frame::kEquatorial);
  char sql[160];
  std::snprintf(sql, sizeof(sql),
                "SELECT obj_id FROM photo WHERE CIRCLE(%.6f, %.6f, 5.0)",
                eq.lon_deg, eq.lat_deg);
  auto r = Engine().Execute(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  htm::Region region = htm::Region::Circle(eq.lon_deg, eq.lat_deg, 5.0);
  EXPECT_EQ(Ids(*r), BruteForce([&](const PhotoObj& o) {
              return region.Contains(o.pos);
            }));
  EXPECT_TRUE(r->used_spatial_index);
  // The pruned scan must not touch every container.
  EXPECT_LT(r->exec.containers_scanned, store_->container_count());
}

TEST_F(EngineTest, GalacticBandQuery) {
  auto r = Engine().Execute(
      "SELECT obj_id FROM photo WHERE BAND('GAL', 40, 50)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  htm::Region band = htm::Region::LatBand(40, 50, Frame::kGalactic);
  EXPECT_EQ(Ids(*r), BruteForce([&](const PhotoObj& o) {
              return band.Contains(o.pos);
            }));
  EXPECT_FALSE(r->rows.empty());
}

TEST_F(EngineTest, TagStoreAutoSelected) {
  auto r = Engine().Execute("SELECT obj_id, r FROM photo WHERE r < 17");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->used_tag_store);  // r and obj_id live in the tag.
  auto r2 = Engine().Execute(
      "SELECT obj_id, redshift FROM photo WHERE redshift > 1");
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->used_tag_store);  // redshift is full-object only.
}

TEST_F(EngineTest, TagAndFullStoresAgree) {
  QueryEngine eng = Engine();
  auto via_tag = eng.Execute("SELECT obj_id FROM tag WHERE r < 18");
  QueryEngine::Options opt;
  opt.planner.auto_tag_selection = false;
  QueryEngine full_engine(store_, opt);
  auto via_full = full_engine.Execute(
      "SELECT obj_id FROM photo WHERE r < 18");
  ASSERT_TRUE(via_tag.ok() && via_full.ok());
  EXPECT_FALSE(via_tag->used_tag_store && via_full->used_tag_store);
  EXPECT_EQ(Ids(*via_tag), Ids(*via_full));
}

TEST_F(EngineTest, OrderByReturnsSortedRows) {
  auto r = Engine().Execute(
      "SELECT obj_id, r FROM photo WHERE r < 16.5 ORDER BY r");
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->rows.size(), 1u);
  size_t r_col = 1;
  for (size_t i = 1; i < r->rows.size(); ++i) {
    EXPECT_LE(r->rows[i - 1].values[r_col], r->rows[i].values[r_col]);
  }
}

TEST_F(EngineTest, OrderByDescLimit) {
  auto r = Engine().Execute(
      "SELECT obj_id, r FROM photo ORDER BY r DESC LIMIT 10");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 10u);
  // These are the 10 faintest objects.
  std::vector<float> mags;
  for (const auto& o : *objects_) mags.push_back(o.mag[2]);
  std::sort(mags.begin(), mags.end(), std::greater<>());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(r->rows[i].values[1], mags[i], 1e-5);
  }
}

TEST_F(EngineTest, OrderByHiddenColumnAppended) {
  auto r = Engine().Execute("SELECT obj_id FROM photo ORDER BY r LIMIT 5");
  ASSERT_TRUE(r.ok());
  // The sort key was appended as a hidden trailing column.
  ASSERT_EQ(r->columns.size(), 2u);
  EXPECT_EQ(r->columns[1], "r");
}

TEST_F(EngineTest, LimitStopsEarly) {
  auto r = Engine().Execute("SELECT obj_id FROM photo LIMIT 100");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 100u);
}

TEST_F(EngineTest, SampleReturnsApproximateFraction) {
  auto r = Engine().Execute("SELECT obj_id FROM photo SAMPLE 0.1");
  ASSERT_TRUE(r.ok());
  double frac = static_cast<double>(r->rows.size()) /
                static_cast<double>(objects_->size());
  EXPECT_NEAR(frac, 0.1, 0.02);
}

TEST_F(EngineTest, UnionDeduplicates) {
  auto r = Engine().Execute(
      "SELECT obj_id FROM photo WHERE r < 18 "
      "UNION SELECT obj_id FROM photo WHERE r < 17");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto expected =
      BruteForce([](const PhotoObj& o) { return o.mag[2] < 18.0f; });
  EXPECT_EQ(Ids(*r), expected);
  EXPECT_EQ(r->rows.size(), expected.size());  // No duplicates.
}

TEST_F(EngineTest, IntersectMatchesAnd) {
  auto via_set = Engine().Execute(
      "SELECT obj_id FROM photo WHERE r < 18 "
      "INTERSECT SELECT obj_id FROM photo WHERE g - r > 0.8");
  auto via_and = Engine().Execute(
      "SELECT obj_id FROM photo WHERE r < 18 AND g - r > 0.8");
  ASSERT_TRUE(via_set.ok() && via_and.ok());
  EXPECT_EQ(Ids(*via_set), Ids(*via_and));
}

TEST_F(EngineTest, ExceptMatchesAndNot) {
  auto via_set = Engine().Execute(
      "SELECT obj_id FROM photo WHERE r < 18 "
      "EXCEPT SELECT obj_id FROM photo WHERE class = 'STAR'");
  auto via_and = Engine().Execute(
      "SELECT obj_id FROM photo WHERE r < 18 AND NOT class = 'STAR'");
  ASSERT_TRUE(via_set.ok() && via_and.ok());
  EXPECT_EQ(Ids(*via_set), Ids(*via_and));
}

TEST_F(EngineTest, AggregatesMatchBruteForce) {
  auto avg = Engine().Execute("SELECT AVG(r) FROM photo WHERE r < 20");
  auto mn = Engine().Execute("SELECT MIN(r) FROM photo");
  auto mx = Engine().Execute("SELECT MAX(r) FROM photo");
  ASSERT_TRUE(avg.ok() && mn.ok() && mx.ok());
  double sum = 0;
  uint64_t n = 0;
  float true_min = 1e9, true_max = -1e9;
  for (const auto& o : *objects_) {
    true_min = std::min(true_min, o.mag[2]);
    true_max = std::max(true_max, o.mag[2]);
    if (o.mag[2] < 20.0f) {
      sum += o.mag[2];
      ++n;
    }
  }
  EXPECT_NEAR(avg->aggregate_value, sum / static_cast<double>(n), 1e-6);
  EXPECT_NEAR(mn->aggregate_value, true_min, 1e-6);
  EXPECT_NEAR(mx->aggregate_value, true_max, 1e-6);
}

TEST_F(EngineTest, PredictionBoundsActualForSpatialQuery) {
  SphericalCoord eq = ToSpherical(
      EquatorialUnitVector({0.0, 90.0, Frame::kGalactic}),
      Frame::kEquatorial);
  char sql[160];
  std::snprintf(sql, sizeof(sql),
                "SELECT obj_id FROM photo WHERE CIRCLE(%.6f, %.6f, 8.0)",
                eq.lon_deg, eq.lat_deg);
  auto r = Engine().Execute(sql);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->prediction.min_objects, r->rows.size());
  EXPECT_GE(r->prediction.max_objects, r->rows.size());
}

TEST_F(EngineTest, StreamingDeliversBeforeCompletion) {
  QueryEngine eng = Engine();
  size_t batches = 0;
  uint64_t rows = 0;
  auto stats = eng.ExecuteStreaming(
      "SELECT obj_id FROM photo WHERE r < 21",
      [&](const RowBatch& batch) {
        ++batches;
        rows += batch.size();
        return true;
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_emitted, rows);
  EXPECT_GT(batches, 1u);  // Data arrived incrementally, not all at once.
  EXPECT_LE(stats->seconds_to_first_row, stats->seconds_total);
}

TEST_F(EngineTest, StreamingCancellation) {
  QueryEngine eng = Engine();
  uint64_t rows = 0;
  auto stats = eng.ExecuteStreaming("SELECT obj_id FROM photo",
                                    [&](const RowBatch& batch) {
                                      rows += batch.size();
                                      return rows < 500;  // Stop early.
                                    });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->cancelled_early);
  EXPECT_LT(stats->objects_examined, objects_->size());
}

TEST_F(EngineTest, ExplainDescribesPlan) {
  auto text = Engine().Explain(
      "SELECT obj_id FROM photo WHERE CIRCLE(180, 40, 2) AND r < 20 "
      "ORDER BY r LIMIT 5");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("LIMIT"), std::string::npos);
  EXPECT_NE(text->find("SORT"), std::string::npos);
  EXPECT_NE(text->find("SCAN"), std::string::npos);
  EXPECT_NE(text->find("spatially pruned"), std::string::npos);
  EXPECT_NE(text->find("prediction"), std::string::npos);
}

TEST_F(EngineTest, UnknownAttributeFailsAtPlanTime) {
  auto r = Engine().Execute("SELECT bogus FROM photo");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  auto r2 = Engine().Execute("SELECT redshift FROM tag");
  EXPECT_FALSE(r2.ok());
}

TEST_F(EngineTest, DisablingIndexStillGivesExactResults) {
  QueryEngine::Options opt;
  opt.planner.use_spatial_index = false;
  QueryEngine eng(store_, opt);
  auto no_index = eng.Execute(
      "SELECT obj_id FROM photo WHERE CIRCLE(180, 40, 5)");
  auto with_index = Engine().Execute(
      "SELECT obj_id FROM photo WHERE CIRCLE(180, 40, 5)");
  ASSERT_TRUE(no_index.ok() && with_index.ok());
  EXPECT_EQ(Ids(*no_index), Ids(*with_index));
  EXPECT_FALSE(no_index->used_spatial_index);
  EXPECT_GE(no_index->exec.objects_examined,
            with_index->exec.objects_examined);
}

TEST_F(EngineTest, NegatedSpatialPredicateIsExact) {
  // NOT of a spatial atom defeats the cover extraction (no sound bound),
  // but per-object evaluation keeps the answer exact.
  auto r = Engine().Execute(
      "SELECT obj_id FROM photo WHERE NOT CIRCLE(180, 40, 30) AND r < 17");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  htm::Region circle = htm::Region::Circle(180, 40, 30);
  EXPECT_EQ(Ids(*r), BruteForce([&](const PhotoObj& o) {
              return !circle.Contains(o.pos) && o.mag[2] < 17.0f;
            }));
  EXPECT_FALSE(r->used_spatial_index);
}

TEST_F(EngineTest, OrMixingSpatialAndAttributeIsExact) {
  auto r = Engine().Execute(
      "SELECT obj_id FROM photo WHERE CIRCLE(180, 40, 3) OR r < 15.5");
  ASSERT_TRUE(r.ok());
  htm::Region circle = htm::Region::Circle(180, 40, 3);
  EXPECT_EQ(Ids(*r), BruteForce([&](const PhotoObj& o) {
              return circle.Contains(o.pos) || o.mag[2] < 15.5f;
            }));
  EXPECT_FALSE(r->used_spatial_index);  // OR branch is unbounded.
}

TEST_F(EngineTest, TwoCircleUnionUsesIndex) {
  auto r = Engine().Execute(
      "SELECT obj_id FROM photo WHERE CIRCLE(180, 40, 3) OR "
      "CIRCLE(200, 50, 3)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->used_spatial_index);  // Both branches bounded: union.
  htm::Region u = htm::Region::Circle(180, 40, 3)
                      .UnionWith(htm::Region::Circle(200, 50, 3));
  EXPECT_EQ(Ids(*r), BruteForce([&](const PhotoObj& o) {
              return u.Contains(o.pos);
            }));
}

TEST_F(EngineTest, PaperQuasarQuery) {
  // The paper's example: "find all the quasars brighter than r=22" (the
  // faint-blue-neighbor join half runs on the hash machine).
  auto r = Engine().Execute(
      "SELECT obj_id, ra, dec, r FROM photo WHERE class = 'QSO' AND r < "
      "22");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Ids(*r), BruteForce([](const PhotoObj& o) {
              return o.obj_class == ObjClass::kQuasar && o.mag[2] < 22.0f;
            }));
}

}  // namespace
}  // namespace sdss::query
