// Planner tests: the QET shapes BuildPlan produces, planner flags,
// validation errors, and the plan explanation format.

#include <gtest/gtest.h>

#include "catalog/sky_generator.h"
#include "query/qet.h"

namespace sdss::query {
namespace {

using catalog::ObjectStore;
using catalog::SkyGenerator;
using catalog::SkyModel;

class PlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SkyModel m;
    m.seed = 61;
    m.num_galaxies = 1000;
    m.num_stars = 500;
    m.num_quasars = 20;
    store_ = new ObjectStore();
    ASSERT_TRUE(store_->BulkLoad(SkyGenerator(m).Generate()).ok());
  }
  static void TearDownTestSuite() {
    delete store_;
    store_ = nullptr;
  }

  static Result<Plan> PlanFor(const std::string& sql,
                              PlannerOptions opt = {}) {
    auto parsed = Parse(sql);
    if (!parsed.ok()) return parsed.status();
    return BuildPlan(*parsed, *store_, opt);
  }

  static ObjectStore* store_;
};

ObjectStore* PlanTest::store_ = nullptr;

TEST_F(PlanTest, SimpleSelectIsAScanLeaf) {
  auto plan = PlanFor("SELECT obj_id, r FROM photo WHERE r < 20");
  ASSERT_TRUE(plan.ok());
  ASSERT_NE(plan->root, nullptr);
  EXPECT_EQ(plan->root->type, PlanNodeType::kScan);
  EXPECT_TRUE(plan->root->children.empty());
  EXPECT_EQ(plan->columns, (std::vector<std::string>{"obj_id", "r"}));
  EXPECT_FALSE(plan->is_aggregate);
}

TEST_F(PlanTest, OrderLimitStackOnTopOfScan) {
  auto plan =
      PlanFor("SELECT obj_id, r FROM photo ORDER BY r DESC LIMIT 7");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->root->type, PlanNodeType::kLimit);
  EXPECT_EQ(plan->root->limit, 7);
  ASSERT_EQ(plan->root->children.size(), 1u);
  const PlanNode* sort = plan->root->children[0].get();
  EXPECT_EQ(sort->type, PlanNodeType::kSort);
  EXPECT_TRUE(sort->sort_desc);
  EXPECT_EQ(sort->sort_column, 1u);  // "r" is the second projection.
  ASSERT_EQ(sort->children.size(), 1u);
  EXPECT_EQ(sort->children[0]->type, PlanNodeType::kScan);
}

TEST_F(PlanTest, AggregateWrapsScan) {
  auto plan = PlanFor("SELECT AVG(r) FROM photo WHERE r < 20");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->is_aggregate);
  ASSERT_EQ(plan->root->type, PlanNodeType::kAggregate);
  EXPECT_EQ(plan->root->agg, AggFunc::kAvg);
  EXPECT_EQ(plan->columns, (std::vector<std::string>{"AVG(r)"}));
}

TEST_F(PlanTest, SetQueryBuildsLeftDeepTree) {
  auto plan = PlanFor(
      "SELECT obj_id FROM photo WHERE r < 20 "
      "UNION SELECT obj_id FROM photo WHERE g < 20 "
      "EXCEPT SELECT obj_id FROM photo WHERE i < 15");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->root->type, PlanNodeType::kDifference);
  ASSERT_EQ(plan->root->children.size(), 2u);
  EXPECT_EQ(plan->root->children[0]->type, PlanNodeType::kUnion);
  EXPECT_EQ(plan->root->children[1]->type, PlanNodeType::kScan);
}

TEST_F(PlanTest, SetQueryColumnCountMismatchRejected) {
  auto plan = PlanFor(
      "SELECT obj_id FROM photo UNION SELECT obj_id, r FROM photo");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, TagSelectionFlagTracksAttributes) {
  auto tag_plan = PlanFor("SELECT obj_id, r FROM photo WHERE g < 20");
  ASSERT_TRUE(tag_plan.ok());
  EXPECT_TRUE(tag_plan->used_tag_store);

  auto full_plan =
      PlanFor("SELECT obj_id, redshift FROM photo WHERE g < 20");
  ASSERT_TRUE(full_plan.ok());
  EXPECT_FALSE(full_plan->used_tag_store);

  PlannerOptions no_auto;
  no_auto.auto_tag_selection = false;
  auto manual = PlanFor("SELECT obj_id, r FROM photo", no_auto);
  ASSERT_TRUE(manual.ok());
  EXPECT_FALSE(manual->used_tag_store);
}

TEST_F(PlanTest, SpatialIndexFlagTracksRegionExtraction) {
  auto spatial = PlanFor(
      "SELECT obj_id FROM photo WHERE CIRCLE(10, 10, 1) AND r < 20");
  ASSERT_TRUE(spatial.ok());
  EXPECT_TRUE(spatial->used_spatial_index);

  auto plain = PlanFor("SELECT obj_id FROM photo WHERE r < 20");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->used_spatial_index);

  PlannerOptions no_index;
  no_index.use_spatial_index = false;
  auto disabled =
      PlanFor("SELECT obj_id FROM photo WHERE CIRCLE(10, 10, 1)", no_index);
  ASSERT_TRUE(disabled.ok());
  EXPECT_FALSE(disabled->used_spatial_index);
}

TEST_F(PlanTest, PredictionFilledForSpatialAndFullScans) {
  auto spatial =
      PlanFor("SELECT obj_id FROM photo WHERE CIRCLE(180, 40, 5)");
  ASSERT_TRUE(spatial.ok());
  EXPECT_LE(spatial->prediction.min_objects,
            spatial->prediction.max_objects);

  auto full = PlanFor("SELECT obj_id FROM photo");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->prediction.max_objects, store_->object_count());
  EXPECT_EQ(full->prediction.bytes_to_scan, store_->Stats().full_bytes);
}

TEST_F(PlanTest, SelectStarProjectsEverything) {
  PlannerOptions no_auto;
  no_auto.auto_tag_selection = false;
  auto plan = PlanFor("SELECT * FROM photo", no_auto);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->columns.size(), catalog::PhotoAttributeNames().size());

  auto tag_star = PlanFor("SELECT * FROM tag");
  ASSERT_TRUE(tag_star.ok());
  EXPECT_EQ(tag_star->columns.size(), 10u);  // The ten tag attributes.
}

TEST_F(PlanTest, ExplainNamesAllNodes) {
  auto plan = PlanFor(
      "SELECT obj_id FROM photo WHERE CIRCLE(10, 10, 1) AND r < 20 "
      "ORDER BY r LIMIT 3");
  ASSERT_TRUE(plan.ok());
  std::string text = plan->Explain();
  EXPECT_NE(text.find("LIMIT 3"), std::string::npos);
  EXPECT_NE(text.find("SORT"), std::string::npos);
  EXPECT_NE(text.find("SCAN"), std::string::npos);
  EXPECT_NE(text.find("spatially pruned"), std::string::npos);
  EXPECT_NE(text.find("store: tag partition"), std::string::npos);
}

TEST_F(PlanTest, SampleCarriedIntoScanNode) {
  auto plan = PlanFor("SELECT obj_id FROM photo SAMPLE 0.25");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->root->sample, 0.25);
}

class MyDbPlanTest : public PlanTest {
 protected:
  static PlannerOptions WithResolver() {
    PlannerOptions opt;
    opt.mydb = [](const std::string& name) -> const ObjectStore* {
      return name == "bright" ? personal_ : nullptr;
    };
    return opt;
  }

  static void SetUpTestSuite() {
    PlanTest::SetUpTestSuite();
    catalog::StoreOptions so;
    so.build_tags = false;
    personal_ = new ObjectStore(so);
    ASSERT_TRUE(personal_->BulkLoad(store_->Sample(0.2, 9)
                                        .containers()
                                        .begin()
                                        ->second.objects)
                    .ok());
  }
  static void TearDownTestSuite() {
    delete personal_;
    personal_ = nullptr;
    PlanTest::TearDownTestSuite();
  }

  static ObjectStore* personal_;
};

ObjectStore* MyDbPlanTest::personal_ = nullptr;

TEST_F(MyDbPlanTest, MyDbSelectLowersToMyDbScanLeaf) {
  auto plan = PlanFor("SELECT obj_id, r FROM mydb.bright WHERE r < 20",
                      WithResolver());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PlanNodeType::kMyDbScan);
  EXPECT_EQ(plan->root->mydb_store, personal_);
  EXPECT_EQ(plan->root->mydb_name, "bright");
  // The density-map prediction prices the personal store, not the fleet.
  EXPECT_EQ(plan->prediction.bytes_to_scan,
            personal_->Stats().full_bytes);
  EXPECT_NE(plan->Explain().find("MYDB_SCAN mydb.bright"),
            std::string::npos);
}

TEST_F(MyDbPlanTest, MyDbAggregateKeepsPushdownShape) {
  auto plan = PlanFor("SELECT COUNT(*) FROM mydb.bright", WithResolver());
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->root->type, PlanNodeType::kAggregate);
  EXPECT_EQ(plan->root->children[0]->type, PlanNodeType::kMyDbScan);
}

TEST_F(MyDbPlanTest, MyDbErrors) {
  // Unknown table, missing resolver, and fleet/mydb set-op mixing are
  // all plan-time refusals.
  EXPECT_EQ(PlanFor("SELECT * FROM mydb.nope", WithResolver())
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(PlanFor("SELECT * FROM mydb.bright").ok());
  EXPECT_FALSE(PlanFor("SELECT obj_id FROM mydb.bright UNION "
                       "SELECT obj_id FROM photo",
                       WithResolver())
                   .ok());
  EXPECT_FALSE(PlanFor("SELECT nonsense FROM mydb.bright",
                       WithResolver())
                   .ok());
}

TEST_F(MyDbPlanTest, MyDbSetQueryOverOnePersonalStoreIsAllowed) {
  auto plan = PlanFor("SELECT obj_id FROM mydb.bright WHERE r < 19 UNION "
                      "SELECT obj_id FROM mydb.bright WHERE r > 21",
                      WithResolver());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->type, PlanNodeType::kUnion);
}

TEST_F(PlanTest, TagAutoSelectionRequiresTagPartition) {
  catalog::StoreOptions so;
  so.build_tags = false;
  ObjectStore tagless(so);
  SkyModel m;
  m.seed = 62;
  m.num_galaxies = 200;
  m.num_stars = 100;
  m.num_quasars = 5;
  ASSERT_TRUE(tagless.BulkLoad(SkyGenerator(m).Generate()).ok());

  auto parsed = Parse("SELECT obj_id, r FROM photo WHERE r < 20");
  ASSERT_TRUE(parsed.ok());
  auto plan = BuildPlan(*parsed, tagless, PlannerOptions{});
  ASSERT_TRUE(plan.ok());
  // All referenced attributes live in the tag, but the store has no tag
  // partition: the rewrite would scan nothing, so it must not fire.
  EXPECT_FALSE(plan->used_tag_store);
  EXPECT_EQ(plan->root->table, TableRef::kPhoto);
}

}  // namespace
}  // namespace sdss::query
