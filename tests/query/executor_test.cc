// Executor-level tests: the RowChannel primitive, error propagation from
// inside running plans, cancellation robustness, and batch behaviour.

#include "query/executor.h"

#include <gtest/gtest.h>

#include <thread>

#include "catalog/sky_generator.h"
#include "query/query_engine.h"

namespace sdss::query {
namespace {

using catalog::ObjectStore;
using catalog::SkyGenerator;
using catalog::SkyModel;

// --- RowChannel -------------------------------------------------------

RowBatch OneRow(uint64_t id) {
  ResultRow r;
  r.obj_id = id;
  return {r};
}

TEST(RowChannelTest, PushPopInOrder) {
  RowChannel ch;
  ch.AddWriter();
  EXPECT_TRUE(ch.Push(OneRow(1)));
  EXPECT_TRUE(ch.Push(OneRow(2)));
  ch.CloseWriter();
  RowBatch b;
  ASSERT_TRUE(ch.Pop(&b));
  EXPECT_EQ(b[0].obj_id, 1u);
  ASSERT_TRUE(ch.Pop(&b));
  EXPECT_EQ(b[0].obj_id, 2u);
  EXPECT_FALSE(ch.Pop(&b));  // End of stream.
}

TEST(RowChannelTest, PopBlocksUntilPush) {
  RowChannel ch;
  ch.AddWriter();
  std::thread producer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Push(OneRow(7));
    ch.CloseWriter();
  });
  RowBatch b;
  ASSERT_TRUE(ch.Pop(&b));  // Blocks until the producer delivers.
  EXPECT_EQ(b[0].obj_id, 7u);
  producer.join();
}

TEST(RowChannelTest, CancelUnblocksProducerAndConsumer) {
  RowChannel ch(/*max_batches=*/1);
  ch.AddWriter();
  ASSERT_TRUE(ch.Push(OneRow(1)));  // Fills the channel.
  std::thread producer([&ch] {
    // This push blocks on the full channel until cancellation.
    EXPECT_FALSE(ch.Push(OneRow(2)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.Cancel();
  producer.join();
  RowBatch b;
  EXPECT_FALSE(ch.Pop(&b));
  EXPECT_TRUE(ch.cancelled());
}

TEST(RowChannelTest, MultipleWritersEofAfterLastClose) {
  RowChannel ch;
  ch.AddWriter();
  ch.AddWriter();
  ch.Push(OneRow(1));
  ch.CloseWriter();
  ch.Push(OneRow(2));
  ch.CloseWriter();
  RowBatch b;
  EXPECT_TRUE(ch.Pop(&b));
  EXPECT_TRUE(ch.Pop(&b));
  EXPECT_FALSE(ch.Pop(&b));
}

// --- Error propagation through running plans --------------------------

class ExecutorErrorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SkyModel m;
    m.seed = 71;
    m.num_galaxies = 2000;
    m.num_stars = 1000;
    m.num_quasars = 50;
    store_ = new ObjectStore();
    ASSERT_TRUE(store_->BulkLoad(SkyGenerator(m).Generate()).ok());
  }
  static void TearDownTestSuite() {
    delete store_;
    store_ = nullptr;
  }
  static ObjectStore* store_;
};

ObjectStore* ExecutorErrorTest::store_ = nullptr;

TEST_F(ExecutorErrorTest, RuntimeDivisionByZeroSurfacesAndTerminates) {
  QueryEngine engine(store_);
  // (r - r) is zero for every row: the first evaluated row errors.
  auto r = engine.Execute(
      "SELECT obj_id FROM photo WHERE 1 / (r - r) > 0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("division by zero"),
            std::string::npos);
}

TEST_F(ExecutorErrorTest, ErrorInsideSetOperationPropagates) {
  QueryEngine engine(store_);
  auto r = engine.Execute(
      "SELECT obj_id FROM photo WHERE r < 20 "
      "INTERSECT SELECT obj_id FROM photo WHERE 1 / (g - g) > 0");
  ASSERT_FALSE(r.ok());
}

TEST_F(ExecutorErrorTest, EngineIsReusableAfterError) {
  QueryEngine engine(store_);
  ASSERT_FALSE(
      engine.Execute("SELECT obj_id FROM photo WHERE 1 / (r - r) > 0")
          .ok());
  auto ok = engine.Execute("SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->aggregate_value,
            static_cast<double>(store_->object_count()));
}

TEST_F(ExecutorErrorTest, EmptyResultQueriesComplete) {
  QueryEngine engine(store_);
  auto r = engine.Execute("SELECT obj_id FROM photo WHERE r < 0");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  // Aggregates over empty inputs are well-defined.
  auto c = engine.Execute("SELECT COUNT(*) FROM photo WHERE r < 0");
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->aggregate_value, 0.0);
  auto mn = engine.Execute("SELECT MIN(r) FROM photo WHERE r < 0");
  ASSERT_TRUE(mn.ok());
  EXPECT_DOUBLE_EQ(mn->aggregate_value, 0.0);
}

TEST_F(ExecutorErrorTest, LimitZeroReturnsNothing) {
  QueryEngine engine(store_);
  auto r = engine.Execute("SELECT obj_id FROM photo LIMIT 0");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(ExecutorErrorTest, RepeatedCancellationIsStable) {
  QueryEngine engine(store_);
  for (int i = 0; i < 20; ++i) {
    auto stats = engine.ExecuteStreaming(
        "SELECT obj_id FROM photo",
        [](const RowBatch&) { return false; });  // Cancel immediately.
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(stats->cancelled_early);
  }
}

TEST_F(ExecutorErrorTest, ConcurrentQueriesOnOneStore) {
  // The store is read-only during queries; engines on separate threads
  // must not interfere.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &failures] {
      QueryEngine engine(store_);
      for (int i = 0; i < 5; ++i) {
        auto r = engine.Execute("SELECT COUNT(*) FROM photo WHERE r < 20");
        if (!r.ok() ||
            r->aggregate_value < 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ExecutorErrorTest, TinyBatchSizeStillExact) {
  QueryEngine::Options opt;
  opt.executor.batch_size = 1;
  QueryEngine tiny(store_, opt);
  QueryEngine normal(store_);
  auto a = tiny.Execute("SELECT obj_id FROM photo WHERE r < 18");
  auto b = normal.Execute("SELECT obj_id FROM photo WHERE r < 18");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows.size(), b->rows.size());
}

TEST_F(ExecutorErrorTest, SingleScanThreadWorks) {
  QueryEngine::Options opt;
  opt.executor.scan_threads = 1;
  QueryEngine engine(store_, opt);
  auto r = engine.Execute("SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->aggregate_value, static_cast<double>(store_->object_count()));
}

}  // namespace
}  // namespace sdss::query
