// Property sweeps: for randomized magnitude/color/spatial predicates, the
// engine's answer must equal brute-force evaluation over the catalog, for
// every combination of (tag vs full store) x (index on/off).

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "catalog/sky_generator.h"
#include "core/random.h"
#include "query/query_engine.h"

namespace sdss::query {
namespace {

using catalog::ObjectStore;
using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SkyModel;

struct Config {
  bool auto_tag;
  bool use_index;
};

class QueryPropertyTest : public ::testing::TestWithParam<Config> {
 protected:
  static void SetUpTestSuite() {
    SkyModel m;
    m.seed = 23;
    m.num_galaxies = 4000;
    m.num_stars = 3000;
    m.num_quasars = 100;
    objects_ = new std::vector<PhotoObj>(SkyGenerator(m).Generate());
    store_ = new ObjectStore();
    ASSERT_TRUE(store_->BulkLoad(*objects_).ok());
  }
  static void TearDownTestSuite() {
    delete store_;
    delete objects_;
    store_ = nullptr;
    objects_ = nullptr;
  }

  static std::vector<PhotoObj>* objects_;
  static ObjectStore* store_;
};

std::vector<PhotoObj>* QueryPropertyTest::objects_ = nullptr;
ObjectStore* QueryPropertyTest::store_ = nullptr;

TEST_P(QueryPropertyTest, RandomPredicatesMatchBruteForce) {
  Config cfg = GetParam();
  QueryEngine::Options opt;
  opt.planner.auto_tag_selection = cfg.auto_tag;
  opt.planner.use_spatial_index = cfg.use_index;
  QueryEngine engine(store_, opt);

  Rng rng(404 + (cfg.auto_tag ? 1 : 0) + (cfg.use_index ? 2 : 0));
  for (int trial = 0; trial < 12; ++trial) {
    double r_cut = rng.Uniform(15.0, 23.0);
    double color_cut = rng.Uniform(-0.2, 1.2);
    double ra = rng.Uniform(0, 360);
    double dec = rng.Uniform(15, 80);  // Near/off footprint mix.
    double radius = rng.Uniform(1.0, 25.0);

    char sql[256];
    std::snprintf(sql, sizeof(sql),
                  "SELECT obj_id FROM photo WHERE r < %.4f AND g - r > %.4f "
                  "AND CIRCLE(%.4f, %.4f, %.4f)",
                  r_cut, color_cut, ra, dec, radius);
    auto result = engine.Execute(sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;

    htm::Region region = htm::Region::Circle(ra, dec, radius);
    std::set<uint64_t> expected;
    for (const auto& o : *objects_) {
      if (o.mag[2] < r_cut && (o.mag[1] - o.mag[2]) > color_cut &&
          region.Contains(o.pos)) {
        expected.insert(o.obj_id);
      }
    }
    std::set<uint64_t> got;
    for (const auto& row : result->rows) got.insert(row.obj_id);
    ASSERT_EQ(got, expected) << sql;
  }
}

TEST_P(QueryPropertyTest, CountAggregatesAgreeWithRowCounts) {
  Config cfg = GetParam();
  QueryEngine::Options opt;
  opt.planner.auto_tag_selection = cfg.auto_tag;
  opt.planner.use_spatial_index = cfg.use_index;
  QueryEngine engine(store_, opt);

  Rng rng(505);
  for (int trial = 0; trial < 6; ++trial) {
    double cut = rng.Uniform(16.0, 22.0);
    char rows_sql[128], count_sql[128];
    std::snprintf(rows_sql, sizeof(rows_sql),
                  "SELECT obj_id FROM photo WHERE r < %.4f", cut);
    std::snprintf(count_sql, sizeof(count_sql),
                  "SELECT COUNT(*) FROM photo WHERE r < %.4f", cut);
    auto rows = engine.Execute(rows_sql);
    auto count = engine.Execute(count_sql);
    ASSERT_TRUE(rows.ok() && count.ok());
    EXPECT_DOUBLE_EQ(count->aggregate_value,
                     static_cast<double>(rows->rows.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, QueryPropertyTest,
    ::testing::Values(Config{true, true}, Config{true, false},
                      Config{false, true}, Config{false, false}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return std::string(info.param.auto_tag ? "Tag" : "Full") +
             (info.param.use_index ? "Indexed" : "NoIndex");
    });

}  // namespace
}  // namespace sdss::query
