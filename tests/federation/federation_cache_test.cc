// Semantic result cache at the federation layer: cached reruns must be
// indistinguishable from cold fleet runs across fleet sizes, containment
// answers must match real fan-outs, epoch bumps must invalidate
// mid-stream, and failover must keep the cache warm when the engine is
// wired to the fleet-wide epoch.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/sharded_store.h"
#include "federation/federation_test_util.h"
#include "query/federated_engine.h"

namespace sdss::federation_test {
namespace {

using archive::ReplicationOptions;
using archive::ShardedStore;
using query::FederatedQueryEngine;

FederatedQueryEngine::Options CacheOptions(ShardedStore* sharded) {
  FederatedQueryEngine::Options opt;
  opt.result_cache_bytes = 32u << 20;
  if (sharded != nullptr) {
    opt.cache_epoch_source = [sharded] { return sharded->Epoch(); };
  }
  return opt;
}

TEST(FederationCacheTest, CachedRerunsMatchColdFleetsAcrossSizes) {
  auto store = MakeSky(730, 2500, 2000, 60);
  for (size_t servers : {size_t{1}, size_t{3}, size_t{8}}) {
    SCOPED_TRACE("servers=" + std::to_string(servers));
    ReplicationOptions repl;
    repl.num_servers = servers;
    repl.base_replicas = servers >= 2 ? 2 : 1;
    ShardedStore sharded(store, repl);
    auto shards = sharded.LiveShards();
    ASSERT_TRUE(shards.ok());
    FederatedQueryEngine cold(*shards);
    FederatedQueryEngine cached(*shards, CacheOptions(&sharded));

    for (const TestQuery& q : MixedQueries()) {
      auto base = cold.Execute(q.sql);
      ASSERT_TRUE(base.ok()) << q.sql << ": " << base.status().ToString();
      auto first = cached.Execute(q.sql);
      ASSERT_TRUE(first.ok()) << q.sql;
      auto second = cached.Execute(q.sql);
      ASSERT_TRUE(second.ok()) << q.sql;
      EXPECT_FALSE(first->exec.cache_hit) << q.sql;
      ExpectEquivalent(*base, *first, q.mode, q.sql + " (cold cache)");
      ExpectEquivalent(*base, *second, q.mode, q.sql + " (warm cache)");
    }
    auto* cache = cached.result_cache();
    ASSERT_NE(cache, nullptr);
    query::ResultCache::Stats stats = cache->stats();
    EXPECT_GT(stats.installs, 0u);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_EQ(stats.epoch_invalidations, 0u);
  }
}

TEST(FederationCacheTest, SecondRunIsServedVerbatimFromTheCache) {
  auto store = MakeSky(731, 1500, 1200, 40);
  ReplicationOptions repl;
  repl.num_servers = 3;
  repl.base_replicas = 2;
  ShardedStore sharded(store, repl);
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine fed(*shards, CacheOptions(&sharded));

  const std::string sql =
      "SELECT obj_id, r FROM photo WHERE r < 20.5 ORDER BY r LIMIT 40";
  auto first = fed.Execute(sql);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->exec.cache_hit);
  EXPECT_GT(first->exec.containers_scanned, 0u);
  auto second = fed.Execute(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->exec.cache_hit);
  EXPECT_FALSE(second->exec.cache_containment);
  // A cache hit scans NOTHING -- that is the point.
  EXPECT_EQ(second->exec.containers_scanned, 0u);
  ASSERT_EQ(first->rows.size(), second->rows.size());
  for (size_t i = 0; i < first->rows.size(); ++i) {
    EXPECT_EQ(first->rows[i].obj_id, second->rows[i].obj_id);
    EXPECT_EQ(first->rows[i].values, second->rows[i].values);
  }

  // The opt-out context forces a real fan-out and installs nothing.
  query::ExecContext ctx;
  ctx.no_result_cache = true;
  auto opted_out = fed.Execute(sql, ctx);
  ASSERT_TRUE(opted_out.ok());
  EXPECT_FALSE(opted_out->exec.cache_hit);
  EXPECT_GT(opted_out->exec.containers_scanned, 0u);
}

TEST(FederationCacheTest, ContainmentAnswersMatchRealFanOut) {
  auto store = MakeSky(732, 2000, 1600, 50);
  ReplicationOptions repl;
  repl.num_servers = 3;
  repl.base_replicas = 2;
  ShardedStore sharded(store, repl);
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine cold(*shards);
  FederatedQueryEngine cached(*shards, CacheOptions(&sharded));

  // Warm the cache with a wide cone carrying every attribute the
  // narrower probes need.
  auto wide = cached.Execute(
      "SELECT obj_id, u, g, r FROM photo WHERE CIRCLE('GAL', 30, 70, 10)");
  ASSERT_TRUE(wide.ok());

  const std::vector<TestQuery> probes = {
      {"SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 5) "
       "AND r < 21",
       CompareMode::kMultiset},
      {"SELECT obj_id, g FROM photo WHERE CIRCLE('GAL', 30, 70, 4) "
       "ORDER BY g LIMIT 15",
       CompareMode::kOrdered},
      {"SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 6)",
       CompareMode::kAggregate},
      {"SELECT MIN(r) FROM photo WHERE CIRCLE('GAL', 30, 70, 5) "
       "AND g < 22",
       CompareMode::kAggregate},
  };
  for (const TestQuery& q : probes) {
    auto base = cold.Execute(q.sql);
    ASSERT_TRUE(base.ok()) << q.sql;
    auto served = cached.Execute(q.sql);
    ASSERT_TRUE(served.ok()) << q.sql;
    EXPECT_TRUE(served->exec.cache_containment) << q.sql;
    EXPECT_EQ(served->exec.containers_scanned, 0u) << q.sql;
    ExpectEquivalent(*base, *served, q.mode, q.sql + " (containment)");
  }
  query::ResultCache::Stats stats = cached.result_cache()->stats();
  EXPECT_EQ(stats.containment_hits, probes.size());
}

TEST(FederationCacheTest, EpochBumpInvalidatesMidStream) {
  catalog::ObjectStore store = MakeSky(733, 1200, 900, 30);
  std::vector<query::Shard> shards;
  shards.push_back({0, &store, nullptr});
  FederatedQueryEngine fed(shards, CacheOptions(nullptr));

  const std::string sql = "SELECT COUNT(*) FROM photo";
  auto before = fed.Execute(sql);
  ASSERT_TRUE(before.ok());
  auto warm = fed.Execute(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->exec.cache_hit);
  EXPECT_EQ(warm->aggregate_value, before->aggregate_value);

  // Any mutation bumps the store epoch; the cached count is now a lie
  // and must never be served again.
  catalog::PhotoObj extra = store.containers().begin()->second.rows()[0];
  extra.obj_id = 77'777'777;
  ASSERT_TRUE(store.Insert(extra).ok());

  auto after = fed.Execute(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->exec.cache_hit);
  EXPECT_EQ(after->aggregate_value, before->aggregate_value + 1);
  EXPECT_GE(fed.result_cache()->stats().epoch_invalidations, 1u);

  // The fresh answer re-installed under the new epoch: warm again.
  auto rewarmed = fed.Execute(sql);
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_TRUE(rewarmed->exec.cache_hit);
  EXPECT_EQ(rewarmed->aggregate_value, after->aggregate_value);
}

TEST(FederationCacheTest, FailoverKeepsTheCacheWarm) {
  auto store = MakeSky(734, 1500, 1200, 40);
  ReplicationOptions repl;
  repl.num_servers = 4;
  repl.base_replicas = 2;
  ShardedStore sharded(store, repl);
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  // Wired to the fleet-wide epoch: failover changes routing, not data,
  // so cached answers stay valid across it.
  FederatedQueryEngine fed(*shards, CacheOptions(&sharded));

  const std::string sql = "SELECT obj_id, r FROM photo WHERE r < 20";
  auto cold = fed.Execute(sql);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->exec.cache_hit);

  ASSERT_TRUE(sharded.MarkServerDown(0).ok());
  auto rerouted = sharded.LiveShards();
  ASSERT_TRUE(rerouted.ok());
  fed.SetShards(*rerouted);

  auto warm = fed.Execute(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->exec.cache_hit);
  EXPECT_EQ(Normalize(*cold), Normalize(*warm));
}

TEST(FederationCacheTest, PredictedHitsPriceAtZeroBytes) {
  auto store = MakeSky(735, 1500, 1200, 40);
  ReplicationOptions repl;
  repl.num_servers = 3;
  repl.base_replicas = 2;
  ShardedStore sharded(store, repl);
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine fed(*shards, CacheOptions(&sharded));

  const std::string sql = "SELECT obj_id, r FROM photo WHERE r < 21";
  auto cold_cost = fed.EstimateCost(sql);
  ASSERT_TRUE(cold_cost.ok());
  EXPECT_FALSE(cold_cost->predicted_cache_hit);
  EXPECT_GT(cold_cost->TotalBytes(), 0u);

  ASSERT_TRUE(fed.Execute(sql).ok());
  auto warm_cost = fed.EstimateCost(sql);
  ASSERT_TRUE(warm_cost.ok());
  EXPECT_TRUE(warm_cost->predicted_cache_hit);
  EXPECT_EQ(warm_cost->TotalBytes(), 0u);

  // The probe is non-mutating: it must not have counted as a hit.
  EXPECT_EQ(fed.result_cache()->stats().hits, 0u);
}

}  // namespace
}  // namespace sdss::federation_test
