// Concurrency stress: 8 client threads fire mixed queries at ONE shared
// FederatedQueryEngine (shared scan pool, interleaved fan-outs, streaming
// cancellations). Each thread validates its own answers against
// precomputed single-store ground truth. Run under ThreadSanitizer in CI.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "archive/sharded_store.h"
#include "federation/federation_test_util.h"
#include "query/federated_engine.h"

namespace sdss::federation_test {
namespace {

using archive::ReplicationOptions;
using archive::ShardedStore;
using query::FederatedQueryEngine;
using query::QueryEngine;

constexpr int kThreads = 8;
constexpr int kIterations = 8;

TEST(FederationStressTest, EightThreadsMixedQueriesOneEngine) {
  auto store = MakeSky(808, 2000, 1500, 50);
  QueryEngine single(&store);

  ReplicationOptions repl;
  repl.num_servers = 4;
  repl.base_replicas = 2;
  ShardedStore sharded(store, repl);
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine fed(*shards);

  const auto queries = MixedQueries();
  std::vector<query::QueryResult> expected;
  for (const TestQuery& q : queries) {
    auto r = single.Execute(q.sql);
    ASSERT_TRUE(r.ok()) << q.sql << ": " << r.status().ToString();
    expected.push_back(std::move(*r));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([&, tid] {
      for (int i = 0; i < kIterations; ++i) {
        size_t qi = static_cast<size_t>(tid * 7 + i * 3) % queries.size();
        if (i % 4 == 3) {
          // Streaming with mid-stream cancellation: exercises the
          // fan-out teardown path under contention.
          uint64_t seen = 0;
          auto st = fed.ExecuteStreaming(
              "SELECT obj_id, r FROM photo WHERE r < 23",
              [&seen](const query::RowBatch& batch) {
                seen += batch.size();
                return seen < 128;
              });
          if (!st.ok()) failures.fetch_add(1);
          continue;
        }
        auto got = fed.Execute(queries[qi].sql);
        if (!got.ok()) {
          ADD_FAILURE() << queries[qi].sql << " [thread " << tid
                        << "]: " << got.status().ToString();
          failures.fetch_add(1);
          continue;
        }
        ExpectEquivalent(expected[qi], *got, queries[qi].mode,
                         queries[qi].sql + " [thread " +
                             std::to_string(tid) + "]");
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(FederationStressTest, ConcurrentQueriesAcrossFailover) {
  // Half the clients query while the other half flip routing between
  // the full fleet and a degraded one; every answer must come from a
  // consistent snapshot (all containers exactly once).
  auto store = MakeSky(809, 1500, 1200, 40);
  QueryEngine single(&store);
  auto expect = single.Execute("SELECT COUNT(*) FROM photo WHERE r < 22");
  ASSERT_TRUE(expect.ok());

  ReplicationOptions repl;
  repl.num_servers = 4;
  repl.base_replicas = 2;
  ShardedStore sharded(store, repl);
  auto full = sharded.LiveShards();
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sharded.MarkServerDown(1).ok());
  auto degraded = sharded.LiveShards();
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(sharded.MarkServerUp(1).ok());
  FederatedQueryEngine fed(*full);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([&, tid] {
      for (int i = 0; i < kIterations; ++i) {
        if (tid % 2 == 0) {
          fed.SetShards(i % 2 == 0 ? *degraded : *full);
        }
        auto got = fed.Execute("SELECT COUNT(*) FROM photo WHERE r < 22");
        if (!got.ok() ||
            got->aggregate_value != expect->aggregate_value) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace sdss::federation_test
