// Shared fixtures for the federation suite: canonical skies, the mixed
// query list every test draws from, and result-equivalence checks
// (single-store QueryEngine is the ground truth the federated engine
// must match).

#ifndef SDSS_TESTS_FEDERATION_FEDERATION_TEST_UTIL_H_
#define SDSS_TESTS_FEDERATION_FEDERATION_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "catalog/object_store.h"
#include "catalog/sky_generator.h"
#include "query/query_engine.h"

namespace sdss::federation_test {

inline catalog::ObjectStore MakeSky(uint64_t seed, uint64_t galaxies,
                                    uint64_t stars, uint64_t quasars) {
  catalog::SkyModel m;
  m.seed = seed;
  m.num_galaxies = galaxies;
  m.num_stars = stars;
  m.num_quasars = quasars;
  catalog::ObjectStore store;
  EXPECT_TRUE(
      store.BulkLoad(catalog::SkyGenerator(m).Generate()).ok());
  return store;
}

/// How a query's federated result is compared against single-store.
enum class CompareMode {
  kMultiset,    ///< Row bags equal (order-free).
  kOrdered,     ///< Exact row sequence (deterministic ORDER BY).
  kLimitCount,  ///< LIMIT without ORDER: row counts equal.
  kAggregate,   ///< Aggregate values equal to 1e-9 relative.
};

struct TestQuery {
  std::string sql;
  CompareMode mode = CompareMode::kMultiset;
};

/// The mixed query list: spans plain scans, tag-store selection, spatial
/// pruning, ORDER/LIMIT merging, every aggregate (decomposed partials
/// and the LIMIT-capped fold), set operations (shard-local and the
/// branch-limit federation-level path), and NOT predicates.
inline std::vector<TestQuery> MixedQueries() {
  using M = CompareMode;
  return {
      {"SELECT obj_id, r FROM photo WHERE r < 20.5", M::kMultiset},
      {"SELECT * FROM tag WHERE r < 19", M::kMultiset},
      {"SELECT obj_id, g, r FROM photo WHERE g - r < 0.8 AND r < 21",
       M::kMultiset},
      {"SELECT obj_id FROM photo WHERE class = 'QSO'", M::kMultiset},
      {"SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 8)",
       M::kMultiset},
      {"SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 120, 55, 10) "
       "AND r < 21.5",
       M::kMultiset},
      {"SELECT obj_id FROM photo WHERE RECT(170, 210, 20, 50) AND "
       "class = 'GALAXY'",
       M::kMultiset},
      {"SELECT obj_id, r FROM photo WHERE BAND('GAL', 45, 65) AND r < 22",
       M::kMultiset},
      {"SELECT obj_id, u, z FROM photo WHERE u - g > 0.4 AND "
       "NOT (class = 'STAR')",
       M::kMultiset},
      {"SELECT obj_id, r FROM photo WHERE r < 21 ORDER BY r LIMIT 50",
       M::kOrdered},
      {"SELECT obj_id, r FROM photo WHERE r < 22 ORDER BY r DESC LIMIT 25",
       M::kOrdered},
      {"SELECT obj_id, g FROM photo WHERE class = 'STAR' AND g < 21 "
       "ORDER BY g",
       M::kOrdered},
      {"SELECT obj_id, r FROM tag WHERE r < 20 ORDER BY r LIMIT 40",
       M::kOrdered},
      {"SELECT obj_id, dec FROM photo WHERE CIRCLE('GAL', 30, 70, 10) "
       "ORDER BY dec DESC LIMIT 30",
       M::kOrdered},
      {"SELECT obj_id FROM photo WHERE r < 21 LIMIT 100", M::kLimitCount},
      {"SELECT obj_id FROM tag WHERE g < 22 LIMIT 64", M::kLimitCount},
      {"SELECT COUNT(*) FROM photo", M::kAggregate},
      {"SELECT COUNT(*) FROM photo WHERE r < 21", M::kAggregate},
      {"SELECT SUM(r) FROM photo WHERE r < 22", M::kAggregate},
      {"SELECT AVG(g) FROM photo WHERE class = 'GALAXY'", M::kAggregate},
      {"SELECT MIN(r) FROM photo", M::kAggregate},
      {"SELECT MAX(z) FROM photo WHERE class = 'STAR'", M::kAggregate},
      {"SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 0, 60, 12)",
       M::kAggregate},
      {"SELECT AVG(r) FROM tag WHERE g - r < 1.0", M::kAggregate},
      {"SELECT MIN(g) FROM photo WHERE CIRCLE('GAL', 300, 50, 15)",
       M::kAggregate},
      {"SELECT COUNT(*) FROM photo WHERE r < 21 LIMIT 50", M::kAggregate},
      {"SELECT obj_id, r FROM photo WHERE class = 'QSO' UNION "
       "SELECT obj_id, r FROM photo WHERE r < 18.5",
       M::kMultiset},
      {"SELECT obj_id, r FROM photo WHERE r < 21 INTERSECT "
       "SELECT obj_id, r FROM photo WHERE g - r < 0.6",
       M::kMultiset},
      {"SELECT obj_id, r FROM photo WHERE r < 20 EXCEPT "
       "SELECT obj_id, r FROM photo WHERE class = 'STAR'",
       M::kMultiset},
      {"SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 40, 70, 6) UNION "
       "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 220, 70, 6)",
       M::kMultiset},
      {"SELECT obj_id, r FROM photo WHERE r < 21 ORDER BY r LIMIT 30 "
       "UNION SELECT obj_id, r FROM photo WHERE class = 'QSO'",
       M::kMultiset},
      {"SELECT obj_id, r FROM photo WHERE r < 22 ORDER BY r LIMIT 200 "
       "INTERSECT SELECT obj_id, r FROM photo WHERE class = 'GALAXY'",
       M::kMultiset},
      {"SELECT SUM(r) FROM photo WHERE r < 21 EXCEPT "
       "SELECT r FROM photo WHERE class = 'STAR'",
       M::kAggregate},
      // Aggregate over a set query with a branch LIMIT: the branch must
      // run as a plain (globally ordered+limited) select -- no per-shard
      // or per-branch aggregate node -- before the outer fold.
      {"SELECT SUM(r) FROM photo WHERE r < 21 ORDER BY r LIMIT 10 "
       "EXCEPT SELECT r FROM photo WHERE class = 'STAR'",
       M::kAggregate},
  };
}

using NormalizedRows = std::vector<std::pair<uint64_t, std::vector<double>>>;

inline NormalizedRows Normalize(const query::QueryResult& r) {
  NormalizedRows rows;
  rows.reserve(r.rows.size());
  for (const auto& row : r.rows) rows.emplace_back(row.obj_id, row.values);
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Asserts the federated result matches the single-store ground truth
/// under `mode`. `context` names the failing query in gtest output.
inline void ExpectEquivalent(const query::QueryResult& single,
                             const query::QueryResult& fed,
                             CompareMode mode, const std::string& context) {
  SCOPED_TRACE(context);
  switch (mode) {
    case CompareMode::kMultiset:
      EXPECT_EQ(Normalize(single), Normalize(fed));
      break;
    case CompareMode::kOrdered: {
      ASSERT_EQ(single.rows.size(), fed.rows.size());
      for (size_t i = 0; i < single.rows.size(); ++i) {
        EXPECT_EQ(single.rows[i].obj_id, fed.rows[i].obj_id) << "row " << i;
        EXPECT_EQ(single.rows[i].values, fed.rows[i].values) << "row " << i;
      }
      break;
    }
    case CompareMode::kLimitCount:
      EXPECT_EQ(single.rows.size(), fed.rows.size());
      break;
    case CompareMode::kAggregate: {
      EXPECT_TRUE(single.is_aggregate);
      EXPECT_TRUE(fed.is_aggregate);
      double tol =
          1e-9 * std::max(1.0, std::fabs(single.aggregate_value));
      EXPECT_NEAR(single.aggregate_value, fed.aggregate_value, tol);
      break;
    }
  }
}

}  // namespace sdss::federation_test

#endif  // SDSS_TESTS_FEDERATION_FEDERATION_TEST_UTIL_H_
