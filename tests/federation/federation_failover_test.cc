// Failover: with base_replicas = 2, killing any single server re-routes
// its containers to surviving replicas -- results stay identical and
// containers_scanned stays constant. With base_replicas = 1 a dead
// server means lost containers: a clean error, never a crash or a
// silent partial result.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/sharded_store.h"
#include "federation/federation_test_util.h"
#include "query/federated_engine.h"

namespace sdss::federation_test {
namespace {

using archive::ReplicationOptions;
using archive::ShardedStore;
using query::FederatedQueryEngine;
using query::QueryEngine;

// Uncapped queries only: LIMIT cancels scans at a timing-dependent
// point, which would make the containers_scanned assertion flaky.
std::vector<TestQuery> FailoverQueries() {
  std::vector<TestQuery> out;
  for (const TestQuery& q : MixedQueries()) {
    if (q.sql.find("LIMIT") == std::string::npos) out.push_back(q);
  }
  return out;
}

TEST(FederationFailoverTest, EachServerDownKeepsResultsIdentical) {
  auto store = MakeSky(710, 2500, 2000, 60);
  constexpr size_t kServers = 4;
  ReplicationOptions repl;
  repl.num_servers = kServers;
  repl.base_replicas = 2;
  ShardedStore sharded(store, repl);

  auto baseline_shards = sharded.LiveShards();
  ASSERT_TRUE(baseline_shards.ok());
  FederatedQueryEngine fed(*baseline_shards);

  const auto queries = FailoverQueries();
  std::vector<query::QueryResult> baseline;
  for (const TestQuery& q : queries) {
    auto r = fed.Execute(q.sql);
    ASSERT_TRUE(r.ok()) << q.sql << ": " << r.status().ToString();
    baseline.push_back(std::move(*r));
  }

  for (size_t victim = 0; victim < kServers; ++victim) {
    ASSERT_TRUE(sharded.MarkServerDown(victim).ok());
    auto rerouted = sharded.LiveShards();
    ASSERT_TRUE(rerouted.ok())
        << "victim " << victim << ": " << rerouted.status().ToString();
    fed.SetShards(*rerouted);

    for (size_t i = 0; i < queries.size(); ++i) {
      auto r = fed.Execute(queries[i].sql);
      ASSERT_TRUE(r.ok()) << queries[i].sql << " with server " << victim
                          << " down: " << r.status().ToString();
      ExpectEquivalent(baseline[i], *r, queries[i].mode,
                       queries[i].sql + " with server " +
                           std::to_string(victim) + " down");
      EXPECT_EQ(baseline[i].exec.containers_scanned,
                r->exec.containers_scanned)
          << queries[i].sql << " with server " << victim << " down";
    }

    ASSERT_TRUE(sharded.MarkServerUp(victim).ok());
  }
}

TEST(FederationFailoverTest, UnreplicatedServerLossIsCleanError) {
  auto store = MakeSky(711, 1500, 1200, 40);
  constexpr size_t kServers = 4;
  ReplicationOptions repl;
  repl.num_servers = kServers;
  repl.base_replicas = 1;
  ShardedStore sharded(store, repl);

  for (size_t victim = 0; victim < kServers; ++victim) {
    // Only servers that actually hold containers lose data.
    if (sharded.server_store(victim).container_count() == 0) continue;
    ASSERT_TRUE(sharded.MarkServerDown(victim).ok());
    auto shards = sharded.LiveShards();
    EXPECT_FALSE(shards.ok())
        << "server " << victim
        << " held unreplicated containers; routing must refuse";
    ASSERT_TRUE(sharded.MarkServerUp(victim).ok());
  }
}

TEST(FederationFailoverTest, DownedServerStoreStaysReadableForSnapshots) {
  // Queries running against a previously obtained LiveShards snapshot
  // keep working while the router is updated: shard stores are immutable
  // and owned by the ShardedStore.
  auto store = MakeSky(712, 1500, 1200, 40);
  ReplicationOptions repl;
  repl.num_servers = 3;
  repl.base_replicas = 2;
  ShardedStore sharded(store, repl);
  auto snapshot = sharded.LiveShards();
  ASSERT_TRUE(snapshot.ok());
  FederatedQueryEngine fed(*snapshot);

  auto before = fed.Execute("SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(sharded.MarkServerDown(0).ok());
  auto after = fed.Execute("SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->aggregate_value, after->aggregate_value);
}

}  // namespace
}  // namespace sdss::federation_test
