// The distributed neighbor join: for randomized skies and shard counts
// 1..8, the federated pair query must return exactly the single-store
// result (itself validated against brute force), with every cross-shard
// pair recovered through the boundary ghost exchange -- including with
// one server marked down -- and Explain must surface the kPairJoin plan
// plus per-shard scan/ship predictions.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "archive/sharded_store.h"
#include "core/angle.h"
#include "federation/federation_test_util.h"
#include "query/federated_engine.h"

namespace sdss::federation_test {
namespace {

using archive::ReplicationOptions;
using archive::ShardedStore;
using catalog::ObjectStore;
using catalog::PhotoObj;
using query::FederatedQueryEngine;
using query::QueryEngine;
using query::QueryResult;

// A clustered sky: tight clusters make plenty of in-radius pairs, and
// clusters landing near container boundaries exercise the ghost
// exchange.
ObjectStore MakeJoinSky(uint64_t seed) {
  catalog::SkyModel m;
  m.seed = seed;
  m.num_galaxies = 1600;
  m.num_stars = 500;
  m.num_quasars = 150;
  m.num_clusters = 10;
  m.cluster_fraction = 0.6;
  m.cluster_radius_deg = 0.05;
  ObjectStore store;
  EXPECT_TRUE(store.BulkLoad(catalog::SkyGenerator(m).Generate()).ok());
  return store;
}

// The C9 lens-candidate query: pairs within the radius with
// near-identical g-r color, reported with both ids and the separation.
std::string LensSql(double sep_arcsec) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "SELECT a.obj_id, b.obj_id, sep FROM photo AS a "
                "JOIN photo AS b WITHIN %g ARCSEC "
                "WHERE a.g - a.r - b.g + b.r < 0.05 AND "
                "b.g - b.r - a.g + a.r < 0.05",
                sep_arcsec);
  return buf;
}

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

PairSet ResultPairs(const QueryResult& r) {
  PairSet pairs;
  for (const auto& row : r.rows) {
    uint64_t a = static_cast<uint64_t>(row.values[0]);
    uint64_t b = static_cast<uint64_t>(row.values[1]);
    EXPECT_TRUE(pairs.emplace(std::min(a, b), std::max(a, b)).second)
        << "duplicate pair " << a << ", " << b;
  }
  return pairs;
}

PairSet BruteLensPairs(const ObjectStore& store, double sep_arcsec) {
  std::vector<const PhotoObj*> objs;
  store.ForEachObject([&objs](const PhotoObj& o) { objs.push_back(&o); });
  double cos_sep = std::cos(ArcsecToRad(sep_arcsec));
  PairSet pairs;
  for (size_t i = 0; i < objs.size(); ++i) {
    for (size_t j = i + 1; j < objs.size(); ++j) {
      const PhotoObj& a = *objs[i];
      const PhotoObj& b = *objs[j];
      if (a.pos.Dot(b.pos) < cos_sep) continue;
      double ag = a.mag[1], ar = a.mag[2], bg = b.mag[1], br = b.mag[2];
      if (((ag - ar) - bg) + br >= 0.05) continue;
      if (((bg - br) - ag) + ar >= 0.05) continue;
      pairs.emplace(std::min(a.obj_id, b.obj_id),
                    std::max(a.obj_id, b.obj_id));
    }
  }
  return pairs;
}

std::vector<query::Shard> FleetShards(ShardedStore* sharded,
                                      bool kill_server, size_t victim) {
  if (kill_server) {
    EXPECT_TRUE(sharded->MarkServerDown(victim).ok());
  }
  auto shards = sharded->LiveShards();
  EXPECT_TRUE(shards.ok()) << shards.status().ToString();
  return shards.ok() ? *shards : std::vector<query::Shard>{};
}

void RunJoinEquivalenceSweep(uint64_t seed, size_t servers,
                             size_t replicas, bool kill_server) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " servers " +
               std::to_string(servers) +
               (kill_server ? " one down" : ""));
  ObjectStore store = MakeJoinSky(seed);
  QueryEngine single(&store);
  ShardedStore sharded(store, {servers, replicas});
  FederatedQueryEngine fed(
      FleetShards(&sharded, kill_server, servers / 2));

  // The lens query: fed == single == brute force.
  const double sep = 120.0;
  auto expect = single.Execute(LensSql(sep));
  ASSERT_TRUE(expect.ok()) << expect.status().ToString();
  auto got = fed.Execute(LensSql(sep));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  PairSet brute = BruteLensPairs(store, sep);
  EXPECT_GT(brute.size(), 0u) << "sky produced no lens pairs";
  EXPECT_EQ(ResultPairs(*expect), brute);
  EXPECT_EQ(ResultPairs(*got), brute);
  // Pair rows are emitted exactly once fleet-wide (no dedupe losses, no
  // double counting).
  EXPECT_EQ(got->exec.objects_matched, expect->exec.objects_matched);
  if (fed.num_shards() > 1) {
    EXPECT_GT(got->exec.bytes_shipped, 0u)
        << "multi-shard join moved no boundary ghosts";
  } else {
    EXPECT_EQ(got->exec.bytes_shipped, 0u);
  }

  // Asymmetric roles (quasar + faint blue galaxy), compared as row
  // multisets against the single store.
  const std::string asym =
      "SELECT a.obj_id, b.obj_id, a.r, b.r FROM photo AS a "
      "JOIN photo AS b WITHIN 60 ARCSEC "
      "WHERE a.class = 'QSO' AND a.r < 22 AND "
      "b.class = 'GALAXY' AND b.g - b.r < 0.8";
  auto s_asym = single.Execute(asym);
  ASSERT_TRUE(s_asym.ok()) << s_asym.status().ToString();
  auto f_asym = fed.Execute(asym);
  ASSERT_TRUE(f_asym.ok()) << f_asym.status().ToString();
  ExpectEquivalent(*s_asym, *f_asym, CompareMode::kMultiset, asym);
  EXPECT_EQ(ResultPairs(*s_asym), ResultPairs(*f_asym));

  // Globally ordered and capped: exact row sequence.
  const std::string ordered =
      "SELECT a.obj_id, b.obj_id, sep FROM photo AS a JOIN photo AS b "
      "WITHIN 90 ARCSEC ORDER BY sep LIMIT 25";
  auto s_ord = single.Execute(ordered);
  ASSERT_TRUE(s_ord.ok()) << s_ord.status().ToString();
  auto f_ord = fed.Execute(ordered);
  ASSERT_TRUE(f_ord.ok()) << f_ord.status().ToString();
  ASSERT_EQ(s_ord->rows.size(), f_ord->rows.size());
  for (size_t i = 0; i < s_ord->rows.size(); ++i) {
    EXPECT_EQ(s_ord->rows[i].obj_id, f_ord->rows[i].obj_id) << "row " << i;
    EXPECT_EQ(s_ord->rows[i].obj_id_b, f_ord->rows[i].obj_id_b)
        << "row " << i;
    EXPECT_EQ(s_ord->rows[i].values, f_ord->rows[i].values) << "row " << i;
  }

  // Spatially pruned join: identical answers, and the fleet touches
  // exactly the single store's (pruned) container set.
  const std::string pruned =
      "SELECT a.obj_id, b.obj_id FROM photo AS a JOIN photo AS b "
      "WITHIN 90 ARCSEC WHERE CIRCLE('GAL', 30, 70, 25)";
  auto s_pr = single.Execute(pruned);
  ASSERT_TRUE(s_pr.ok()) << s_pr.status().ToString();
  auto f_pr = fed.Execute(pruned);
  ASSERT_TRUE(f_pr.ok()) << f_pr.status().ToString();
  ExpectEquivalent(*s_pr, *f_pr, CompareMode::kMultiset, pruned);
  EXPECT_EQ(s_pr->exec.containers_scanned, f_pr->exec.containers_scanned);
  EXPECT_LT(s_pr->exec.containers_scanned, store.container_count())
      << "spatial conjunct did not prune the join";

  // COUNT(*) over the join folds at the federation level.
  const std::string count_sql =
      "SELECT COUNT(*) FROM photo AS a JOIN photo AS b WITHIN 45 ARCSEC";
  auto s_cnt = single.Execute(count_sql);
  ASSERT_TRUE(s_cnt.ok()) << s_cnt.status().ToString();
  auto f_cnt = fed.Execute(count_sql);
  ASSERT_TRUE(f_cnt.ok()) << f_cnt.status().ToString();
  ExpectEquivalent(*s_cnt, *f_cnt, CompareMode::kAggregate, count_sql);
}

TEST(FederationJoinTest, TwoShardsMatchBruteForce) {
  RunJoinEquivalenceSweep(901, 2, 2, false);
}

TEST(FederationJoinTest, ThreeShardsMatchBruteForce) {
  RunJoinEquivalenceSweep(902, 3, 2, false);
}

TEST(FederationJoinTest, FiveShardsMatchBruteForce) {
  RunJoinEquivalenceSweep(903, 5, 2, false);
}

TEST(FederationJoinTest, EightShardsMatchBruteForce) {
  RunJoinEquivalenceSweep(904, 8, 2, false);
}

TEST(FederationJoinTest, SingleShardDegeneratesToSingleStore) {
  RunJoinEquivalenceSweep(905, 1, 1, false);
}

TEST(FederationJoinTest, OneServerDownStillExact) {
  RunJoinEquivalenceSweep(906, 5, 2, true);
}

TEST(FederationJoinTest, ExplainShowsPairJoinAndShipPredictions) {
  ObjectStore store = MakeJoinSky(907);
  ShardedStore sharded(store, {4, 2});
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine fed(*shards);

  auto explain = fed.Explain(LensSql(120.0));
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("PAIR_JOIN"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("buckets level"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("federation: 4 live shards"), std::string::npos)
      << *explain;
  EXPECT_NE(explain->find("shard 0:"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("ghost exchange:"), std::string::npos)
      << *explain;
  EXPECT_NE(explain->find("bytes shipped"), std::string::npos) << *explain;

  // Per-shard predictions carry the shipped-bytes estimate for joins.
  auto parsed = query::Parse(LensSql(120.0));
  ASSERT_TRUE(parsed.ok());
  auto plan = query::BuildPlan(*parsed, *shards->front().store);
  ASSERT_TRUE(plan.ok());
  auto preds = query::PredictShards(*shards, *plan);
  ASSERT_EQ(preds.size(), shards->size());
  for (const auto& p : preds) {
    EXPECT_GT(p.bytes_shipped, 0u) << "shard " << p.server;
    EXPECT_LE(p.bytes_shipped, p.bytes_to_scan) << "shard " << p.server;
  }
}

TEST(FederationJoinTest, StreamingJoinCanCancel) {
  ObjectStore store = MakeJoinSky(908);
  ShardedStore sharded(store, {3, 2});
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine fed(*shards);

  uint64_t seen = 0;
  auto stats = fed.ExecuteStreaming(
      "SELECT a.obj_id, b.obj_id FROM photo AS a JOIN photo AS b "
      "WITHIN 120 ARCSEC",
      [&seen](const query::RowBatch& batch) {
        seen += batch.size();
        return seen < 64;  // Cancel mid-stream.
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->cancelled_early);
  EXPECT_GE(seen, 64u);
}

}  // namespace
}  // namespace sdss::federation_test
