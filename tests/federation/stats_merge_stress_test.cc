// Concurrency audit of the stats pipeline: many threads run federated
// queries against ONE engine wired to ONE metrics registry, while a
// reader thread snapshots it. Under TSAN this is the race probe for
// the ExecStats merge (shard partials -> query totals) and the metrics
// instruments; in any build the conservation laws must hold exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "archive/sharded_store.h"
#include "core/metrics.h"
#include "federation/federation_test_util.h"
#include "query/federated_engine.h"

namespace sdss::query {
namespace {

using archive::ReplicationOptions;
using archive::ShardedStore;

TEST(StatsMergeStress, ConcurrentQueriesConserveCounts) {
  catalog::ObjectStore source =
      federation_test::MakeSky(4400, 6000, 5000, 150);
  ReplicationOptions repl;
  repl.num_servers = 3;
  repl.base_replicas = 1;
  ShardedStore sharded(source, repl);
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());

  metrics::Registry registry;
  FederatedQueryEngine::Options options;
  options.metrics = &registry;
  options.result_cache_bytes = 4u << 20;  // Exercise all three verdicts.
  FederatedQueryEngine engine(*shards, options);

  const std::vector<std::string> statements = {
      "SELECT obj_id, r FROM photo WHERE r < 20",
      "SELECT obj_id, r FROM photo WHERE r < 19.5",  // Contained in r<20.
      "SELECT COUNT(*) FROM photo WHERE class = 'QSO'",
      "SELECT obj_id FROM photo WHERE CIRCLE('GAL', 30, 70, 6)",
  };
  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;

  std::atomic<uint64_t> rows_delivered{0};
  std::atomic<uint64_t> runs_ok{0};
  std::atomic<bool> stop_reader{false};

  // A reader snapshotting mid-flight: under TSAN this is the
  // write-vs-snapshot probe; the values it sees only need to be sane.
  std::thread reader([&] {
    while (!stop_reader.load()) {
      auto snaps = registry.Snapshot();
      for (const auto& s : snaps) {
        if (s.kind == metrics::Kind::kHistogram) {
          uint64_t total = 0;
          for (const auto& [index, n] : s.hist.buckets) total += n;
          EXPECT_LE(total, s.hist.count + kThreads);
        }
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string& sql = statements[(t + i) % statements.size()];
        uint64_t rows = 0;
        auto stats = engine.ExecuteStreaming(
            sql, [&rows](const RowBatch& batch) {
              rows += batch.size();
              return true;
            });
        ASSERT_TRUE(stats.ok()) << sql;
        EXPECT_EQ(stats->rows_emitted, rows);
        rows_delivered.fetch_add(rows);
        runs_ok.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop_reader.store(true);
  reader.join();

  constexpr uint64_t kRuns = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(runs_ok.load(), kRuns);
  // Conservation: every run was counted once, latency was recorded
  // once, and the three cache verdicts partition the runs.
  EXPECT_EQ(registry.GetCounter("query_total")->Value(), kRuns);
  EXPECT_EQ(registry.GetHistogram("query_exec_us")->Count(), kRuns);
  const uint64_t hits = registry.GetCounter("query_cache_hits")->Value();
  const uint64_t containment =
      registry.GetCounter("query_cache_containment")->Value();
  const uint64_t misses =
      registry.GetCounter("query_cache_misses")->Value();
  EXPECT_EQ(hits + containment + misses, kRuns);
  EXPECT_GT(misses, 0u);  // The first run of each statement.
  EXPECT_GT(rows_delivered.load(), 0u);
}

}  // namespace
}  // namespace sdss::query
