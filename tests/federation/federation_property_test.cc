// Equivalence property: for randomized skies, shard counts 1..8, and the
// mixed query list, the federated engine's answers equal the single-store
// QueryEngine's (rows as multisets, deterministic ORDER BY sequences
// exactly, aggregates to 1e-9) -- including with one server marked down
// when every container has a surviving replica.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/sharded_store.h"
#include "federation/federation_test_util.h"
#include "query/federated_engine.h"

namespace sdss::federation_test {
namespace {

using archive::ReplicationOptions;
using archive::ShardedStore;
using query::FederatedQueryEngine;
using query::QueryEngine;

struct SkyConfig {
  uint64_t seed;
  uint64_t galaxies, stars, quasars;
  size_t servers;
  size_t replicas;
};

void RunEquivalenceSweep(const SkyConfig& cfg, bool kill_one_server) {
  auto store = MakeSky(cfg.seed, cfg.galaxies, cfg.stars, cfg.quasars);
  QueryEngine single(&store);

  ReplicationOptions repl;
  repl.num_servers = cfg.servers;
  repl.base_replicas = cfg.replicas;
  ShardedStore sharded(store, repl);
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok()) << shards.status().ToString();
  FederatedQueryEngine fed(*shards);

  if (kill_one_server) {
    ASSERT_TRUE(sharded.MarkServerDown(cfg.servers / 2).ok());
    auto rerouted = sharded.LiveShards();
    ASSERT_TRUE(rerouted.ok()) << rerouted.status().ToString();
    fed.SetShards(*rerouted);
  }

  for (const TestQuery& q : MixedQueries()) {
    auto expect = single.Execute(q.sql);
    ASSERT_TRUE(expect.ok()) << q.sql << ": " << expect.status().ToString();
    auto got = fed.Execute(q.sql);
    ASSERT_TRUE(got.ok()) << q.sql << ": " << got.status().ToString();
    ExpectEquivalent(*expect, *got, q.mode,
                     q.sql + (kill_one_server ? " [one server down]" : ""));
    // Every container is scanned exactly once across the fleet, so the
    // federated scan counters must match the single store's. LIMIT
    // queries cancel their scans at a timing-dependent point, so only
    // uncapped queries have deterministic counters.
    if (q.sql.find("LIMIT") == std::string::npos) {
      EXPECT_EQ(expect->exec.objects_matched, got->exec.objects_matched)
          << q.sql;
    }
  }
}

TEST(FederationPropertyTest, ThreeShardsMatchSingleStore) {
  RunEquivalenceSweep({101, 3000, 2500, 60, 3, 2}, false);
}

TEST(FederationPropertyTest, EightShardsMatchSingleStore) {
  RunEquivalenceSweep({202, 4000, 3500, 80, 8, 2}, false);
}

TEST(FederationPropertyTest, SingleShardDegeneratesToSingleStore) {
  RunEquivalenceSweep({303, 1500, 1200, 40, 1, 1}, false);
}

TEST(FederationPropertyTest, FiveShardsOneServerDownStillMatch) {
  RunEquivalenceSweep({404, 3000, 2600, 70, 5, 2}, true);
}

TEST(FederationPropertyTest, ExplainReportsPerShardPredictions) {
  auto store = MakeSky(505, 2000, 1500, 40);
  ShardedStore sharded(store, {4, 2});
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine fed(*shards);

  auto explain = fed.Explain(
      "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 8) AND "
      "r < 21");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("federation: 4 live shards"), std::string::npos)
      << *explain;
  EXPECT_NE(explain->find("shard 0:"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("shard 3:"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("prediction:"), std::string::npos) << *explain;
}

TEST(FederationPropertyTest, NoLiveShardsIsCleanError) {
  FederatedQueryEngine fed({});
  auto r = fed.Execute("SELECT COUNT(*) FROM photo");
  EXPECT_FALSE(r.ok());
}

TEST(FederationPropertyTest, StreamingLimitCancelsFanOut) {
  auto store = MakeSky(606, 3000, 2500, 50);
  ShardedStore sharded(store, {4, 2});
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine fed(*shards);

  uint64_t seen = 0;
  auto stats = fed.ExecuteStreaming(
      "SELECT obj_id, r FROM photo WHERE r < 23",
      [&seen](const query::RowBatch& batch) {
        seen += batch.size();
        return seen < 256;  // Cancel mid-stream.
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->cancelled_early);
  EXPECT_GE(seen, 256u);
}

}  // namespace
}  // namespace sdss::federation_test
