// EXPLAIN ANALYZE: the optimizer's per-shard predictions stitched to a
// real traced run. On the full photo store the density-map prediction
// is exact (both sides sum the same container byte sizes), which is
// the strongest pin a test can hold the cost model to; tag-store scans
// may only overestimate.

#include <gtest/gtest.h>

#include <string>

#include "archive/sharded_store.h"
#include "federation/federation_test_util.h"
#include "query/federated_engine.h"

namespace sdss::query {
namespace {

using archive::ReplicationOptions;
using archive::ShardedStore;

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    source_ = new catalog::ObjectStore(
        federation_test::MakeSky(3300, 9000, 7000, 200));
    ReplicationOptions repl;
    repl.num_servers = 3;
    repl.base_replicas = 1;
    sharded_ = new ShardedStore(*source_, repl);
  }
  static void TearDownTestSuite() {
    delete sharded_;
    delete source_;
    sharded_ = nullptr;
    source_ = nullptr;
  }

  static catalog::ObjectStore* source_;
  static ShardedStore* sharded_;
};

catalog::ObjectStore* ExplainAnalyzeTest::source_ = nullptr;
ShardedStore* ExplainAnalyzeTest::sharded_ = nullptr;

TEST_F(ExplainAnalyzeTest, PhotoScanPredictionIsExact) {
  auto shards = sharded_->LiveShards();
  ASSERT_TRUE(shards.ok());
  // Force the full photo store: its prediction and its scan sum the
  // same container sizes, so predicted == actual to the byte.
  FederatedQueryEngine::Options options;
  options.planner.auto_tag_selection = false;
  FederatedQueryEngine engine(*shards, options);

  auto analysis = engine.ExplainAnalyze(
      "SELECT obj_id, r FROM photo WHERE r < 20.5");
  ASSERT_TRUE(analysis.ok());

  ASSERT_EQ(analysis->shards.size(), 3u);
  uint64_t predicted_total = 0, actual_total = 0, rows_total = 0;
  for (const auto& shard : analysis->shards) {
    EXPECT_EQ(shard.predicted_bytes, shard.actual_bytes)
        << "shard " << shard.server;
    EXPECT_EQ(shard.containers_predicted, shard.containers_scanned)
        << "shard " << shard.server;
    EXPECT_GT(shard.actual_bytes, 0u);
    predicted_total += shard.predicted_bytes;
    actual_total += shard.actual_bytes;
    rows_total += shard.rows;
  }
  EXPECT_EQ(predicted_total, actual_total);
  EXPECT_EQ(rows_total, analysis->exec.rows_emitted);
  EXPECT_EQ(actual_total, analysis->exec.bytes_touched);

  // The report carries both sides of the ledger and the stage line.
  EXPECT_NE(analysis->report.find("federation: 3 live shards"),
            std::string::npos);
  EXPECT_NE(analysis->report.find("bytes: predicted"), std::string::npos);
  EXPECT_NE(analysis->report.find("stages: plan"), std::string::npos);
  EXPECT_GT(analysis->exec.seconds_total, 0.0);
  // The traced run exports chrome://tracing JSON with the span forest.
  EXPECT_NE(analysis->trace_json.find("\"fan_out\""), std::string::npos);
  EXPECT_NE(analysis->trace_json.find("\"shard\""), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, SpatialTagScanOnlyOverestimates) {
  auto shards = sharded_->LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine engine(*shards);

  auto analysis = engine.ExplainAnalyze(
      "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 8) "
      "AND r < 21");
  ASSERT_TRUE(analysis.ok());
  // The density map prices whole containers off the HTM cover before
  // the scan filters rows: it may never undercount what the pruned
  // scan then touches.
  for (const auto& shard : analysis->shards) {
    EXPECT_GE(shard.predicted_bytes, shard.actual_bytes)
        << "shard " << shard.server;
    EXPECT_EQ(shard.containers_predicted, shard.containers_scanned)
        << "shard " << shard.server;
  }
}

TEST_F(ExplainAnalyzeTest, LeadingExplainAnalyzeKeywordsAreStripped) {
  auto shards = sharded_->LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine engine(*shards);
  auto analysis = engine.ExplainAnalyze(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM photo WHERE r < 20");
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->exec.rows_emitted, 1u);
}

TEST_F(ExplainAnalyzeTest, RefusesInto) {
  auto shards = sharded_->LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine engine(*shards);
  auto analysis = engine.ExplainAnalyze(
      "SELECT * INTO mydb.t FROM photo WHERE r < 19");
  EXPECT_FALSE(analysis.ok());
}

TEST_F(ExplainAnalyzeTest, BypassesResultCache) {
  auto shards = sharded_->LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine::Options options;
  options.result_cache_bytes = 8u << 20;
  FederatedQueryEngine engine(*shards, options);

  const std::string sql = "SELECT obj_id, r FROM photo WHERE r < 20";
  // Warm the cache through the normal path...
  auto first =
      engine.ExecuteStreaming(sql, [](const RowBatch&) { return true; });
  ASSERT_TRUE(first.ok());
  // ...then ANALYZE must still scan the fleet (its per-shard ledger
  // would be empty on a cache answer).
  auto analysis = engine.ExplainAnalyze(sql);
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->exec.cache_hit);
  EXPECT_FALSE(analysis->exec.cache_containment);
  EXPECT_GT(analysis->exec.containers_scanned, 0u);
  ASSERT_FALSE(analysis->shards.empty());
}

}  // namespace
}  // namespace sdss::query
