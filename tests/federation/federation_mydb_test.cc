// Federated engine behaviors added for the batch workbench: personal
// mydb stores execute locally (no fan-out duplication), a table no live
// shard can serve is a clean error instead of a silently empty result,
// job-scoped cancellation aborts a fan-out, and EstimateCost prices
// queries for lane admission.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "federation/federation_test_util.h"
#include "query/federated_engine.h"

namespace sdss::federation_test {
namespace {

using archive::MyDb;
using archive::ReplicationOptions;
using archive::ShardedStore;
using query::ExecContext;
using query::FederatedQueryEngine;
using query::QueryEngine;

ReplicationOptions FourServers() {
  ReplicationOptions repl;
  repl.num_servers = 4;
  repl.base_replicas = 2;
  return repl;
}

TEST(FederationMyDbTest, TaglessFleetRefusesTagTableCleanly) {
  catalog::StoreOptions so;
  so.build_tags = false;
  catalog::ObjectStore tagless(so);
  {
    catalog::SkyModel m;
    m.seed = 901;
    m.num_galaxies = 1500;
    m.num_stars = 1000;
    m.num_quasars = 30;
    ASSERT_TRUE(
        tagless.BulkLoad(catalog::SkyGenerator(m).Generate()).ok());
  }
  ShardedStore sharded(tagless, FourServers());
  auto shards = sharded.LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine fed(*shards);

  // Regression: this used to stream zero rows and report success.
  auto res = fed.Execute("SELECT obj_id, r FROM tag WHERE r < 20");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
  EXPECT_NE(res.status().message().find("no live shard"),
            std::string::npos);

  // A photo query whose attributes all fit the tag must still answer
  // (from the full objects) rather than auto-select the absent tag.
  auto photo = fed.Execute("SELECT obj_id, r FROM photo WHERE r < 20");
  ASSERT_TRUE(photo.ok());
  EXPECT_FALSE(photo->used_tag_store);
  EXPECT_GT(photo->rows.size(), 0u);
}

class FederationMyDbFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    store_ = new catalog::ObjectStore(MakeSky(902, 3000, 2500, 80));
    sharded_ = new ShardedStore(*store_, FourServers());
    auto shards = sharded_->LiveShards();
    ASSERT_TRUE(shards.ok());
    fed_ = new FederatedQueryEngine(*shards);
    mydb_ = new MyDb();

    // Materialize "bright" (r < 20.5) for user "miner" by hand -- the
    // scheduler's INTO path is exercised in the workbench suite.
    std::vector<catalog::PhotoObj> bright;
    store_->ForEachObject([&bright](const catalog::PhotoObj& o) {
      if (o.mag[catalog::kR] < 20.5f) bright.push_back(o);
    });
    ASSERT_FALSE(bright.empty());
    bright_count_ = bright.size();
    ASSERT_TRUE(mydb_->Put("miner", "bright", std::move(bright)).ok());
  }
  static void TearDownTestSuite() {
    delete fed_;
    delete mydb_;
    delete sharded_;
    delete store_;
    fed_ = nullptr;
    mydb_ = nullptr;
    sharded_ = nullptr;
    store_ = nullptr;
  }

  static ExecContext Miner() {
    ExecContext ctx;
    ctx.mydb = mydb_->ResolverFor("miner");
    return ctx;
  }

  static catalog::ObjectStore* store_;
  static ShardedStore* sharded_;
  static FederatedQueryEngine* fed_;
  static MyDb* mydb_;
  static size_t bright_count_;
};

catalog::ObjectStore* FederationMyDbFixture::store_ = nullptr;
ShardedStore* FederationMyDbFixture::sharded_ = nullptr;
FederatedQueryEngine* FederationMyDbFixture::fed_ = nullptr;
MyDb* FederationMyDbFixture::mydb_ = nullptr;
size_t FederationMyDbFixture::bright_count_ = 0;

TEST_F(FederationMyDbFixture, MyDbQueriesMatchFleetGroundTruth) {
  // COUNT over the personal store = the materialized predicate's count.
  auto count = fed_->Execute("SELECT COUNT(*) FROM mydb.bright", Miner());
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count->aggregate_value,
                   static_cast<double>(bright_count_));

  // A refinement over mydb equals the conjoined predicate on the fleet.
  auto refined = fed_->Execute(
      "SELECT obj_id FROM mydb.bright WHERE g - r < 0.6", Miner());
  auto truth = fed_->Execute(
      "SELECT obj_id FROM photo WHERE r < 20.5 AND g - r < 0.6");
  ASSERT_TRUE(refined.ok());
  ASSERT_TRUE(truth.ok());
  ExpectEquivalent(*truth, *refined, CompareMode::kMultiset,
                   "mydb refinement");

  // ORDER/LIMIT on the personal store behaves like a single store.
  auto ordered = fed_->Execute(
      "SELECT obj_id, r FROM mydb.bright ORDER BY r LIMIT 20", Miner());
  ASSERT_TRUE(ordered.ok());
  ASSERT_EQ(ordered->rows.size(), 20u);
  for (size_t i = 1; i < ordered->rows.size(); ++i) {
    EXPECT_LE(ordered->rows[i - 1].values[1], ordered->rows[i].values[1]);
  }
}

TEST_F(FederationMyDbFixture, EngineRefusesIntoWithoutASink) {
  // Only the workbench owns an INTO materialization sink; the bare
  // engine must refuse rather than run the select and store nothing.
  auto direct = fed_->Execute("SELECT * INTO mydb.x FROM photo", Miner());
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kInvalidArgument);
  auto streaming = fed_->ExecuteStreaming(
      "SELECT * INTO mydb.x FROM photo",
      [](const query::RowBatch&) { return true; }, Miner());
  EXPECT_FALSE(streaming.ok());
  // Pricing an INTO for admission stays legal.
  EXPECT_TRUE(
      fed_->EstimateCost("SELECT * INTO mydb.x FROM photo", Miner()).ok());

  QueryEngine single(store_);
  EXPECT_FALSE(single.Execute("SELECT * INTO mydb.x FROM photo").ok());
}

TEST_F(FederationMyDbFixture, MyDbNamespaceIsPerUser) {
  ExecContext stranger;
  stranger.mydb = mydb_->ResolverFor("stranger");
  auto res = fed_->Execute("SELECT COUNT(*) FROM mydb.bright", stranger);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
}

TEST_F(FederationMyDbFixture, CancelFlagAbortsFanOutDeterministically) {
  // Tiny batches keep the scan producers alive (blocked on channel
  // backpressure) long past the first delivered batch, so the raised
  // flag is ALWAYS observed mid-scan -- no timing dependence.
  FederatedQueryEngine::Options opt;
  opt.executor.batch_size = 8;
  auto shards = sharded_->LiveShards();
  ASSERT_TRUE(shards.ok());
  FederatedQueryEngine fed(*shards, opt);

  std::atomic<bool> cancel{false};
  ExecContext ctx;
  ctx.cancel = &cancel;
  size_t batches = 0;
  auto res = fed.ExecuteStreaming(
      "SELECT obj_id, r FROM photo",
      [&](const query::RowBatch& batch) {
        (void)batch;
        // Raise the job's flag mid-stream: the shard executors must
        // notice at their next per-object cancellation point.
        ++batches;
        cancel.store(true);
        return true;
      },
      ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCancelled);
  EXPECT_GE(batches, 1u);
}

TEST_F(FederationMyDbFixture, EstimateCostPricesLanes) {
  auto full = fed_->EstimateCost("SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->personal_store);
  EXPECT_EQ(full->bytes_to_scan,
            store_->object_count() * sizeof(catalog::PhotoObj));

  auto pruned = fed_->EstimateCost(
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 3)");
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->bytes_to_scan, full->bytes_to_scan);

  auto join = fed_->EstimateCost(
      "SELECT COUNT(*) FROM photo AS a JOIN photoobj AS b "
      "WITHIN 30 ARCSEC");
  ASSERT_TRUE(join.ok());
  EXPECT_GT(join->bytes_shipped, 0u);

  auto personal =
      fed_->EstimateCost("SELECT COUNT(*) FROM mydb.bright", Miner());
  ASSERT_TRUE(personal.ok());
  EXPECT_TRUE(personal->personal_store);
  EXPECT_EQ(personal->bytes_shipped, 0u);
  EXPECT_LT(personal->bytes_to_scan, full->bytes_to_scan);
}

}  // namespace
}  // namespace sdss::federation_test
