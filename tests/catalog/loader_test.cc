#include "catalog/loader.h"

#include <gtest/gtest.h>

#include "catalog/sky_generator.h"

namespace sdss::catalog {
namespace {

Chunk MakeChunk(uint64_t objects = 3000) {
  SkyModel m;
  m.seed = 31;
  m.num_galaxies = objects;
  m.num_stars = 0;
  m.num_quasars = 0;
  Chunk chunk;
  chunk.night = 0;
  chunk.ra_min_deg = 0;
  chunk.ra_max_deg = 360;
  chunk.objects = SkyGenerator(m).Generate();
  return chunk;
}

TEST(LoaderTest, ClusteredLoadInsertsEverything) {
  ObjectStore store;
  ChunkLoader loader;
  Chunk chunk = MakeChunk();
  auto stats = loader.LoadClustered(&store, chunk);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->objects, chunk.objects.size());
  EXPECT_EQ(store.object_count(), chunk.objects.size());
  EXPECT_EQ(stats->bytes_written,
            chunk.objects.size() * kPaperBytesPerPhotoObj);
}

TEST(LoaderTest, ClusteredTouchesEachContainerOnce) {
  ObjectStore store;
  ChunkLoader loader;
  Chunk chunk = MakeChunk();
  auto stats = loader.LoadClustered(&store, chunk);
  ASSERT_TRUE(stats.ok());
  // "touching each clustering unit at most once during a load".
  EXPECT_EQ(stats->container_touches, store.container_count());
}

TEST(LoaderTest, NaiveLoadTouchesManyMoreContainers) {
  Chunk chunk = MakeChunk();
  // Coarser containers so each holds several objects (the realistic
  // regime: containers are far fewer than objects).
  StoreOptions coarse{.cluster_level = 4, .build_tags = false};
  ObjectStore s1(coarse), s2(coarse);
  ChunkLoader loader;
  auto clustered = loader.LoadClustered(&s1, chunk);
  auto naive = loader.LoadNaive(&s2, chunk);
  ASSERT_TRUE(clustered.ok());
  ASSERT_TRUE(naive.ok());
  // Arrival order is essentially random on the sky: almost every object
  // switches container.
  EXPECT_GT(naive->container_touches, clustered->container_touches * 5);
  // Both produce identical stores.
  EXPECT_EQ(s1.object_count(), s2.object_count());
  EXPECT_EQ(s1.DensityMap(), s2.DensityMap());
}

TEST(LoaderTest, ClusteredIsFasterInModeledTime) {
  Chunk chunk = MakeChunk();
  ObjectStore s1, s2;
  ChunkLoader loader;
  auto clustered = loader.LoadClustered(&s1, chunk);
  auto naive = loader.LoadNaive(&s2, chunk);
  ASSERT_TRUE(clustered.ok() && naive.ok());
  EXPECT_LT(clustered->sim_seconds, naive->sim_seconds);
}

TEST(LoaderTest, EmptyChunkIsFine) {
  ObjectStore store;
  ChunkLoader loader;
  Chunk empty;
  auto stats = loader.LoadClustered(&store, empty);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->objects, 0u);
  EXPECT_EQ(stats->container_touches, 0u);
}

TEST(LoaderTest, NullStoreIsInvalid) {
  ChunkLoader loader;
  Chunk chunk = MakeChunk(10);
  EXPECT_EQ(loader.LoadClustered(nullptr, chunk).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(loader.LoadNaive(nullptr, chunk).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LoaderTest, IncrementalNightlyLoads) {
  // The paper's mode of operation: ~nightly chunks loaded as they arrive.
  SkyModel m;
  m.seed = 77;
  m.num_galaxies = 5000;
  m.num_stars = 3000;
  m.num_quasars = 50;
  auto chunks = SkyGenerator(m).GenerateChunks(10);

  ObjectStore store;
  ChunkLoader loader;
  uint64_t total = 0;
  for (const Chunk& chunk : chunks) {
    auto stats = loader.LoadClustered(&store, chunk);
    ASSERT_TRUE(stats.ok());
    total += stats->objects;
    EXPECT_EQ(store.object_count(), total);
  }
  EXPECT_EQ(total, 8050u);
}

TEST(LoaderTest, CostModelScalesWithSeeks) {
  LoadCostModel slow_seek;
  slow_seek.seek_seconds = 1.0;
  LoadCostModel fast_seek;
  fast_seek.seek_seconds = 0.0001;

  Chunk chunk = MakeChunk(2000);
  ObjectStore s1, s2;
  auto t_slow = ChunkLoader(slow_seek).LoadNaive(&s1, chunk);
  auto t_fast = ChunkLoader(fast_seek).LoadNaive(&s2, chunk);
  ASSERT_TRUE(t_slow.ok() && t_fast.ok());
  EXPECT_GT(t_slow->sim_seconds, t_fast->sim_seconds * 100);
}

}  // namespace
}  // namespace sdss::catalog
