#include "catalog/sky_generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/coords.h"
#include "htm/trixel.h"

namespace sdss::catalog {
namespace {

SkyModel SmallModel() {
  SkyModel m;
  m.seed = 7;
  m.num_galaxies = 4000;
  m.num_stars = 3000;
  m.num_quasars = 100;
  return m;
}

TEST(SkyGeneratorTest, GeneratesRequestedCounts) {
  auto objs = SkyGenerator(SmallModel()).Generate();
  EXPECT_EQ(objs.size(), 7100u);
  uint64_t galaxies = 0, stars = 0, quasars = 0;
  for (const auto& o : objs) {
    switch (o.obj_class) {
      case ObjClass::kGalaxy:
        ++galaxies;
        break;
      case ObjClass::kStar:
        ++stars;
        break;
      case ObjClass::kQuasar:
        ++quasars;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(galaxies, 4000u);
  EXPECT_EQ(stars, 3000u);
  EXPECT_EQ(quasars, 100u);
}

TEST(SkyGeneratorTest, DeterministicForSeed) {
  auto a = SkyGenerator(SmallModel()).Generate();
  auto b = SkyGenerator(SmallModel()).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].obj_id, b[i].obj_id);
    EXPECT_EQ(a[i].pos, b[i].pos);
    EXPECT_EQ(a[i].mag, b[i].mag);
  }
  SkyModel other = SmallModel();
  other.seed = 8;
  auto c = SkyGenerator(other).Generate();
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    differs = !(a[i].pos == c[i].pos);
  }
  EXPECT_TRUE(differs);
}

TEST(SkyGeneratorTest, IdsAreSequentialAndUnique) {
  auto objs = SkyGenerator(SmallModel()).Generate();
  std::set<uint64_t> ids;
  for (const auto& o : objs) {
    EXPECT_TRUE(ids.insert(o.obj_id).second);
  }
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), objs.size());
}

TEST(SkyGeneratorTest, PositionsAreUnitAndConsistent) {
  auto objs = SkyGenerator(SmallModel()).Generate();
  for (size_t i = 0; i < objs.size(); i += 53) {
    const auto& o = objs[i];
    EXPECT_NEAR(o.pos.Norm(), 1.0, 1e-12);
    Vec3 from_angles = UnitVectorFromSpherical(o.ra_deg, o.dec_deg);
    EXPECT_LT(from_angles.AngleTo(o.pos), 1e-10);
    EXPECT_EQ(o.htm_leaf,
              htm::LookupId(o.pos, kGeneratorHtmLevel).raw());
  }
}

TEST(SkyGeneratorTest, FootprintIsNorthernGalacticCap) {
  auto objs = SkyGenerator(SmallModel()).Generate();
  for (size_t i = 0; i < objs.size(); i += 29) {
    SphericalCoord gal = ToSpherical(objs[i].pos, Frame::kGalactic);
    EXPECT_GE(gal.lat_deg, 30.0 - 1e-9) << objs[i].obj_id;
  }
}

TEST(SkyGeneratorTest, FullSkyOptionCoversBothHemispheres) {
  SkyModel m = SmallModel();
  m.footprint_min_gal_lat_deg = 0.0;
  auto objs = SkyGenerator(m).Generate();
  int south = 0;
  for (const auto& o : objs) south += o.pos.z < 0;
  EXPECT_GT(south, static_cast<int>(objs.size()) / 4);
}

TEST(SkyGeneratorTest, MagnitudesWithinSurveyLimits) {
  SkyModel m = SmallModel();
  auto objs = SkyGenerator(m).Generate();
  for (const auto& o : objs) {
    if (o.obj_class == ObjClass::kQuasar) continue;  // Separate range.
    EXPECT_GE(o.mag[kR], m.r_mag_bright - 0.01);
    EXPECT_LE(o.mag[kR], m.r_mag_faint + 0.01);
  }
}

TEST(SkyGeneratorTest, FaintObjectsDominate) {
  // Number counts rise steeply with magnitude (Euclidean counts).
  auto objs = SkyGenerator(SmallModel()).Generate();
  int faint = 0, bright = 0;
  for (const auto& o : objs) {
    if (o.obj_class != ObjClass::kGalaxy) continue;
    if (o.mag[kR] > 21.5) ++faint;
    if (o.mag[kR] < 18.5) ++bright;
  }
  EXPECT_GT(faint, 3 * bright);
}

TEST(SkyGeneratorTest, QuasarsAreBlueInUMinusG) {
  auto objs = SkyGenerator(SmallModel()).Generate();
  double q_ug = 0, s_ug = 0;
  int nq = 0, ns = 0;
  for (const auto& o : objs) {
    if (o.obj_class == ObjClass::kQuasar) {
      q_ug += o.Color(kU, kG);
      ++nq;
    } else if (o.obj_class == ObjClass::kStar) {
      s_ug += o.Color(kU, kG);
      ++ns;
    }
  }
  ASSERT_GT(nq, 0);
  ASSERT_GT(ns, 0);
  // Quasars sit well blueward of the mean stellar locus.
  EXPECT_LT(q_ug / nq + 0.5, s_ug / ns);
}

TEST(SkyGeneratorTest, StarsArePointSources) {
  auto objs = SkyGenerator(SmallModel()).Generate();
  for (const auto& o : objs) {
    if (o.obj_class == ObjClass::kStar) {
      EXPECT_LT(o.petro_radius_arcsec, 2.5f);
    }
  }
}

TEST(SkyGeneratorTest, QuasarsAllHaveRedshiftsAndTargets) {
  auto objs = SkyGenerator(SmallModel()).Generate();
  for (const auto& o : objs) {
    if (o.obj_class != ObjClass::kQuasar) continue;
    EXPECT_GE(o.redshift, 0.3f);
    EXPECT_LE(o.redshift, 5.0f);
    EXPECT_TRUE(o.flags & kFlagSpectroTarget);
  }
}

TEST(SkyGeneratorTest, BrightGalaxiesAreSpectroTargets) {
  // The main galaxy sample: every r < 17.8 galaxy is targeted.
  auto objs = SkyGenerator(SmallModel()).Generate();
  for (const auto& o : objs) {
    if (o.obj_class == ObjClass::kGalaxy && o.mag[kR] < 17.8f) {
      EXPECT_TRUE(o.flags & kFlagSpectroTarget) << o.obj_id;
      EXPECT_GE(o.redshift, 0.0f);
    }
  }
}

TEST(SkyGeneratorTest, ChunksPartitionTheSky) {
  SkyGenerator gen(SmallModel());
  auto chunks = gen.GenerateChunks(15);
  ASSERT_EQ(chunks.size(), 15u);
  uint64_t total = 0;
  for (const auto& chunk : chunks) {
    total += chunk.objects.size();
    for (const auto& o : chunk.objects) {
      EXPECT_GE(o.ra_deg, chunk.ra_min_deg - 1e-9);
      EXPECT_LT(o.ra_deg, chunk.ra_max_deg + 1e-9);
    }
  }
  EXPECT_EQ(total, gen.Generate().size());
}

TEST(SkyGeneratorTest, ChunkPaperBytes) {
  auto chunks = SkyGenerator(SmallModel()).GenerateChunks(4);
  for (const auto& c : chunks) {
    EXPECT_EQ(c.PaperBytes(), c.objects.size() * kPaperBytesPerPhotoObj);
  }
}

TEST(SkyGeneratorTest, SpectraMatchTargets) {
  SkyGenerator gen(SmallModel());
  auto photo = gen.Generate();
  auto spectra = gen.GenerateSpectra(photo);
  uint64_t targets = 0;
  std::set<uint64_t> target_ids;
  for (const auto& o : photo) {
    if (o.flags & kFlagSpectroTarget) {
      ++targets;
      target_ids.insert(o.obj_id);
    }
  }
  EXPECT_EQ(spectra.size(), targets);
  std::set<uint64_t> spec_ids;
  for (const auto& s : spectra) {
    EXPECT_TRUE(target_ids.count(s.photo_obj_id) > 0);
    EXPECT_TRUE(spec_ids.insert(s.spec_id).second);
    EXPECT_GE(s.redshift, 0.0f);
    EXPECT_GT(s.line_wavelengths[0], 0.0f);
  }
}

TEST(SkyGeneratorTest, ClustersCreateDensityContrast) {
  SkyModel clustered = SmallModel();
  clustered.num_galaxies = 20000;
  clustered.num_stars = 0;
  clustered.num_quasars = 0;
  SkyModel uniform = clustered;
  uniform.cluster_fraction = 0.0;

  auto count_max_cell = [](const std::vector<PhotoObj>& objs) {
    std::map<uint64_t, int> cells;
    int max_count = 0;
    for (const auto& o : objs) {
      uint64_t cell = htm::LookupId(o.pos, 6).raw();
      max_count = std::max(max_count, ++cells[cell]);
    }
    return max_count;
  };
  int max_clustered = count_max_cell(SkyGenerator(clustered).Generate());
  int max_uniform = count_max_cell(SkyGenerator(uniform).Generate());
  EXPECT_GT(max_clustered, 2 * max_uniform);
}

}  // namespace
}  // namespace sdss::catalog
