#include "catalog/schema.h"

#include <gtest/gtest.h>

namespace sdss::catalog {
namespace {

TEST(SchemaTest, SdssSchemaHasCoreClasses) {
  Schema s = Schema::Sdss();
  EXPECT_TRUE(s.FindClass("PhotoObj").ok());
  EXPECT_TRUE(s.FindClass("TagObj").ok());
  EXPECT_TRUE(s.FindClass("SpecObj").ok());
  EXPECT_TRUE(s.FindClass("Chunk").ok());
  EXPECT_FALSE(s.FindClass("Nope").ok());
}

TEST(SchemaTest, PhotoObjFieldsPresent) {
  auto photo = Schema::Sdss().FindClass("PhotoObj");
  ASSERT_TRUE(photo.ok());
  bool has_mag = false, has_htm = false;
  for (const FieldDef& f : photo->fields) {
    if (f.name == "mag") {
      has_mag = true;
      EXPECT_EQ(f.array_length, 5u);
      EXPECT_EQ(f.type, FieldType::kFloat);
    }
    if (f.name == "htm") has_htm = true;
  }
  EXPECT_TRUE(has_mag);
  EXPECT_TRUE(has_htm);
}

TEST(SchemaTest, BytesPerInstanceIsPlausible) {
  Schema s = Schema::Sdss();
  size_t photo = s.FindClass("PhotoObj")->BytesPerInstance();
  size_t tag = s.FindClass("TagObj")->BytesPerInstance();
  EXPECT_GT(photo, 100u);
  EXPECT_LT(tag, photo / 2);  // The vertical-partition premise.
}

TEST(SchemaTest, SqlDdlEmitsCreateTables) {
  std::string ddl = Schema::Sdss().ToSqlDdl();
  EXPECT_NE(ddl.find("CREATE TABLE PhotoObj"), std::string::npos);
  EXPECT_NE(ddl.find("CREATE TABLE TagObj"), std::string::npos);
  // Arrays unroll into numbered columns.
  EXPECT_NE(ddl.find("mag_0"), std::string::npos);
  EXPECT_NE(ddl.find("mag_4"), std::string::npos);
  EXPECT_NE(ddl.find("BIGINT"), std::string::npos);
  EXPECT_NE(ddl.find("DOUBLE PRECISION"), std::string::npos);
}

TEST(SchemaTest, ObjectivityDdlEmitsOoClasses) {
  std::string ddl = Schema::Sdss().ToObjectivityDdl();
  EXPECT_NE(ddl.find("class PhotoObj : public ooObj"), std::string::npos);
  EXPECT_NE(ddl.find("ooFloat mag[5]"), std::string::npos);
  EXPECT_NE(ddl.find("ooInt64 obj_id"), std::string::npos);
}

TEST(SchemaTest, XmlIsWellFormedEnough) {
  std::string xml = Schema::Sdss().ToXml();
  EXPECT_EQ(xml.find("<schema"), 0u);
  EXPECT_NE(xml.find("</schema>"), std::string::npos);
  EXPECT_NE(xml.find("<class name=\"PhotoObj\""), std::string::npos);
  EXPECT_NE(xml.find("type=\"float32\" length=\"5\""), std::string::npos);
  // Balanced class tags.
  size_t opens = 0, closes = 0, pos = 0;
  while ((pos = xml.find("<class ", pos)) != std::string::npos) {
    ++opens;
    ++pos;
  }
  pos = 0;
  while ((pos = xml.find("</class>", pos)) != std::string::npos) {
    ++closes;
    ++pos;
  }
  EXPECT_EQ(opens, closes);
  EXPECT_EQ(opens, 4u);
}

TEST(SchemaTest, FieldTypeNames) {
  EXPECT_STREQ(FieldTypeName(FieldType::kInt64), "int64");
  EXPECT_STREQ(FieldTypeName(FieldType::kFloat), "float32");
  EXPECT_STREQ(FieldTypeName(FieldType::kEnum), "enum");
}

TEST(SchemaTest, CustomSchemaRoundTrip) {
  Schema s;
  s.AddClass(ClassDef{"Custom",
                      "a test class",
                      {{"a", FieldType::kInt32, 0, "", ""},
                       {"b", FieldType::kDouble, 3, "deg", "angles"}}});
  auto c = s.FindClass("Custom");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->fields.size(), 2u);
  EXPECT_EQ(c->BytesPerInstance(), 4u + 3u * 8u);
  EXPECT_NE(s.ToSqlDdl().find("b_2"), std::string::npos);
}

}  // namespace
}  // namespace sdss::catalog
