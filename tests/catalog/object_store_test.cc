#include "catalog/object_store.h"

#include <gtest/gtest.h>

#include <set>

#include "catalog/sky_generator.h"
#include "core/coords.h"

namespace sdss::catalog {
namespace {

std::vector<PhotoObj> SmallSky(uint64_t galaxies = 3000, uint64_t stars = 2000,
                               uint64_t quasars = 50) {
  SkyModel model;
  model.seed = 17;
  model.num_galaxies = galaxies;
  model.num_stars = stars;
  model.num_quasars = quasars;
  return SkyGenerator(model).Generate();
}

TEST(ObjectStoreTest, InsertAndCount) {
  ObjectStore store;
  auto objs = SmallSky(100, 100, 10);
  for (const auto& o : objs) {
    ASSERT_TRUE(store.Insert(o).ok());
  }
  EXPECT_EQ(store.object_count(), objs.size());
  EXPECT_GT(store.container_count(), 0u);
}

TEST(ObjectStoreTest, BulkLoadMatchesInsert) {
  auto objs = SmallSky(500, 500, 20);
  ObjectStore a, b;
  for (const auto& o : objs) ASSERT_TRUE(a.Insert(o).ok());
  ASSERT_TRUE(b.BulkLoad(objs).ok());
  EXPECT_EQ(a.object_count(), b.object_count());
  EXPECT_EQ(a.container_count(), b.container_count());
  EXPECT_EQ(a.DensityMap(), b.DensityMap());
}

TEST(ObjectStoreTest, ObjectsLandInTheirTrixelContainer) {
  ObjectStore store;
  auto objs = SmallSky(300, 0, 0);
  ASSERT_TRUE(store.BulkLoad(objs).ok());
  htm::HtmIndex index(store.cluster_level());
  for (const auto& [raw, container] : store.containers()) {
    for (const PhotoObj& o : container.objects) {
      EXPECT_EQ(index.Locate(o.pos).raw(), raw);
    }
  }
}

TEST(ObjectStoreTest, TagsParallelObjects) {
  ObjectStore store;
  ASSERT_TRUE(store.BulkLoad(SmallSky(200, 200, 10)).ok());
  for (const auto& [raw, c] : store.containers()) {
    ASSERT_EQ(c.objects.size(), c.tags.size());
    for (size_t i = 0; i < c.objects.size(); ++i) {
      EXPECT_EQ(c.objects[i].obj_id, c.tags[i].obj_id);
    }
  }
}

TEST(ObjectStoreTest, TagsCanBeDisabled) {
  ObjectStore store(StoreOptions{.cluster_level = 6, .build_tags = false});
  ASSERT_TRUE(store.BulkLoad(SmallSky(100, 0, 0)).ok());
  StoreStats stats = store.Stats();
  EXPECT_EQ(stats.tag_bytes, 0u);
  EXPECT_GT(stats.full_bytes, 0u);
}

TEST(ObjectStoreTest, StatsAggregate) {
  ObjectStore store;
  ASSERT_TRUE(store.BulkLoad(SmallSky()).ok());
  StoreStats stats = store.Stats();
  EXPECT_EQ(stats.object_count, store.object_count());
  EXPECT_EQ(stats.container_count, store.container_count());
  EXPECT_EQ(stats.full_bytes, stats.object_count * sizeof(PhotoObj));
  EXPECT_EQ(stats.tag_bytes, stats.object_count * sizeof(TagObj));
  EXPECT_GE(stats.max_container_objects, 1u);
  EXPECT_GT(stats.mean_container_objects, 0.0);
}

TEST(ObjectStoreTest, ForEachVisitsEverythingOnce) {
  ObjectStore store;
  auto objs = SmallSky(400, 300, 10);
  ASSERT_TRUE(store.BulkLoad(objs).ok());
  std::set<uint64_t> seen;
  store.ForEachObject([&](const PhotoObj& o) {
    EXPECT_TRUE(seen.insert(o.obj_id).second);
  });
  EXPECT_EQ(seen.size(), objs.size());

  std::set<uint64_t> tag_seen;
  store.ForEachTag([&](const TagObj& t) {
    EXPECT_TRUE(tag_seen.insert(t.obj_id).second);
  });
  EXPECT_EQ(tag_seen, seen);
}

TEST(ObjectStoreTest, QueryRegionIsExact) {
  ObjectStore store;
  auto objs = SmallSky();
  ASSERT_TRUE(store.BulkLoad(objs).ok());

  // A cone near the footprint center (north galactic cap).
  Vec3 center = EquatorialUnitVector({0.0, 90.0, Frame::kGalactic});
  SphericalCoord eq = ToSpherical(center, Frame::kEquatorial);
  htm::Region region = htm::Region::Circle(eq.lon_deg, eq.lat_deg, 8.0);

  std::set<uint64_t> via_query;
  auto stats = store.QueryRegion(region, [&](const PhotoObj& o) {
    via_query.insert(o.obj_id);
  });

  std::set<uint64_t> brute;
  for (const auto& o : objs) {
    if (region.Contains(o.pos)) brute.insert(o.obj_id);
  }
  EXPECT_EQ(via_query, brute);
  EXPECT_EQ(stats.accepted, brute.size());
  EXPECT_GT(stats.full_containers + stats.partial_containers, 0u);
}

TEST(ObjectStoreTest, QueryRegionPrunesContainers) {
  ObjectStore store;
  ASSERT_TRUE(store.BulkLoad(SmallSky()).ok());
  htm::Region tiny = htm::Region::Circle(180.0, 40.0, 0.5);
  auto stats = store.QueryRegion(tiny, [](const PhotoObj&) {});
  // The cover must touch only a tiny fraction of the containers.
  EXPECT_LT(stats.full_containers + stats.partial_containers,
            store.container_count() / 5 + 5);
  EXPECT_LT(stats.bytes_touched, store.Stats().full_bytes);
}

TEST(ObjectStoreTest, PredictionBracketsActual) {
  ObjectStore store;
  auto objs = SmallSky();
  ASSERT_TRUE(store.BulkLoad(objs).ok());
  Vec3 center = EquatorialUnitVector({0.0, 90.0, Frame::kGalactic});
  SphericalCoord eq = ToSpherical(center, Frame::kEquatorial);

  for (double radius : {2.0, 5.0, 10.0, 20.0}) {
    htm::Region region = htm::Region::Circle(eq.lon_deg, eq.lat_deg, radius);
    auto pred = store.PredictRegion(region);
    uint64_t actual = 0;
    for (const auto& o : objs) {
      if (region.Contains(o.pos)) ++actual;
    }
    EXPECT_LE(pred.min_objects, actual) << radius;
    EXPECT_GE(pred.max_objects, actual) << radius;
    EXPECT_GT(pred.bytes_to_scan, 0u) << radius;
  }
}

TEST(ObjectStoreTest, SampleIsApproximatelyFraction) {
  ObjectStore store;
  ASSERT_TRUE(store.BulkLoad(SmallSky(5000, 5000, 100)).ok());
  ObjectStore sample = store.Sample(0.01, 99);
  double frac = static_cast<double>(sample.object_count()) /
                static_cast<double>(store.object_count());
  EXPECT_NEAR(frac, 0.01, 0.005);
  // Deterministic for the same seed.
  ObjectStore sample2 = store.Sample(0.01, 99);
  EXPECT_EQ(sample.object_count(), sample2.object_count());
}

TEST(ObjectStoreTest, SampleObjectsComeFromParent) {
  ObjectStore store;
  auto objs = SmallSky(1000, 0, 0);
  ASSERT_TRUE(store.BulkLoad(objs).ok());
  std::set<uint64_t> parent_ids;
  for (const auto& o : objs) parent_ids.insert(o.obj_id);
  ObjectStore sample = store.Sample(0.1, 5);
  sample.ForEachObject([&](const PhotoObj& o) {
    EXPECT_TRUE(parent_ids.count(o.obj_id) > 0);
  });
}

TEST(ObjectStoreTest, ClusterLevelControlsContainerCount) {
  auto objs = SmallSky(2000, 2000, 0);
  ObjectStore coarse(StoreOptions{.cluster_level = 3, .build_tags = false});
  ObjectStore fine(StoreOptions{.cluster_level = 7, .build_tags = false});
  ASSERT_TRUE(coarse.BulkLoad(objs).ok());
  ASSERT_TRUE(fine.BulkLoad(objs).ok());
  EXPECT_LT(coarse.container_count(), fine.container_count());
  EXPECT_EQ(coarse.object_count(), fine.object_count());
}

TEST(ObjectStoreTest, DensityMapShowsClusteringContrast) {
  // The synthetic sky has galaxy clusters: the densest container should
  // be several times the mean (the [Csabai97] density-contrast premise).
  ObjectStore store;
  ASSERT_TRUE(store.BulkLoad(SmallSky(20000, 0, 0)).ok());
  StoreStats stats = store.Stats();
  EXPECT_GT(static_cast<double>(stats.max_container_objects),
            3.0 * stats.mean_container_objects);
}

TEST(ObjectStoreTest, ClearEmptiesStore) {
  ObjectStore store;
  ASSERT_TRUE(store.BulkLoad(SmallSky(100, 0, 0)).ok());
  store.Clear();
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_EQ(store.container_count(), 0u);
}

TEST(ObjectStoreTest, FindContainer) {
  ObjectStore store;
  auto objs = SmallSky(100, 0, 0);
  ASSERT_TRUE(store.BulkLoad(objs).ok());
  htm::HtmIndex index(store.cluster_level());
  htm::HtmId id = index.Locate(objs[0].pos);
  const Container* c = store.FindContainer(id);
  ASSERT_NE(c, nullptr);
  bool found = false;
  for (const auto& o : c->objects) {
    if (o.obj_id == objs[0].obj_id) found = true;
  }
  EXPECT_TRUE(found);
  // A trixel with no objects has no container.
  EXPECT_EQ(store.FindContainer(htm::LookupId(0.0, -89.0,
                                              store.cluster_level())),
            nullptr);
}

TEST(ObjectStoreTest, ExtractContainersCopiesWholesale) {
  ObjectStore store;
  ASSERT_TRUE(store.BulkLoad(SmallSky(2000, 1500, 40)).ok());

  // Every other container id.
  std::vector<uint64_t> ids;
  bool take = true;
  uint64_t expected_objects = 0;
  for (const auto& [raw, c] : store.containers()) {
    if (take) {
      ids.push_back(raw);
      expected_objects += c.objects.size();
    }
    take = !take;
  }

  ObjectStore sub = store.ExtractContainers(ids);
  EXPECT_EQ(sub.container_count(), ids.size());
  EXPECT_EQ(sub.object_count(), expected_objects);
  EXPECT_EQ(sub.cluster_level(), store.cluster_level());
  for (uint64_t raw : ids) {
    const auto& original = store.containers().at(raw);
    const auto& copy = sub.containers().at(raw);
    ASSERT_EQ(copy.objects.size(), original.objects.size());
    EXPECT_EQ(copy.objects[0].obj_id, original.objects[0].obj_id);
    EXPECT_EQ(copy.tags.size(), original.tags.size());
  }
}

TEST(ObjectStoreTest, ExtractContainersIgnoresUnknownAndDuplicateIds) {
  ObjectStore store;
  ASSERT_TRUE(store.BulkLoad(SmallSky(500, 0, 0)).ok());
  uint64_t raw = store.containers().begin()->first;
  ObjectStore sub = store.ExtractContainers({raw, raw, 0xdeadbeefULL});
  EXPECT_EQ(sub.container_count(), 1u);
  EXPECT_EQ(sub.object_count(),
            store.containers().at(raw).objects.size());
}

TEST(ObjectStoreTest, ExtractContainersPartitionIsLossless) {
  ObjectStore store;
  ASSERT_TRUE(store.BulkLoad(SmallSky(1500, 1000, 30)).ok());

  // Split ids into 3 round-robin parts: extraction must partition the
  // object population exactly.
  std::vector<std::vector<uint64_t>> parts(3);
  size_t i = 0;
  for (const auto& [raw, c] : store.containers()) {
    parts[i++ % 3].push_back(raw);
  }
  uint64_t total = 0;
  for (const auto& part : parts) {
    total += store.ExtractContainers(part).object_count();
  }
  EXPECT_EQ(total, store.object_count());
}

}  // namespace
}  // namespace sdss::catalog
