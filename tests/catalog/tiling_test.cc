#include "catalog/tiling.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "catalog/sky_generator.h"
#include "core/angle.h"

namespace sdss::catalog {
namespace {

ObjectStore MakeStore(uint64_t galaxies = 20000, uint64_t stars = 8000,
                      uint64_t quasars = 300) {
  SkyModel m;
  m.seed = 202;
  m.num_galaxies = galaxies;
  m.num_stars = stars;
  m.num_quasars = quasars;
  ObjectStore store;
  EXPECT_TRUE(store.BulkLoad(SkyGenerator(m).Generate()).ok());
  return store;
}

TEST(TargetSelectionTest, SelectsAllThreeClasses) {
  ObjectStore store = MakeStore();
  auto targets = SelectTargets(store);
  std::map<TargetClass, int> counts;
  for (const auto& t : targets) ++counts[t.target_class];
  EXPECT_GT(counts[TargetClass::kMainGalaxy], 0);
  EXPECT_GT(counts[TargetClass::kRedGalaxy], 0);
  EXPECT_GT(counts[TargetClass::kQuasar], 0);
}

TEST(TargetSelectionTest, GalaxiesDominateAtSurveyDepth) {
  // The survey's 10:1 galaxy-to-quasar target ratio emerges once the
  // magnitude limit reaches the bulk of the galaxy counts.
  ObjectStore store = MakeStore();
  SelectionCuts deep;
  deep.main_r_limit = 20.5f;
  auto targets = SelectTargets(store, deep);
  std::map<TargetClass, int> counts;
  for (const auto& t : targets) ++counts[t.target_class];
  EXPECT_GT(counts[TargetClass::kMainGalaxy] +
                counts[TargetClass::kRedGalaxy],
            counts[TargetClass::kQuasar]);
}

TEST(TargetSelectionTest, CutsAreRespected) {
  ObjectStore store = MakeStore();
  SelectionCuts cuts;
  auto targets = SelectTargets(store, cuts);
  std::map<uint64_t, const PhotoObj*> by_id;
  std::vector<PhotoObj> all;
  store.ForEachObject([&](const PhotoObj& o) { all.push_back(o); });
  for (const auto& o : all) by_id[o.obj_id] = &o;

  for (const auto& t : targets) {
    const PhotoObj* o = by_id[t.obj_id];
    ASSERT_NE(o, nullptr);
    switch (t.target_class) {
      case TargetClass::kMainGalaxy:
        EXPECT_EQ(o->obj_class, ObjClass::kGalaxy);
        EXPECT_LT(o->mag[kR], cuts.main_r_limit);
        EXPECT_LT(o->surface_brightness, cuts.main_sb_limit);
        break;
      case TargetClass::kRedGalaxy:
        EXPECT_EQ(o->obj_class, ObjClass::kGalaxy);
        EXPECT_GE(o->Color(kG, kR), cuts.red_color_min);
        EXPECT_LT(o->mag[kR], cuts.red_r_limit);
        break;
      case TargetClass::kQuasar:
        EXPECT_LE(o->Color(kU, kG), cuts.quasar_ug_max);
        EXPECT_LT(o->mag[kR], cuts.quasar_r_limit);
        EXPECT_LT(o->petro_radius_arcsec, 2.5f);
        break;
    }
  }
}

TEST(TargetSelectionTest, ClassesAreDisjoint) {
  ObjectStore store = MakeStore();
  auto targets = SelectTargets(store);
  std::set<uint64_t> seen;
  for (const auto& t : targets) {
    EXPECT_TRUE(seen.insert(t.obj_id).second) << t.obj_id;
  }
}

TEST(TargetSelectionTest, TighterCutsSelectFewer) {
  ObjectStore store = MakeStore();
  SelectionCuts loose;
  SelectionCuts tight;
  tight.main_r_limit = 16.5f;
  tight.red_r_limit = 18.0f;
  tight.quasar_r_limit = 20.0f;
  EXPECT_GT(SelectTargets(store, loose).size(),
            SelectTargets(store, tight).size());
}

class TilingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    store_ = new ObjectStore(MakeStore());
    targets_ = new std::vector<Target>(SelectTargets(*store_));
  }
  static void TearDownTestSuite() {
    delete targets_;
    delete store_;
    targets_ = nullptr;
    store_ = nullptr;
  }
  static ObjectStore* store_;
  static std::vector<Target>* targets_;
};

ObjectStore* TilingTest::store_ = nullptr;
std::vector<Target>* TilingTest::targets_ = nullptr;

TEST_F(TilingTest, ReachesRequestedCoverage) {
  TilingOptions opt;
  opt.target_coverage = 0.95;
  auto result = PlaceTiles(*targets_, opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  uint64_t assignable =
      result->targets_total - result->targets_unreachable;
  EXPECT_GE(result->targets_assigned,
            static_cast<uint64_t>(0.95 * static_cast<double>(assignable)));
  EXPECT_FALSE(result->tiles.empty());
}

TEST_F(TilingTest, AssignedTargetsAreInsideTheirTile) {
  TilingOptions opt;
  opt.target_coverage = 0.8;
  auto result = PlaceTiles(*targets_, opt);
  ASSERT_TRUE(result.ok());
  std::map<uint64_t, Vec3> pos;
  for (const auto& t : *targets_) pos[t.obj_id] = t.pos;
  double max_cos_dist = DegToRad(opt.tile_radius_deg) + 1e-9;
  for (const Tile& tile : result->tiles) {
    for (uint64_t id : tile.assigned) {
      EXPECT_LE(tile.center.AngleTo(pos[id]), max_cos_dist);
    }
  }
}

TEST_F(TilingTest, NoTargetAssignedTwice) {
  auto result = PlaceTiles(*targets_);
  ASSERT_TRUE(result.ok());
  std::set<uint64_t> seen;
  uint64_t total = 0;
  for (const Tile& tile : result->tiles) {
    for (uint64_t id : tile.assigned) {
      EXPECT_TRUE(seen.insert(id).second) << id;
      ++total;
    }
  }
  EXPECT_EQ(total, result->targets_assigned);
}

TEST_F(TilingTest, FiberCountAndCollisionLimitRespected) {
  TilingOptions opt;
  opt.fibers_per_tile = 100;  // Force the cap to bind.
  auto result = PlaceTiles(*targets_, opt);
  ASSERT_TRUE(result.ok());
  std::map<uint64_t, Vec3> pos;
  for (const auto& t : *targets_) pos[t.obj_id] = t.pos;
  double min_sep = ArcsecToRad(opt.fiber_collision_arcsec);
  for (const Tile& tile : result->tiles) {
    EXPECT_LE(tile.assigned.size(), 100u);
    for (size_t i = 0; i < tile.assigned.size(); ++i) {
      for (size_t j = i + 1; j < tile.assigned.size(); ++j) {
        EXPECT_GE(pos[tile.assigned[i]].AngleTo(pos[tile.assigned[j]]),
                  min_sep - 1e-12);
      }
    }
  }
}

TEST_F(TilingTest, GreedyPicksDenseAreasFirst) {
  // Tile gains are non-increasing in a pure greedy (each pick maximizes
  // the remaining gain). Fiber collisions can perturb this slightly, so
  // allow a small tolerance.
  TilingOptions opt;
  opt.target_coverage = 0.9;
  auto result = PlaceTiles(*targets_, opt);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->tiles.size(), 2u);
  size_t first = result->tiles.front().assigned.size();
  size_t last = result->tiles.back().assigned.size();
  EXPECT_GE(first, last);
}

TEST_F(TilingTest, MaxTilesCapsTheRun) {
  TilingOptions opt;
  opt.max_tiles = 3;
  auto result = PlaceTiles(*targets_, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->tiles.size(), 3u);
}

TEST_F(TilingTest, DeterministicOutput) {
  auto a = PlaceTiles(*targets_);
  auto b = PlaceTiles(*targets_);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->tiles.size(), b->tiles.size());
  for (size_t i = 0; i < a->tiles.size(); ++i) {
    EXPECT_EQ(a->tiles[i].assigned, b->tiles[i].assigned);
  }
}

TEST(TilingEdgeTest, EmptyTargetsYieldEmptyResult) {
  auto result = PlaceTiles({});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tiles.empty());
  EXPECT_EQ(result->targets_total, 0u);
  EXPECT_DOUBLE_EQ(result->CoverageFraction(), 1.0);
}

TEST(TilingEdgeTest, InvalidOptionsRejected) {
  std::vector<Target> targets(1);
  TilingOptions bad_radius;
  bad_radius.tile_radius_deg = 0.0;
  EXPECT_FALSE(PlaceTiles(targets, bad_radius).ok());
  TilingOptions bad_fibers;
  bad_fibers.fibers_per_tile = 0;
  EXPECT_FALSE(PlaceTiles(targets, bad_fibers).ok());
}

TEST(TilingEdgeTest, SingleTargetGetsOneTile) {
  Target t;
  t.obj_id = 1;
  t.pos = Vec3(1, 0, 0);
  auto result = PlaceTiles({t});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tiles.size(), 1u);
  EXPECT_EQ(result->tiles[0].assigned, std::vector<uint64_t>{1});
  EXPECT_EQ(result->targets_assigned, 1u);
}

TEST(TilingEdgeTest, CollidingPairLosesOneFiberPerTile) {
  // Two targets 10 arcsec apart: one tile cannot take both; a second
  // tile picks up the remainder.
  Target a, b;
  a.obj_id = 1;
  a.pos = UnitVectorFromSpherical(100.0, 10.0);
  b.obj_id = 2;
  b.pos = UnitVectorFromSpherical(100.0 + ArcsecToDeg(10.0), 10.0);
  auto result = PlaceTiles({a, b});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->targets_assigned, 2u);
  EXPECT_EQ(result->tiles.size(), 2u);  // Overlapping tiles, as designed.
  EXPECT_EQ(result->tiles[0].collisions_skipped, 1u);
}

}  // namespace
}  // namespace sdss::catalog
