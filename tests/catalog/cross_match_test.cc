#include "catalog/cross_match.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "catalog/sky_generator.h"
#include "core/angle.h"
#include "core/random.h"

namespace sdss::catalog {
namespace {

// Builds a base catalog plus a "second survey" that re-observes a subset
// of its objects with a small astrometric error.
struct TwoSurveys {
  ObjectStore a;
  ObjectStore b;
  std::map<uint64_t, uint64_t> truth;  // a.obj_id -> b.obj_id.
};

TwoSurveys MakeSurveys(double error_arcsec, double reobserve_fraction) {
  TwoSurveys out;
  SkyModel m;
  m.seed = 55;
  m.num_galaxies = 3000;
  m.num_stars = 1000;
  m.num_quasars = 50;
  auto objs = SkyGenerator(m).Generate();
  EXPECT_TRUE(out.a.BulkLoad(objs).ok());

  Rng rng(77);
  std::vector<PhotoObj> second;
  uint64_t next_id = 1'000'000;
  for (const auto& o : objs) {
    if (!rng.Bernoulli(reobserve_fraction)) continue;
    PhotoObj copy = o;
    copy.obj_id = next_id++;
    copy.pos = rng.UnitCap(o.pos, ArcsecToRad(error_arcsec)).Normalized();
    SphericalFromUnitVector(copy.pos, &copy.ra_deg, &copy.dec_deg);
    second.push_back(copy);
    out.truth[o.obj_id] = copy.obj_id;
  }
  EXPECT_TRUE(out.b.BulkLoad(second).ok());
  return out;
}

TEST(CrossMatchTest, FindsReobservedObjects) {
  TwoSurveys s = MakeSurveys(0.5, 0.3);
  CrossMatchOptions opt;
  opt.radius_arcsec = 2.0;
  CrossMatchStats stats;
  auto matches = CrossMatch(s.a, s.b, opt, &stats);

  // Every re-observed object must be matched to its counterpart (the sky
  // is sparse enough that nearest-neighbor is the truth).
  std::map<uint64_t, uint64_t> found;
  for (const auto& m : matches) found[m.obj_id_a] = m.obj_id_b;
  size_t correct = 0;
  for (const auto& [a_id, b_id] : s.truth) {
    auto it = found.find(a_id);
    if (it != found.end() && it->second == b_id) ++correct;
  }
  EXPECT_GE(correct, s.truth.size() * 99 / 100);
  EXPECT_EQ(stats.matches, matches.size());
}

TEST(CrossMatchTest, SeparationsAreWithinRadius) {
  TwoSurveys s = MakeSurveys(0.5, 0.2);
  CrossMatchOptions opt;
  opt.radius_arcsec = 2.0;
  auto matches = CrossMatch(s.a, s.b, opt);
  for (const auto& m : matches) {
    EXPECT_LE(m.separation_arcsec, 2.0 + 1e-9);
    EXPECT_GE(m.separation_arcsec, 0.0);
  }
}

TEST(CrossMatchTest, BestMatchKeepsOnePerObject) {
  TwoSurveys s = MakeSurveys(0.3, 0.5);
  CrossMatchOptions opt;
  opt.radius_arcsec = 5.0;
  opt.best_match_only = true;
  auto matches = CrossMatch(s.a, s.b, opt);
  std::map<uint64_t, int> counts;
  for (const auto& m : matches) ++counts[m.obj_id_a];
  for (const auto& [id, n] : counts) EXPECT_EQ(n, 1) << id;
}

TEST(CrossMatchTest, AllMatchesModeCanReturnMore) {
  TwoSurveys s = MakeSurveys(0.3, 0.9);
  CrossMatchOptions best;
  best.radius_arcsec = 60.0;
  best.best_match_only = true;
  CrossMatchOptions all = best;
  all.best_match_only = false;
  auto best_matches = CrossMatch(s.a, s.b, best);
  auto all_matches = CrossMatch(s.a, s.b, all);
  EXPECT_GE(all_matches.size(), best_matches.size());
}

TEST(CrossMatchTest, NoMatchesAcrossEmptyCatalog) {
  TwoSurveys s = MakeSurveys(0.5, 0.0);  // Nothing re-observed.
  CrossMatchOptions opt;
  auto matches = CrossMatch(s.a, s.b, opt);
  EXPECT_TRUE(matches.empty());
}

TEST(CrossMatchTest, PruningAvoidsFullCrossProduct) {
  TwoSurveys s = MakeSurveys(0.5, 0.5);
  CrossMatchOptions opt;
  opt.radius_arcsec = 2.0;
  CrossMatchStats stats;
  auto matches = CrossMatch(s.a, s.b, opt, &stats);
  (void)matches;
  uint64_t cross_product = s.a.object_count() * s.b.object_count();
  // The HTM-pruned candidate tests must be a vanishing fraction of N*M.
  EXPECT_LT(stats.candidates_tested, cross_product / 100);
}

TEST(CrossMatchTest, MatchesBruteForceOnSmallCatalog) {
  TwoSurveys s = MakeSurveys(1.0, 0.4);
  CrossMatchOptions opt;
  opt.radius_arcsec = 3.0;
  opt.best_match_only = false;
  auto matches = CrossMatch(s.a, s.b, opt);

  // Brute force reference.
  std::vector<std::pair<uint64_t, uint64_t>> brute;
  double cos_r = std::cos(ArcsecToRad(3.0));
  s.a.ForEachObject([&](const PhotoObj& oa) {
    s.b.ForEachObject([&](const PhotoObj& ob) {
      if (oa.pos.Dot(ob.pos) >= cos_r) brute.emplace_back(oa.obj_id,
                                                          ob.obj_id);
    });
  });
  std::vector<std::pair<uint64_t, uint64_t>> got;
  for (const auto& m : matches) got.emplace_back(m.obj_id_a, m.obj_id_b);
  std::sort(brute.begin(), brute.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, brute);
}

}  // namespace
}  // namespace sdss::catalog
