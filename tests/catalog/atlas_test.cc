#include "catalog/atlas.h"

#include <gtest/gtest.h>

#include "catalog/sky_generator.h"
#include "core/coords.h"

namespace sdss::catalog {
namespace {

PhotoObj MakeStar(float r_mag = 18.0f) {
  PhotoObj o;
  o.obj_id = 1;
  o.pos = UnitVectorFromSpherical(10, 10);
  o.obj_class = ObjClass::kStar;
  o.mag = {r_mag + 1.0f, r_mag + 0.5f, r_mag, r_mag - 0.2f, r_mag - 0.3f};
  o.petro_radius_arcsec = 1.4f;
  return o;
}

PhotoObj MakeGalaxy(float r_mag = 18.0f, float radius = 5.0f) {
  PhotoObj o = MakeStar(r_mag);
  o.obj_id = 2;
  o.obj_class = ObjClass::kGalaxy;
  o.petro_radius_arcsec = radius;
  return o;
}

TEST(AtlasTest, CutoutIsCenteredAndPeaked) {
  AtlasOptions opt;
  fits::Image img = RenderCutout(MakeStar(), kR, opt);
  ASSERT_EQ(img.width(), opt.size_pixels);
  ASSERT_EQ(img.height(), opt.size_pixels);
  // The peak is at the central pixels and above sky everywhere nearby.
  size_t c = opt.size_pixels / 2;
  float peak = img.MaxPixel();
  EXPECT_GE(img.at(c, c), peak * 0.8f);
  EXPECT_GT(img.at(c, c), opt.sky_level);
  // Corners are essentially sky.
  EXPECT_NEAR(img.at(0, 0), opt.sky_level, opt.sky_level * 0.1f + 1.0f);
}

TEST(AtlasTest, FluxDecreasesOutward) {
  AtlasOptions opt;
  fits::Image img = RenderCutout(MakeGalaxy(), kR, opt);
  size_t c = opt.size_pixels / 2;
  float prev = img.at(c, c);
  for (size_t dx = 1; dx < opt.size_pixels / 2; dx += 2) {
    float v = img.at(c + dx, c);
    EXPECT_LE(v, prev * 1.001f) << dx;
    prev = v;
  }
}

TEST(AtlasTest, GalaxiesAreBroaderThanStars) {
  AtlasOptions opt;
  fits::Image star = RenderCutout(MakeStar(18.0f), kR, opt);
  fits::Image galaxy = RenderCutout(MakeGalaxy(18.0f, 6.0f), kR, opt);
  // Equal total flux, so the broader profile has a lower peak.
  EXPECT_GT(star.MaxPixel(), galaxy.MaxPixel());
  // And more flux outside the core.
  size_t c = opt.size_pixels / 2;
  EXPECT_GT(galaxy.at(c + 8, c), star.at(c + 8, c));
}

TEST(AtlasTest, PhotometryClosesTheLoop) {
  // mag -> pixels -> aperture photometry -> mag, within a few percent
  // (aperture losses for the galaxy's extended wings).
  AtlasOptions opt;
  for (float mag : {16.0f, 18.0f, 20.0f}) {
    fits::Image star = RenderCutout(MakeStar(mag), kR, opt);
    double measured = MeasureMagnitude(star, opt);
    EXPECT_NEAR(measured, mag, 0.05) << "star mag " << mag;
  }
  fits::Image galaxy = RenderCutout(MakeGalaxy(18.0f, 3.0f), kR, opt);
  EXPECT_NEAR(MeasureMagnitude(galaxy, opt), 18.0, 0.3);
}

TEST(AtlasTest, BrighterMeansMoreCounts) {
  AtlasOptions opt;
  fits::Image bright = RenderCutout(MakeStar(16.0f), kR, opt);
  fits::Image faint = RenderCutout(MakeStar(20.0f), kR, opt);
  double sky_total = static_cast<double>(opt.sky_level) *
                     static_cast<double>(opt.size_pixels) *
                     static_cast<double>(opt.size_pixels);
  double bright_flux = bright.TotalFlux() - sky_total;
  double faint_flux = faint.TotalFlux() - sky_total;
  // 4 magnitudes = x39.8 in flux.
  EXPECT_NEAR(bright_flux / faint_flux, 39.8, 4.0);
}

TEST(AtlasTest, FiveBandAtlasRoundTrips) {
  PhotoObj o = MakeGalaxy();
  std::string bytes = SerializeAtlas(o);
  EXPECT_EQ(bytes.size() % fits::kBlockSize, 0u);
  auto atlas = ParseAtlas(bytes);
  ASSERT_TRUE(atlas.ok()) << atlas.status().ToString();
  AtlasOptions opt;
  for (int b = 0; b < kNumBands; ++b) {
    EXPECT_EQ((*atlas)[b].width(), opt.size_pixels);
    // Brighter bands carry more flux (per the object's colors).
  }
  // Per-band flux ordering follows the magnitudes: r brighter than u.
  double flux_u = (*atlas)[kU].TotalFlux();
  double flux_r = (*atlas)[kR].TotalFlux();
  EXPECT_GT(flux_r, flux_u);
}

TEST(AtlasTest, AtlasHeadersIdentifyObjectAndBand) {
  PhotoObj o = MakeStar();
  o.obj_id = 777;
  std::string bytes = SerializeAtlas(o);
  size_t offset = 0;
  fits::Header header;
  auto img = fits::Image::Parse(bytes, &offset, &header);
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(*header.GetInt("OBJID"), 777);
  EXPECT_EQ(*header.GetString("BAND"), "U");
}

TEST(AtlasTest, CutoutSizeMatchesTable1Accounting) {
  // The paper's atlas budget is ~1.5 KB per cutout; a 32x32 int16 HDU is
  // 2 KB of pixels + header, i.e. the right order of magnitude before
  // compression.
  PhotoObj o = MakeStar();
  AtlasOptions opt;
  std::string one = RenderCutout(o, kR, opt).Serialize();
  EXPECT_GE(one.size(), 2 * fits::kBlockSize);  // Header + pixels.
  EXPECT_LE(one.size(), 3 * fits::kBlockSize);
}

TEST(AtlasTest, EmptyFluxIsNonDetection) {
  AtlasOptions opt;
  fits::Image blank(opt.size_pixels, opt.size_pixels);
  for (size_t y = 0; y < opt.size_pixels; ++y) {
    for (size_t x = 0; x < opt.size_pixels; ++x) {
      blank.set(x, y, opt.sky_level);
    }
  }
  EXPECT_DOUBLE_EQ(MeasureMagnitude(blank, opt), 99.0);
}

}  // namespace
}  // namespace sdss::catalog
