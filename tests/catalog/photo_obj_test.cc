#include "catalog/photo_obj.h"

#include <gtest/gtest.h>

#include "core/coords.h"

namespace sdss::catalog {
namespace {

PhotoObj MakeObj() {
  PhotoObj o;
  o.obj_id = 42;
  o.pos = UnitVectorFromSpherical(120.0, 30.0);
  o.ra_deg = 120.0;
  o.dec_deg = 30.0;
  o.mag = {19.5f, 18.2f, 17.5f, 17.1f, 16.8f};
  o.mag_err = {0.05f, 0.02f, 0.02f, 0.03f, 0.06f};
  o.petro_radius_arcsec = 3.5f;
  o.surface_brightness = 21.0f;
  o.redshift = 0.12f;
  o.flags = kFlagSpectroTarget | kFlagBlended;
  o.obj_class = ObjClass::kGalaxy;
  o.htm_leaf = 12345;
  for (int i = 0; i < kProfileBins; ++i) {
    o.profile[i] = 1.0f / static_cast<float>(i + 1);
  }
  return o;
}

TEST(PhotoObjTest, ColorIndices) {
  PhotoObj o = MakeObj();
  EXPECT_NEAR(o.Color(kU, kG), 1.3f, 1e-5);
  EXPECT_NEAR(o.Color(kG, kR), 0.7f, 1e-5);
  EXPECT_NEAR(o.Color(kR, kI), 0.4f, 1e-5);
}

TEST(PhotoObjTest, ClassNamesRoundTrip) {
  for (ObjClass c : {ObjClass::kUnknown, ObjClass::kStar, ObjClass::kGalaxy,
                     ObjClass::kQuasar}) {
    auto parsed = ObjClassFromName(ObjClassName(c));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_EQ(*ObjClassFromName("quasar"), ObjClass::kQuasar);
  EXPECT_EQ(*ObjClassFromName("gal"), ObjClass::kGalaxy);
  EXPECT_FALSE(ObjClassFromName("nebula").ok());
}

TEST(PhotoObjTest, GetAttributeCoreFields) {
  PhotoObj o = MakeObj();
  EXPECT_DOUBLE_EQ(*GetAttribute(o, "obj_id"), 42.0);
  EXPECT_DOUBLE_EQ(*GetAttribute(o, "ra"), 120.0);
  EXPECT_DOUBLE_EQ(*GetAttribute(o, "dec"), 30.0);
  EXPECT_DOUBLE_EQ(*GetAttribute(o, "cx"), o.pos.x);
  EXPECT_DOUBLE_EQ(*GetAttribute(o, "cy"), o.pos.y);
  EXPECT_DOUBLE_EQ(*GetAttribute(o, "cz"), o.pos.z);
  EXPECT_NEAR(*GetAttribute(o, "u"), 19.5, 1e-6);
  EXPECT_NEAR(*GetAttribute(o, "z"), 16.8, 1e-6);
  EXPECT_NEAR(*GetAttribute(o, "err_g"), 0.02, 1e-6);
  EXPECT_NEAR(*GetAttribute(o, "size"), 3.5, 1e-6);
  EXPECT_NEAR(*GetAttribute(o, "sb"), 21.0, 1e-6);
  EXPECT_NEAR(*GetAttribute(o, "redshift"), 0.12, 1e-6);
  EXPECT_DOUBLE_EQ(*GetAttribute(o, "class"),
                   static_cast<double>(ObjClass::kGalaxy));
  EXPECT_DOUBLE_EQ(*GetAttribute(o, "htm"), 12345.0);
  EXPECT_NEAR(*GetAttribute(o, "profile3"), 0.25, 1e-6);
}

TEST(PhotoObjTest, GetAttributeUnknownIsNotFound) {
  PhotoObj o = MakeObj();
  EXPECT_EQ(GetAttribute(o, "bogus").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(GetAttribute(o, "profile9").ok());
}

TEST(PhotoObjTest, AttributeNamesAllResolve) {
  PhotoObj o = MakeObj();
  for (const std::string& name : PhotoAttributeNames()) {
    EXPECT_TRUE(GetAttribute(o, name).ok()) << name;
  }
}

TEST(TagObjTest, FromPhotoProjectsTenAttributes) {
  PhotoObj o = MakeObj();
  TagObj t = TagObj::FromPhoto(o);
  EXPECT_EQ(t.obj_id, o.obj_id);
  EXPECT_NEAR(t.cx, o.pos.x, 1e-6);
  EXPECT_NEAR(t.cy, o.pos.y, 1e-6);
  EXPECT_NEAR(t.cz, o.pos.z, 1e-6);
  for (int b = 0; b < kNumBands; ++b) EXPECT_EQ(t.mag[b], o.mag[b]);
  EXPECT_EQ(t.size_arcsec, o.petro_radius_arcsec);
  EXPECT_EQ(t.obj_class, static_cast<uint8_t>(o.obj_class));
}

TEST(TagObjTest, TagIsMuchSmallerThanPaperFullObject) {
  // The vertical-partition premise: tag bytes << full-object bytes.
  EXPECT_LE(sizeof(TagObj), 56u);
  EXPECT_GE(kPaperBytesPerPhotoObj / kPaperBytesPerTagObj, 10u);
}

TEST(TagObjTest, GetTagAttribute) {
  TagObj t = TagObj::FromPhoto(MakeObj());
  EXPECT_NEAR(*GetTagAttribute(t, "r"), 17.5, 1e-6);
  EXPECT_NEAR(*GetTagAttribute(t, "size"), 3.5, 1e-6);
  EXPECT_DOUBLE_EQ(*GetTagAttribute(t, "class"), 2.0);
  EXPECT_FALSE(GetTagAttribute(t, "redshift").ok());
  EXPECT_FALSE(GetTagAttribute(t, "ra").ok());
}

TEST(TagObjTest, PositionRecoversDirection) {
  PhotoObj o = MakeObj();
  TagObj t = TagObj::FromPhoto(o);
  // Float precision: ~1e-7 relative, i.e. well under an arcsecond.
  EXPECT_LT(t.Position().AngleTo(o.pos), 1e-6);
}

TEST(TagObjTest, IsTagAttribute) {
  for (const char* n : {"cx", "cy", "cz", "u", "g", "r", "i", "z", "size",
                        "class", "obj_id"}) {
    EXPECT_TRUE(IsTagAttribute(n)) << n;
  }
  for (const char* n : {"ra", "dec", "redshift", "sb", "flags", "err_r",
                        "profile0"}) {
    EXPECT_FALSE(IsTagAttribute(n)) << n;
  }
}

TEST(SpecObjTest, DefaultsAreSane) {
  SpecObj s;
  EXPECT_EQ(s.spec_id, 0u);
  EXPECT_EQ(s.spec_class, ObjClass::kUnknown);
  EXPECT_FLOAT_EQ(s.redshift, 0.0f);
}

TEST(PhotoObjTest, RowRoundTripPreservesEveryQueryableAttribute) {
  PhotoObj original = MakeObj();
  const std::vector<std::string>& names = PhotoAttributeNames();
  std::vector<double> values;
  for (const std::string& name : names) {
    auto v = GetAttribute(original, name);
    ASSERT_TRUE(v.ok()) << name;
    values.push_back(*v);
  }
  auto rebuilt = PhotoObjFromRow(names, values);
  ASSERT_TRUE(rebuilt.ok());
  // The rebuilt object must be indistinguishable through GetAttribute:
  // that is the invariant the MyDB INTO materialization relies on.
  for (const std::string& name : names) {
    auto a = GetAttribute(original, name);
    auto b = GetAttribute(*rebuilt, name);
    ASSERT_TRUE(b.ok()) << name;
    EXPECT_EQ(*a, *b) << name;
  }
  EXPECT_EQ(rebuilt->obj_id, original.obj_id);
  EXPECT_EQ(rebuilt->obj_class, original.obj_class);
  EXPECT_EQ(rebuilt->flags, original.flags);
  EXPECT_DOUBLE_EQ(rebuilt->pos.x, original.pos.x);
}

TEST(PhotoObjTest, RowRejectsUnknownOrMismatchedInput) {
  EXPECT_FALSE(PhotoObjFromRow({"nonsense"}, {1.0}).ok());
  EXPECT_FALSE(PhotoObjFromRow({"r", "g"}, {1.0}).ok());
  auto partial = PhotoObjFromRow({"r"}, {19.0});
  ASSERT_TRUE(partial.ok());  // Missing attributes keep defaults.
  EXPECT_FLOAT_EQ(partial->mag[kR], 19.0f);
}

}  // namespace
}  // namespace sdss::catalog
