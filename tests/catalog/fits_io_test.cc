#include "catalog/fits_io.h"

#include <gtest/gtest.h>

#include "catalog/sky_generator.h"

namespace sdss::catalog {
namespace {

std::vector<PhotoObj> SmallSky() {
  SkyModel m;
  m.seed = 21;
  m.num_galaxies = 800;
  m.num_stars = 500;
  m.num_quasars = 20;
  return SkyGenerator(m).Generate();
}

TEST(FitsIoTest, PhotoObjTableRoundTrip) {
  auto objs = SmallSky();
  fits::Table table = PhotoObjsToTable(objs);
  EXPECT_EQ(table.num_rows(), objs.size());

  auto back = PhotoObjsFromTable(table);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), objs.size());
  for (size_t i = 0; i < objs.size(); i += 37) {
    const PhotoObj& a = objs[i];
    const PhotoObj& b = (*back)[i];
    EXPECT_EQ(a.obj_id, b.obj_id);
    EXPECT_LT(a.pos.AngleTo(b.pos), 1e-12);
    EXPECT_EQ(a.mag, b.mag);
    EXPECT_EQ(a.mag_err, b.mag_err);
    EXPECT_EQ(a.profile, b.profile);
    EXPECT_EQ(a.flags, b.flags);
    EXPECT_EQ(a.obj_class, b.obj_class);
    EXPECT_FLOAT_EQ(a.redshift, b.redshift);
    // Derived fields are recomputed consistently.
    EXPECT_NEAR(a.ra_deg, b.ra_deg, 1e-9);
    EXPECT_EQ(a.htm_leaf, b.htm_leaf);
  }
}

TEST(FitsIoTest, TagObjTableRoundTrip) {
  auto objs = SmallSky();
  std::vector<TagObj> tags;
  for (const auto& o : objs) tags.push_back(TagObj::FromPhoto(o));
  fits::Table table = TagObjsToTable(tags);
  auto back = TagObjsFromTable(table);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), tags.size());
  for (size_t i = 0; i < tags.size(); i += 23) {
    EXPECT_EQ((*back)[i].obj_id, tags[i].obj_id);
    EXPECT_EQ((*back)[i].mag, tags[i].mag);
    EXPECT_EQ((*back)[i].obj_class, tags[i].obj_class);
    EXPECT_FLOAT_EQ((*back)[i].cx, tags[i].cx);
  }
}

TEST(FitsIoTest, StorePacketStreamRoundTrip) {
  ObjectStore store;
  ASSERT_TRUE(store.BulkLoad(SmallSky()).ok());
  std::string bytes = StoreToPacketStream(store, 256);
  EXPECT_GT(bytes.size(), 0u);
  EXPECT_EQ(bytes.size() % fits::kBlockSize, 0u);

  auto back = StoreFromPacketStream(bytes, store.options());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->object_count(), store.object_count());
  EXPECT_EQ(back->container_count(), store.container_count());
  EXPECT_EQ(back->DensityMap(), store.DensityMap());
}

TEST(FitsIoTest, AsciiStreamAlsoRoundTrips) {
  ObjectStore store;
  SkyModel m;
  m.seed = 3;
  m.num_galaxies = 100;
  m.num_stars = 50;
  m.num_quasars = 5;
  ASSERT_TRUE(store.BulkLoad(SkyGenerator(m).Generate()).ok());
  std::string bytes =
      StoreToPacketStream(store, 64, fits::StreamEncoding::kAscii);
  auto back = StoreFromPacketStream(bytes, store.options());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->object_count(), store.object_count());
}

TEST(FitsIoTest, SchemaIsSelfDescribing) {
  // A consumer can discover the column layout from the stream itself.
  ObjectStore store;
  SkyModel m;
  m.num_galaxies = 10;
  m.num_stars = 0;
  m.num_quasars = 0;
  ASSERT_TRUE(store.BulkLoad(SkyGenerator(m).Generate()).ok());
  std::string bytes = StoreToPacketStream(store, 8);
  size_t offset = 0;
  fits::Header header;
  auto table = fits::BinaryTable::Parse(bytes, &offset, &header);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*header.GetString("XTENSION"), "BINTABLE");
  EXPECT_TRUE(header.GetInt("PKTSEQ").ok());
  EXPECT_TRUE(table->ColumnIndex("OBJ_ID").ok());
  EXPECT_TRUE(table->ColumnIndex("MAG_R").ok());
}

TEST(FitsIoTest, CorruptStreamIsRejected) {
  ObjectStore store;
  SkyModel m;
  m.num_galaxies = 50;
  m.num_stars = 0;
  m.num_quasars = 0;
  ASSERT_TRUE(store.BulkLoad(SkyGenerator(m).Generate()).ok());
  std::string bytes = StoreToPacketStream(store, 16);
  bytes.resize(bytes.size() / 2);  // Truncate mid-stream.
  auto back = StoreFromPacketStream(bytes, store.options());
  EXPECT_FALSE(back.ok());
}

}  // namespace
}  // namespace sdss::catalog
