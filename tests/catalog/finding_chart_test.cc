#include "catalog/finding_chart.h"

#include <gtest/gtest.h>

#include "catalog/sky_generator.h"
#include "core/coords.h"

namespace sdss::catalog {
namespace {

class FindingChartTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    SkyModel m;
    m.seed = 321;
    m.num_galaxies = 30000;
    m.num_stars = 20000;
    m.num_quasars = 400;
    store_ = new ObjectStore();
    ASSERT_TRUE(store_->BulkLoad(SkyGenerator(m).Generate()).ok());
    // A chart center guaranteed to be on the footprint.
    SphericalCoord c = ToSpherical(
        EquatorialUnitVector({0.0, 90.0, Frame::kGalactic}),
        Frame::kEquatorial);
    center_ra_ = c.lon_deg;
    center_dec_ = c.lat_deg;
  }
  static void TearDownTestSuite() {
    delete store_;
    store_ = nullptr;
  }
  static ObjectStore* store_;
  static double center_ra_;
  static double center_dec_;
};

ObjectStore* FindingChartTest::store_ = nullptr;
double FindingChartTest::center_ra_ = 0;
double FindingChartTest::center_dec_ = 0;

ChartOptions Opts(double radius = 1.0) {
  ChartOptions o;
  o.ra_deg = FindingChartTest::center_ra_;
  o.dec_deg = FindingChartTest::center_dec_;
  o.radius_deg = radius;
  o.faint_limit_r = 23.0f;
  return o;
}

TEST_F(FindingChartTest, ChartContainsObjectsAndLegend) {
  auto chart = RenderFindingChart(*store_, Opts());
  ASSERT_TRUE(chart.ok()) << chart.status().ToString();
  EXPECT_FALSE(chart->entries.empty());
  EXPECT_NE(chart->ascii.find("legend:"), std::string::npos);
  EXPECT_NE(chart->ascii.find('+'), std::string::npos);  // Field center.
  EXPECT_NE(chart->ascii.find("brightest objects:"), std::string::npos);
}

TEST_F(FindingChartTest, EntriesAreWithinRadiusAndSorted) {
  ChartOptions opt = Opts(0.8);
  auto chart = RenderFindingChart(*store_, opt);
  ASSERT_TRUE(chart.ok());
  Vec3 center = UnitVectorFromSpherical(opt.ra_deg, opt.dec_deg);
  float prev = -100.0f;
  for (const ChartEntry& e : chart->entries) {
    Vec3 p = UnitVectorFromSpherical(e.ra_deg, e.dec_deg);
    EXPECT_LE(RadToDeg(center.AngleTo(p)), opt.radius_deg + 1e-9);
    EXPECT_LE(e.r_mag, opt.faint_limit_r);
    EXPECT_GE(e.r_mag, prev);
    prev = e.r_mag;
  }
}

TEST_F(FindingChartTest, FaintLimitFilters) {
  ChartOptions deep = Opts();
  deep.faint_limit_r = 23.0f;
  ChartOptions shallow = Opts();
  shallow.faint_limit_r = 18.0f;
  auto d = RenderFindingChart(*store_, deep);
  auto s = RenderFindingChart(*store_, shallow);
  ASSERT_TRUE(d.ok() && s.ok());
  EXPECT_GT(d->entries.size(), s->entries.size());
}

TEST_F(FindingChartTest, GlyphsMatchClasses) {
  auto chart = RenderFindingChart(*store_, Opts(1.5));
  ASSERT_TRUE(chart.ok());
  for (const ChartEntry& e : chart->entries) {
    if (e.glyph == '.') continue;  // Faint rendering.
    switch (e.obj_class) {
      case ObjClass::kStar:
        EXPECT_EQ(e.glyph, '*');
        break;
      case ObjClass::kGalaxy:
        EXPECT_EQ(e.glyph, 'o');
        break;
      case ObjClass::kQuasar:
        EXPECT_EQ(e.glyph, 'Q');
        break;
      default:
        break;
    }
  }
}

TEST_F(FindingChartTest, RasterDimensionsHonored) {
  ChartOptions opt = Opts();
  opt.columns = 21;
  opt.rows = 11;
  auto chart = RenderFindingChart(*store_, opt);
  ASSERT_TRUE(chart.ok());
  // Count chart body lines between the borders: rows lines of width
  // columns + 2 ('|' borders).
  size_t body_lines = 0;
  size_t pos = 0;
  while ((pos = chart->ascii.find("\n|", pos)) != std::string::npos) {
    ++body_lines;
    ++pos;
  }
  EXPECT_EQ(body_lines, 11u);
}

TEST_F(FindingChartTest, InvalidOptionsRejected) {
  ChartOptions bad_radius = Opts();
  bad_radius.radius_deg = 0.0;
  EXPECT_FALSE(RenderFindingChart(*store_, bad_radius).ok());
  ChartOptions bad_raster = Opts();
  bad_raster.columns = 1;
  EXPECT_FALSE(RenderFindingChart(*store_, bad_raster).ok());
}

TEST_F(FindingChartTest, EmptyFieldStillRenders) {
  ChartOptions opt;
  opt.ra_deg = 0.0;
  opt.dec_deg = -60.0;  // Far off the survey footprint.
  opt.radius_deg = 0.2;
  auto chart = RenderFindingChart(*store_, opt);
  ASSERT_TRUE(chart.ok());
  EXPECT_TRUE(chart->entries.empty());
  EXPECT_NE(chart->ascii.find('+'), std::string::npos);
}

}  // namespace
}  // namespace sdss::catalog
