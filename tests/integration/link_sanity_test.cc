// Build-graph smoke test: links every module library and exercises one
// symbol *defined in a .cc file* of each, so a broken inter-module link
// dependency fails here rather than deep inside a feature test.

#include <gtest/gtest.h>

#include <string>

#include "archive/archive.h"
#include "catalog/photo_obj.h"
#include "core/status.h"
#include "dataflow/cluster.h"
#include "fits/card.h"
#include "htm/htm_id.h"
#include "persist/crc32.h"
#include "query/parser.h"
#include "server/protocol.h"
#include "workbench/job_queue.h"

namespace {

TEST(LinkSanityTest, CoreStatusCodeName) {
  EXPECT_STREQ(sdss::StatusCodeName(sdss::StatusCode::kOk), "OK");
}

TEST(LinkSanityTest, HtmBaseTrixel) {
  sdss::htm::HtmId id = sdss::htm::HtmId::Base(0);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.level(), 0);
}

TEST(LinkSanityTest, FitsCardSerializesTo80Chars) {
  sdss::fits::Card card("SIMPLE", true, "conforms to FITS standard");
  EXPECT_EQ(card.Serialize().size(), 80u);
}

TEST(LinkSanityTest, CatalogObjClassRoundTrip) {
  const char* name = sdss::catalog::ObjClassName(sdss::catalog::ObjClass::kGalaxy);
  auto parsed = sdss::catalog::ObjClassFromName(name);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), sdss::catalog::ObjClass::kGalaxy);
}

TEST(LinkSanityTest, DataflowClusterConstructs) {
  sdss::dataflow::ClusterSim cluster{sdss::dataflow::ClusterConfig{}};
  EXPECT_EQ(cluster.num_nodes(), 20u);
}

TEST(LinkSanityTest, PersistCrc32OfEmptyInput) {
  EXPECT_EQ(sdss::persist::Crc32(nullptr, 0), 0u);
}

TEST(LinkSanityTest, QueryParserAccepts) {
  auto parsed = sdss::query::Parse("SELECT COUNT(*) FROM PHOTO WHERE r < 22");
  EXPECT_TRUE(parsed.ok());
}

TEST(LinkSanityTest, ArchiveTierName) {
  EXPECT_NE(sdss::archive::TierName(sdss::archive::Tier::kTelescope),
            std::string());
}

TEST(LinkSanityTest, WorkbenchLaneName) {
  EXPECT_STREQ(sdss::workbench::LaneName(sdss::workbench::Lane::kLong),
               "LONG");
}

TEST(LinkSanityTest, ServerMsgTypeName) {
  EXPECT_STREQ(sdss::server::MsgTypeName(sdss::server::MsgType::kBusy),
               "BUSY");
}

}  // namespace
