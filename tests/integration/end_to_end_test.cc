// Integration tests across the whole system: the survey lifecycle from
// observation chunks through loading, archive publication, replication,
// querying, dataflow analysis, and FITS interchange -- verifying that the
// modules compose and agree with each other.

#include <gtest/gtest.h>

#include <set>

#include "archive/archive.h"
#include "archive/replication.h"
#include "catalog/cross_match.h"
#include "catalog/fits_io.h"
#include "catalog/loader.h"
#include "catalog/sky_generator.h"
#include "catalog/tiling.h"
#include "dataflow/hash_machine.h"
#include "dataflow/river.h"
#include "dataflow/scan_machine.h"
#include "query/query_engine.h"

namespace sdss {
namespace {

using catalog::Chunk;
using catalog::ChunkLoader;
using catalog::ObjClass;
using catalog::ObjectStore;
using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SkyModel;

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SkyModel m;
    m.seed = 314;
    m.num_galaxies = 10000;
    m.num_stars = 7000;
    m.num_quasars = 200;
    generator_ = new SkyGenerator(m);
    chunks_ = new std::vector<Chunk>(generator_->GenerateChunks(8));

    store_ = new ObjectStore();
    pipeline_ = new archive::ArchivePipeline();
    ChunkLoader loader;
    SimSeconds night = 0.0;
    for (const Chunk& chunk : *chunks_) {
      auto stats = loader.LoadClustered(store_, chunk);
      ASSERT_TRUE(stats.ok());
      ASSERT_TRUE(pipeline_
                      ->ObserveChunk(chunk.night, stats->objects,
                                     chunk.PaperBytes(), night)
                      .ok());
      night += kSimDay;
    }
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete store_;
    delete chunks_;
    delete generator_;
    pipeline_ = nullptr;
    store_ = nullptr;
    chunks_ = nullptr;
    generator_ = nullptr;
  }

  static SkyGenerator* generator_;
  static std::vector<Chunk>* chunks_;
  static ObjectStore* store_;
  static archive::ArchivePipeline* pipeline_;
};

SkyGenerator* EndToEndTest::generator_ = nullptr;
std::vector<Chunk>* EndToEndTest::chunks_ = nullptr;
ObjectStore* EndToEndTest::store_ = nullptr;
archive::ArchivePipeline* EndToEndTest::pipeline_ = nullptr;

TEST_F(EndToEndTest, LoaderPreservedEveryChunkObject) {
  uint64_t expected = 0;
  for (const Chunk& c : *chunks_) expected += c.objects.size();
  EXPECT_EQ(store_->object_count(), expected);
}

TEST_F(EndToEndTest, ArchiveTracksTheWholeCampaign) {
  // Everything is in the OA shortly after the campaign, nothing public.
  SimSeconds end = 10 * kSimDay;
  EXPECT_EQ(pipeline_->ObjectsVisible(archive::Tier::kOperational, end),
            store_->object_count());
  EXPECT_EQ(pipeline_->ObjectsVisible(archive::Tier::kPublic, end), 0u);
  // After two years, everything is public.
  EXPECT_EQ(pipeline_->ObjectsVisible(archive::Tier::kPublic,
                                      730 * kSimDay),
            store_->object_count());
}

TEST_F(EndToEndTest, QueryAnswersMatchChunkGroundTruth) {
  query::QueryEngine engine(store_);
  auto result = engine.Execute(
      "SELECT COUNT(*) FROM photo WHERE class = 'QSO'");
  ASSERT_TRUE(result.ok());
  uint64_t truth = 0;
  for (const Chunk& c : *chunks_) {
    for (const PhotoObj& o : c.objects) {
      if (o.obj_class == ObjClass::kQuasar) ++truth;
    }
  }
  EXPECT_DOUBLE_EQ(result->aggregate_value, static_cast<double>(truth));
}

TEST_F(EndToEndTest, FitsExportReloadPreservesQueryAnswers) {
  std::string stream = catalog::StoreToPacketStream(*store_, 1024);
  auto reloaded = catalog::StoreFromPacketStream(stream, store_->options());
  ASSERT_TRUE(reloaded.ok());

  query::QueryEngine original(store_);
  query::QueryEngine restored(&reloaded.value());
  for (const char* sql :
       {"SELECT COUNT(*) FROM photo WHERE r < 19",
        "SELECT COUNT(*) FROM photo WHERE g - r > 0.8",
        "SELECT COUNT(*) FROM photo WHERE BAND('GAL', 40, 60)"}) {
    auto a = original.Execute(sql);
    auto b = restored.Execute(sql);
    ASSERT_TRUE(a.ok() && b.ok()) << sql;
    EXPECT_DOUBLE_EQ(a->aggregate_value, b->aggregate_value) << sql;
  }
}

TEST_F(EndToEndTest, ScanMachineAgreesWithQueryEngine) {
  dataflow::ClusterConfig cfg;
  cfg.num_nodes = 6;
  dataflow::ClusterSim cluster(cfg);
  ASSERT_TRUE(cluster.LoadPartitioned(*store_).ok());
  dataflow::ScanMachine machine(&cluster);
  machine.Admit([](const PhotoObj& o) { return o.mag[2] < 18.5f; }, 0.0);
  auto completions = machine.RunUntilDrained();
  ASSERT_EQ(completions.size(), 1u);

  query::QueryEngine engine(store_);
  auto result = engine.Execute("SELECT COUNT(*) FROM photo WHERE r < 18.5");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<double>(completions[0].matches),
            result->aggregate_value);
}

TEST_F(EndToEndTest, RiverAgreesWithQueryEngine) {
  dataflow::ClusterConfig cfg;
  cfg.num_nodes = 6;
  dataflow::ClusterSim cluster(cfg);
  ASSERT_TRUE(cluster.LoadPartitioned(*store_).ok());
  dataflow::River river(&cluster);
  river.Filter([](const PhotoObj& o) {
    return o.obj_class == ObjClass::kGalaxy && o.mag[2] < 19.0f;
  });
  uint64_t river_count = 0;
  river.Run([&](const PhotoObj&) { ++river_count; });

  query::QueryEngine engine(store_);
  auto result = engine.Execute(
      "SELECT COUNT(*) FROM photo WHERE class = 'GALAXY' AND r < 19");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<double>(river_count), result->aggregate_value);
}

TEST_F(EndToEndTest, ReplicationCoversEveryLoadedContainer) {
  archive::ReplicationManager mgr(archive::ReplicationOptions{8, 2});
  ASSERT_TRUE(mgr.AssignFrom(*store_).ok());
  EXPECT_EQ(mgr.containers(), store_->container_count());
  ASSERT_TRUE(mgr.MarkServerDown(2).ok());
  for (const auto& [raw, c] : store_->containers()) {
    EXPECT_TRUE(mgr.RouteRead(raw).ok()) << raw;
  }
}

TEST_F(EndToEndTest, TilingCoversSpectroTargetsSelectedFromStore) {
  auto targets = catalog::SelectTargets(*store_);
  ASSERT_FALSE(targets.empty());
  auto tiling = catalog::PlaceTiles(targets);
  ASSERT_TRUE(tiling.ok());
  EXPECT_GE(tiling->CoverageFraction(), 0.9);

  // Every tiled target exists in the store.
  std::set<uint64_t> ids;
  store_->ForEachObject([&](const PhotoObj& o) { ids.insert(o.obj_id); });
  for (const auto& tile : tiling->tiles) {
    for (uint64_t id : tile.assigned) {
      EXPECT_TRUE(ids.count(id) > 0) << id;
    }
  }
}

TEST_F(EndToEndTest, SpectraLinkBackToPhotometry) {
  auto photo = generator_->Generate();
  auto spectra = generator_->GenerateSpectra(photo);
  std::set<uint64_t> photo_ids;
  for (const auto& o : photo) photo_ids.insert(o.obj_id);
  for (const auto& s : spectra) {
    EXPECT_TRUE(photo_ids.count(s.photo_obj_id) > 0);
  }
  // The spectroscopic catalog is ~1% of the photometric one (the
  // survey's 10^6 of 2x10^8 proportion, scaled).
  EXPECT_GT(spectra.size(), photo.size() / 500);
  EXPECT_LT(spectra.size(), photo.size() / 5);
}

TEST_F(EndToEndTest, HashMachineFindsQueryEngineVerifiablePairs) {
  dataflow::ClusterConfig cfg;
  cfg.num_nodes = 4;
  dataflow::ClusterSim cluster(cfg);
  ASSERT_TRUE(cluster.LoadPartitioned(*store_).ok());
  dataflow::HashMachine machine(&cluster);
  auto pairs = machine.FindPairs(
      [](const PhotoObj& o) { return o.mag[2] < 21.0f; },
      /*max_sep_arcsec=*/30.0,
      [](const PhotoObj&, const PhotoObj&) { return true; },
      dataflow::PairSearchOptions{});
  // Verify each reported pair's separation via the catalog positions.
  std::map<uint64_t, Vec3> pos;
  store_->ForEachObject(
      [&](const PhotoObj& o) { pos[o.obj_id] = o.pos; });
  for (const auto& p : pairs) {
    ASSERT_TRUE(pos.count(p.obj_id_a) && pos.count(p.obj_id_b));
    double sep = RadToArcsec(pos[p.obj_id_a].AngleTo(pos[p.obj_id_b]));
    EXPECT_NEAR(sep, p.separation_arcsec, 1e-6);
    EXPECT_LE(sep, 30.0 + 1e-9);
  }
}

}  // namespace
}  // namespace sdss
