// Journal: framed append/replay round trips, segment rotation, reopen
// semantics, and clean torn-tail / corruption stops.

#include "persist/journal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/eventlog.h"
#include "core/io.h"
#include "core/metrics.h"

namespace sdss::persist {
namespace {

namespace fs = std::filesystem;

class PersistJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("journal_") +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<std::string> Replay(ReplayReport* report = nullptr) {
    std::vector<std::string> records;
    auto r = ReplayJournal(dir_.string(), [&](std::string_view rec) {
      records.emplace_back(rec);
      return Status::OK();
    });
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (report != nullptr && r.ok()) *report = *r;
    return records;
  }

  fs::path dir_;
};

TEST_F(PersistJournalTest, AppendThenReplayRoundTrips) {
  std::vector<std::string> written = {"alpha", "", "b",
                                      std::string(3000, 'x'),
                                      std::string("\0\x01\xff bin", 8)};
  {
    auto journal = Journal::Open(dir_.string());
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (const std::string& rec : written) {
      ASSERT_TRUE((*journal)->Append(rec).ok());
    }
    EXPECT_EQ((*journal)->records_appended(), written.size());
  }
  ReplayReport report;
  EXPECT_EQ(Replay(&report), written);
  EXPECT_EQ(report.records, written.size());
  EXPECT_EQ(report.dropped_bytes, 0u);
  EXPECT_TRUE(report.tail_note.empty());
}

TEST_F(PersistJournalTest, RotatesSegmentsAndReplaysAcrossThem) {
  Journal::Options options;
  options.segment_bytes = 64;  // A few records per segment.
  auto journal = Journal::Open(dir_.string(), options);
  ASSERT_TRUE(journal.ok());
  std::vector<std::string> written;
  for (int i = 0; i < 40; ++i) {
    written.push_back("record-" + std::to_string(i));
    ASSERT_TRUE((*journal)->Append(written.back()).ok());
  }
  EXPECT_GT((*journal)->current_segment(), 1u);
  EXPECT_GT(ListJournalSegments(dir_.string()).size(), 1u);
  EXPECT_EQ(Replay(), written);
}

TEST_F(PersistJournalTest, ReopenNeverAppendsToAnOldSegment) {
  {
    auto j1 = Journal::Open(dir_.string());
    ASSERT_TRUE(j1.ok());
    ASSERT_TRUE((*j1)->Append("first-incarnation").ok());
    EXPECT_EQ((*j1)->current_segment(), 1u);
  }
  {
    auto j2 = Journal::Open(dir_.string());
    ASSERT_TRUE(j2.ok());
    EXPECT_EQ((*j2)->current_segment(), 2u);
    ASSERT_TRUE((*j2)->Append("second-incarnation").ok());
  }
  std::vector<std::string> expect = {"first-incarnation",
                                     "second-incarnation"};
  EXPECT_EQ(Replay(), expect);
}

TEST_F(PersistJournalTest, TornTailStopsAtLastValidFrame) {
  {
    auto journal = Journal::Open(dir_.string());
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append("kept-1").ok());
    ASSERT_TRUE((*journal)->Append("kept-2").ok());
  }
  // A crash mid-write: half a frame header and nothing else.
  auto segments = ListJournalSegments(dir_.string());
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream f(dir_ / segments[0],
                    std::ios::binary | std::ios::app);
    f.write("\x12\x34\x56", 3);
  }
  ReplayReport report;
  std::vector<std::string> expect = {"kept-1", "kept-2"};
  EXPECT_EQ(Replay(&report), expect);
  EXPECT_EQ(report.dropped_bytes, 3u);
  EXPECT_NE(report.tail_note.find("torn frame"), std::string::npos);
}

TEST_F(PersistJournalTest, CorruptPayloadStopsWithoutApplyingIt) {
  {
    auto journal = Journal::Open(dir_.string());
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append("good-record").ok());
    ASSERT_TRUE((*journal)->Append("to-be-corrupted").ok());
  }
  auto segments = ListJournalSegments(dir_.string());
  ASSERT_EQ(segments.size(), 1u);
  const fs::path path = dir_ / segments[0];
  auto data = ReadFileToString(path.string());
  ASSERT_TRUE(data.ok());
  std::string bytes = *data;
  bytes[bytes.size() - 3] ^= 0x40;  // Flip a bit inside record 2.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ReplayReport report;
  std::vector<std::string> expect = {"good-record"};
  EXPECT_EQ(Replay(&report), expect);
  EXPECT_GT(report.dropped_bytes, 0u);
  EXPECT_NE(report.tail_note.find("CRC"), std::string::npos);
}

TEST_F(PersistJournalTest, TornTailInEarlierSegmentDoesNotMaskLaterOnes) {
  // Generation 1 crashes mid-append; generation 2 (which, like every
  // reopen, starts a fresh segment) commits more records. Replay must
  // drop only the torn tail and still deliver generation 2 -- stopping
  // at the first torn frame would silently lose committed records.
  {
    auto gen1 = Journal::Open(dir_.string());
    ASSERT_TRUE(gen1.ok());
    ASSERT_TRUE((*gen1)->Append("gen1-committed").ok());
  }
  auto segments = ListJournalSegments(dir_.string());
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream f(dir_ / segments[0],
                    std::ios::binary | std::ios::app);
    f.write("\x01\x02\x03\x04\x05", 5);  // The torn frame.
  }
  {
    auto gen2 = Journal::Open(dir_.string());
    ASSERT_TRUE(gen2.ok());
    ASSERT_TRUE((*gen2)->Append("gen2-committed").ok());
  }
  ReplayReport report;
  std::vector<std::string> expect = {"gen1-committed", "gen2-committed"};
  EXPECT_EQ(Replay(&report), expect);
  EXPECT_EQ(report.dropped_bytes, 5u);
  EXPECT_NE(report.tail_note.find("torn frame"), std::string::npos);
}

TEST_F(PersistJournalTest, MissingDirectoryReplaysNothing) {
  ReplayReport report;
  EXPECT_TRUE(Replay(&report).empty());
  EXPECT_EQ(report.segments, 0u);
}

TEST_F(PersistJournalTest, ApplyErrorAbortsReplay) {
  {
    auto journal = Journal::Open(dir_.string());
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append("poison").ok());
  }
  auto r = ReplayJournal(dir_.string(), [](std::string_view) {
    return Status::Corruption("boom");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(PersistJournalTest, RotationFailurePoisonsWithGaugeAndEvent) {
  // Sabotage rotation by replacing the journal directory with a plain
  // file: the next append must rotate, cannot open a segment, and the
  // journal latches POISONED -- flipping the gauge the health watchdog
  // reads and emitting the journal_poisoned event.
  metrics::Registry registry;
  const std::string events_dir = dir_.string() + "_events";
  fs::remove_all(events_dir);
  auto events = EventLog::Open(events_dir);
  ASSERT_TRUE(events.ok());

  Journal::Options options;
  options.segment_bytes = 1;  // Rotate on every append.
  options.metrics = &registry;
  options.events = events->get();
  auto journal = Journal::Open(dir_.string(), options);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(registry.GetGauge("persist_journal_poisoned")->Value(), 0);
  EXPECT_TRUE((*journal)->health().ok());
  EXPECT_FALSE((*journal)->poisoned());
  ASSERT_TRUE((*journal)->Append("healthy").ok());

  fs::remove_all(dir_);
  { std::ofstream block(dir_.string()); block << "not a directory"; }

  Status failed = (*journal)->Append("doomed");
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE((*journal)->poisoned());
  EXPECT_EQ((*journal)->health().code(), failed.code());
  EXPECT_EQ(registry.GetGauge("persist_journal_poisoned")->Value(), 1);
  // Latched: every later append answers the original error.
  EXPECT_FALSE((*journal)->Append("still doomed").ok());
  EXPECT_EQ((*events)->events_written(), 1u);
  bool found = false;
  for (const std::string& name : ListEventLogFiles(events_dir)) {
    std::ifstream in(fs::path(events_dir) / name);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"event\":\"journal_poisoned\"") != std::string::npos &&
          line.find("\"severity\":\"ERROR\"") != std::string::npos) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
  fs::remove_all(events_dir);
  fs::remove_all(dir_.string());
}

TEST_F(PersistJournalTest, SegmentNamesAreOrderedAndDurable) {
  Journal::Options options;
  options.segment_bytes = 1;  // Rotate on every append.
  auto journal = Journal::Open(dir_.string(), options);
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*journal)->Append("r" + std::to_string(i)).ok());
  }
  auto segments = ListJournalSegments(dir_.string());
  ASSERT_GE(segments.size(), 12u);
  for (size_t i = 1; i < segments.size(); ++i) {
    EXPECT_LT(segments[i - 1], segments[i]);
  }
}

}  // namespace
}  // namespace sdss::persist
