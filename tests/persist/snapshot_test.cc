// Snapshot: bit-exact columnar round trips of clustered stores, scan
// equivalence of the recovered store, and corruption rejection.

#include "persist/snapshot.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "catalog/sky_generator.h"
#include "core/io.h"
#include "htm/region.h"

namespace sdss::persist {
namespace {

namespace fs = std::filesystem;

catalog::ObjectStore MakeStore(bool build_tags, uint64_t seed = 901) {
  catalog::SkyModel model;
  model.seed = seed;
  model.num_galaxies = 4000;
  model.num_stars = 2500;
  model.num_quasars = 120;
  catalog::StoreOptions options;
  options.build_tags = build_tags;
  catalog::ObjectStore store(options);
  EXPECT_TRUE(
      store.BulkLoad(catalog::SkyGenerator(model).Generate()).ok());
  return store;
}

/// Field-by-field equality of two stores (all PhotoObj bits, container
/// layout, and tag partition sizes).
void ExpectStoresIdentical(const catalog::ObjectStore& a,
                           const catalog::ObjectStore& b) {
  ASSERT_EQ(a.object_count(), b.object_count());
  ASSERT_EQ(a.container_count(), b.container_count());
  auto bit = b.containers().begin();
  for (const auto& [raw, ca] : a.containers()) {
    ASSERT_NE(bit, b.containers().end());
    const catalog::Container& cb = bit->second;
    ASSERT_EQ(raw, bit->first);
    ASSERT_EQ(ca.trixel.raw(), cb.trixel.raw());
    ASSERT_EQ(ca.objects.size(), cb.objects.size());
    ASSERT_EQ(ca.tags.size(), cb.tags.size());
    for (size_t i = 0; i < ca.objects.size(); ++i) {
      // Field-wise bit-exactness (memcmp would also compare struct
      // padding, which is unspecified). The EncodeSnapshot equality in
      // the callers covers every field; these spot checks localize a
      // failure to the object.
      const catalog::PhotoObj& oa = ca.objects[i];
      const catalog::PhotoObj& ob = cb.objects[i];
      ASSERT_EQ(oa.obj_id, ob.obj_id) << "container " << raw;
      ASSERT_EQ(oa.pos.x, ob.pos.x);
      ASSERT_EQ(oa.ra_deg, ob.ra_deg);
      ASSERT_EQ(oa.mag, ob.mag);
      ASSERT_EQ(oa.mag_err, ob.mag_err);
      ASSERT_EQ(oa.profile, ob.profile);
      ASSERT_EQ(oa.petro_radius_arcsec, ob.petro_radius_arcsec);
      ASSERT_EQ(oa.surface_brightness, ob.surface_brightness);
      ASSERT_EQ(oa.redshift, ob.redshift);
      ASSERT_EQ(oa.flags, ob.flags);
      ASSERT_EQ(oa.obj_class, ob.obj_class);
      ASSERT_EQ(oa.htm_leaf, ob.htm_leaf);
    }
    ++bit;
  }
}

TEST(PersistSnapshotTest, EncodeDecodeRoundTripsBitExact) {
  catalog::ObjectStore store = MakeStore(/*build_tags=*/false);
  std::string encoded = EncodeSnapshot(store);
  auto decoded = DecodeSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectStoresIdentical(store, *decoded);
  // Canonical encoding: re-encoding the recovered store reproduces the
  // byte string, so snapshots can be compared as files.
  EXPECT_EQ(EncodeSnapshot(*decoded), encoded);
}

TEST(PersistSnapshotTest, TagPartitionIsRebuiltOnDecode) {
  catalog::ObjectStore store = MakeStore(/*build_tags=*/true);
  auto decoded = DecodeSnapshot(EncodeSnapshot(store));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->options().build_tags);
  ExpectStoresIdentical(store, *decoded);
  uint64_t tags = 0;
  decoded->ForEachTag([&tags](const catalog::TagObj&) { ++tags; });
  EXPECT_EQ(tags, store.object_count());
}

TEST(PersistSnapshotTest, RecoveredStoreScansIdentically) {
  catalog::ObjectStore store = MakeStore(/*build_tags=*/false);
  auto decoded = DecodeSnapshot(EncodeSnapshot(store));
  ASSERT_TRUE(decoded.ok());
  htm::Region cone = htm::Region::Circle(180.0, 40.0, 4.0);
  uint64_t sum_a = 0, sum_b = 0;
  auto sa = store.QueryRegion(
      cone, [&sum_a](const catalog::PhotoObj& o) { sum_a += o.obj_id; });
  auto sb = decoded->QueryRegion(
      cone, [&sum_b](const catalog::PhotoObj& o) { sum_b += o.obj_id; });
  EXPECT_EQ(sa.accepted, sb.accepted);
  EXPECT_EQ(sa.full_containers, sb.full_containers);
  EXPECT_EQ(sa.partial_containers, sb.partial_containers);
  EXPECT_EQ(sa.bytes_touched, sb.bytes_touched);
  EXPECT_EQ(sum_a, sum_b);
  // The density-map prediction (the paper's cost model) is preserved
  // too -- recovered stores admit and route exactly like fresh ones.
  auto pa = store.PredictRegion(cone);
  auto pb = decoded->PredictRegion(cone);
  EXPECT_EQ(pa.bytes_to_scan, pb.bytes_to_scan);
  EXPECT_EQ(pa.max_objects, pb.max_objects);
}

TEST(PersistSnapshotTest, HeaderPeekReportsTheStore) {
  catalog::ObjectStore store = MakeStore(/*build_tags=*/true);
  std::string encoded = EncodeSnapshot(store);
  auto header = DecodeSnapshotHeader(encoded);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, 2u);
  EXPECT_EQ(header->cluster_level, store.cluster_level());
  EXPECT_TRUE(header->build_tags);
  EXPECT_EQ(header->container_count, store.container_count());
  EXPECT_EQ(header->object_count, store.object_count());
  // A fresh BulkLoad is one mutation: epoch 1, carried by the header.
  EXPECT_EQ(header->epoch, 1u);
  EXPECT_EQ(store.epoch(), 1u);
}

TEST(PersistSnapshotTest, EpochSurvivesTheRoundTrip) {
  // The store epoch is the result cache's invalidation clock; recovery
  // must restore it exactly or cached answers from before a crash could
  // be served over different data.
  catalog::ObjectStore store = MakeStore(/*build_tags=*/false);
  catalog::PhotoObj extra = store.containers().begin()->second.rows()[0];
  extra.obj_id = 99'999'999;
  ASSERT_TRUE(store.Insert(extra).ok());
  ASSERT_TRUE(store.Insert(extra).ok());
  EXPECT_EQ(store.epoch(), 3u);  // BulkLoad + two inserts.

  auto decoded = DecodeSnapshot(EncodeSnapshot(store));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->epoch(), 3u);

  // Decoding a v1 snapshot (no epoch field) yields epoch 0: distinct
  // from any live store's, so stale entries can never match.
  persist::SnapshotHeader v1;
  EXPECT_EQ(v1.epoch, 0u);
}

TEST(PersistSnapshotTest, EveryTruncationIsRejectedWhole) {
  catalog::SkyModel model;
  model.seed = 77;
  model.num_galaxies = 120;
  model.num_stars = 60;
  model.num_quasars = 5;
  catalog::ObjectStore store;
  ASSERT_TRUE(
      store.BulkLoad(catalog::SkyGenerator(model).Generate()).ok());
  std::string encoded = EncodeSnapshot(store);
  // Step through truncation lengths (every boundary would be O(n^2)
  // bytes hashed; a stride still covers header, container, and trailer
  // cuts).
  for (size_t len = 0; len < encoded.size();
       len += 97) {
    auto r = DecodeSnapshot(std::string_view(encoded).substr(0, len));
    EXPECT_FALSE(r.ok()) << "truncation at " << len << " decoded";
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
}

TEST(PersistSnapshotTest, BitFlipsAndBadMagicAreRejected) {
  catalog::ObjectStore store = MakeStore(/*build_tags=*/false, 33);
  std::string encoded = EncodeSnapshot(store);
  for (size_t pos : {size_t{0}, size_t{9}, encoded.size() / 2,
                     encoded.size() - 1}) {
    std::string bad = encoded;
    bad[pos] ^= 0x10;
    auto r = DecodeSnapshot(bad);
    EXPECT_FALSE(r.ok()) << "bit flip at " << pos << " decoded";
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
  std::string trailing = encoded + "x";
  EXPECT_FALSE(DecodeSnapshot(trailing).ok());
}

TEST(PersistSnapshotTest, WriterAndReaderRoundTripThroughAFile) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "snapshot_file_roundtrip";
  fs::remove_all(dir);
  ASSERT_TRUE(CreateDirs(dir.string()).ok());
  const std::string path = (dir / "t.snap").string();

  catalog::ObjectStore store = MakeStore(/*build_tags=*/false, 55);
  SnapshotWriter writer(path);
  ASSERT_TRUE(writer.Write(store).ok());
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, writer.bytes_written());
  EXPECT_FALSE(PathExists(path + ".tmp")) << "durable write left a tmp";

  SnapshotReader reader(path);
  auto loaded = reader.Read();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectStoresIdentical(store, *loaded);
  auto header = reader.ReadHeader();
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->object_count, store.object_count());
  fs::remove_all(dir);
}

TEST(PersistSnapshotTest, MissingFileIsNotFound) {
  SnapshotReader reader("/nonexistent/dir/t.snap");
  auto r = reader.Read();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace sdss::persist
