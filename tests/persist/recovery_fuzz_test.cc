// Crash-recovery fuzz: truncate a recorded session's journal at EVERY
// byte boundary and assert that replay / MyDB recovery always either
// fully restores the prefix or cleanly stops at the last valid frame --
// never errors out, never crashes, never exposes a partial table.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "archive/mydb.h"
#include "catalog/sky_generator.h"
#include "core/io.h"
#include "persist/journal.h"
#include "persist/snapshot.h"

namespace sdss::persist {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

TEST(PersistRecoveryFuzzTest, JournalTruncatedAtEveryByteReplaysAPrefix) {
  const fs::path dir = FreshDir("fuzz_journal_session");
  std::vector<std::string> session;
  {
    auto journal = Journal::Open(dir.string());
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 12; ++i) {
      session.push_back("op-" + std::to_string(i) + "-" +
                        std::string(static_cast<size_t>(i * 7), 'p'));
      ASSERT_TRUE((*journal)->Append(session.back()).ok());
    }
  }
  auto segments = ListJournalSegments(dir.string());
  ASSERT_EQ(segments.size(), 1u);
  const fs::path segment = dir / segments[0];
  auto full = ReadFileToString(segment.string());
  ASSERT_TRUE(full.ok());

  for (uint64_t len = 0; len <= full->size(); ++len) {
    fs::resize_file(segment, len);
    std::vector<std::string> replayed;
    auto report =
        ReplayJournal(dir.string(), [&replayed](std::string_view rec) {
          replayed.emplace_back(rec);
          return Status::OK();
        });
    // Replay NEVER errors on truncation -- a torn tail is an expected
    // crash artifact, not corruption of committed state.
    ASSERT_TRUE(report.ok())
        << "replay failed at truncation " << len << ": "
        << report.status().ToString();
    // What replays is an exact prefix of the session.
    ASSERT_LE(replayed.size(), session.size());
    for (size_t i = 0; i < replayed.size(); ++i) {
      ASSERT_EQ(replayed[i], session[i]) << "at truncation " << len;
    }
    EXPECT_EQ(report->records, replayed.size());
  }
  fs::remove_all(dir);
}

/// The MyDB-level version: a session of creates/drops/quota updates is
/// recorded, then the journal is cut at every byte and a fresh MyDb
/// recovers from the wreckage. The on-disk table state is the pre-DROP
/// one -- the unlink strictly follows the journaled DROP, so any torn
/// journal tail coexists with the files still in place, which is
/// exactly what the orphan sweep must digest. Every recovery must
/// succeed, and every visible table must be the complete, bit-exact
/// committed one.
TEST(PersistRecoveryFuzzTest, MyDbRecoversCleanlyFromEveryTruncation) {
  using archive::MyDb;

  // Record one real session into `master`, capturing the tables
  // directory as it stood before the DROP's unlink.
  const fs::path master = FreshDir("fuzz_mydb_master");
  const fs::path predrop_tables = FreshDir("fuzz_mydb_predrop_tables");
  catalog::SkyModel model;
  model.seed = 4242;
  model.num_galaxies = 400;
  model.num_stars = 200;
  model.num_quasars = 10;
  std::vector<catalog::PhotoObj> sky =
      catalog::SkyGenerator(model).Generate();
  std::vector<catalog::PhotoObj> first(sky.begin(), sky.begin() + 300);
  std::vector<catalog::PhotoObj> second(sky.begin() + 300, sky.end());

  std::map<std::string, std::string> committed_bytes;
  {
    MyDb::Options options;
    options.persist_dir = master.string();
    MyDb mydb(options);
    ASSERT_TRUE(mydb.AttachStorage().ok());
    ASSERT_TRUE(mydb.Put("alice", "keep", first).ok());
    ASSERT_TRUE(mydb.SetQuota("alice", 32ull << 20).ok());
    ASSERT_TRUE(mydb.Put("alice", "dropme", second).ok());
    ASSERT_TRUE(mydb.Put("bob", "mine", second).ok());
    for (const auto& [user, name] :
         std::vector<std::pair<std::string, std::string>>{
             {"alice", "keep"}, {"alice", "dropme"}, {"bob", "mine"}}) {
      auto found = mydb.Find(user, name);
      ASSERT_TRUE(found.ok());
      committed_bytes[user + "/" + name] = EncodeSnapshot(**found);
    }
    fs::copy(master / "tables", predrop_tables,
             fs::copy_options::recursive);
    ASSERT_TRUE(mydb.Drop("alice", "dropme").ok());
  }
  auto segments = ListJournalSegments((master / "journal").string());
  ASSERT_EQ(segments.size(), 1u);
  auto full =
      ReadFileToString((master / "journal" / segments[0]).string());
  ASSERT_TRUE(full.ok());

  const fs::path scratch = FreshDir("fuzz_mydb_scratch");
  for (uint64_t len = 0; len <= full->size(); ++len) {
    fs::remove_all(scratch);
    fs::create_directories(scratch / "journal");
    fs::copy(predrop_tables, scratch / "tables",
             fs::copy_options::recursive);
    {
      std::ofstream f(scratch / "journal" / segments[0],
                      std::ios::binary | std::ios::trunc);
      f.write(full->data(), static_cast<std::streamsize>(len));
    }

    MyDb::Options options;
    options.persist_dir = scratch.string();
    MyDb recovered(options);
    auto report = recovered.AttachStorage();
    ASSERT_TRUE(report.ok())
        << "recovery failed at truncation " << len << ": "
        << report.status().ToString();

    // Whatever is visible is a COMMITTED table, whole and bit-exact.
    size_t visible = 0;
    for (const char* who : {"alice", "bob"}) {
      const std::string user(who);
      for (const std::string& name : recovered.List(user)) {
        ++visible;
        auto found = recovered.Find(user, name);
        ASSERT_TRUE(found.ok());
        auto want = committed_bytes.find(user + "/" + name);
        ASSERT_NE(want, committed_bytes.end())
            << "unknown table " << user << "/" << name
            << " at truncation " << len;
        ASSERT_EQ(EncodeSnapshot(**found), want->second)
            << "partial or mutated table " << user << "/" << name
            << " at truncation " << len;
      }
    }
    ASSERT_LE(visible, committed_bytes.size());

    // The full journal replays to the post-DROP state: the dropped
    // table's still-on-disk snapshot is swept as an orphan, not
    // resurrected.
    if (len == full->size()) {
      EXPECT_EQ(recovered.List("alice"),
                std::vector<std::string>{"keep"});
      EXPECT_EQ(recovered.List("bob"), std::vector<std::string>{"mine"});
      EXPECT_EQ(recovered.QuotaBytes("alice"), 32ull << 20);
      EXPECT_GE(report->orphans_removed, 1u);
    }
    if (len == 0) {
      EXPECT_TRUE(recovered.List("alice").empty());
      EXPECT_TRUE(recovered.List("bob").empty());
      // Nothing committed: every snapshot on disk is an orphan.
      EXPECT_EQ(report->orphans_removed, 3u);
    }
  }
  fs::remove_all(master);
  fs::remove_all(predrop_tables);
  fs::remove_all(scratch);
}

/// A table committed AFTER a crash must survive the NEXT crash: the
/// second recovery replays past the first crash's torn tail into the
/// second incarnation's segment. (A replay that stopped at the first
/// torn frame would miss the gen-2 CREATE and sweep its snapshot as an
/// orphan -- deleting a durably committed table.)
TEST(PersistRecoveryFuzzTest, TablesCommittedAfterACrashSurviveTheNext) {
  using archive::MyDb;
  const fs::path dir = FreshDir("fuzz_mydb_generations");
  catalog::SkyModel model;
  model.seed = 777;
  model.num_galaxies = 150;
  model.num_stars = 80;
  model.num_quasars = 5;
  std::vector<catalog::PhotoObj> sky =
      catalog::SkyGenerator(model).Generate();

  MyDb::Options options;
  options.persist_dir = dir.string();
  {
    MyDb gen1(options);
    ASSERT_TRUE(gen1.AttachStorage().ok());
    ASSERT_TRUE(gen1.Put("alice", "first", sky).ok());
  }
  // Crash artifact: a half-written frame at the tail of segment 1.
  auto segments = ListJournalSegments((dir / "journal").string());
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream f(dir / "journal" / segments[0],
                    std::ios::binary | std::ios::app);
    f.write("\xde\xad\xbe", 3);
  }
  {
    MyDb gen2(options);
    auto report = gen2.AttachStorage();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->journal.dropped_bytes, 0u);
    EXPECT_EQ(gen2.List("alice"), std::vector<std::string>{"first"});
    ASSERT_TRUE(gen2.Put("alice", "second", sky).ok());
  }
  MyDb gen3(options);
  auto report = gen3.AttachStorage();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->tables_loaded, 2u);
  EXPECT_EQ(report->orphans_removed, 0u);
  std::vector<std::string> both = {"first", "second"};
  EXPECT_EQ(gen3.List("alice"), both);
  fs::remove_all(dir);
}

/// The mmap'd snapshot path gets the same per-byte hostility as the
/// journal: a snapshot file cut at EVERY byte boundary must map to a
/// clean kCorruption -- never a crash, never a partial store -- and the
/// untouched file must map whole.
TEST(PersistRecoveryFuzzTest, MappedSnapshotTruncatedAtEveryByteRejected) {
  const fs::path dir = FreshDir("fuzz_mapped_truncate");
  fs::create_directories(dir);
  catalog::SkyModel model;
  model.seed = 515;
  model.num_galaxies = 30;
  model.num_stars = 15;
  model.num_quasars = 5;
  catalog::ObjectStore store;
  ASSERT_TRUE(
      store.BulkLoad(catalog::SkyGenerator(model).Generate()).ok());
  const std::string encoded = EncodeSnapshot(store);
  const fs::path path = dir / "t.snap";
  ASSERT_TRUE(WriteFileDurable(path.string(), encoded).ok());

  auto whole = MapSnapshotStore(path.string());
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ASSERT_EQ(whole->object_count(), store.object_count());

  for (uint64_t len = 0; len < encoded.size(); ++len) {
    fs::resize_file(path, len);
    auto r = MapSnapshotStore(path.string());
    ASSERT_FALSE(r.ok()) << "truncation at " << len << " mapped";
    ASSERT_EQ(r.status().code(), StatusCode::kCorruption)
        << "truncation at " << len << ": " << r.status().ToString();
  }
  fs::remove_all(dir);
}

/// Every single-bit flip anywhere in the file -- magic, header,
/// container payload, CRC trailer -- must be rejected whole with
/// kCorruption before any column view is exposed.
TEST(PersistRecoveryFuzzTest, MappedSnapshotBitFlipAtEveryByteRejected) {
  const fs::path dir = FreshDir("fuzz_mapped_bitflip");
  fs::create_directories(dir);
  catalog::SkyModel model;
  model.seed = 616;
  model.num_galaxies = 30;
  model.num_stars = 15;
  model.num_quasars = 5;
  catalog::ObjectStore store;
  ASSERT_TRUE(
      store.BulkLoad(catalog::SkyGenerator(model).Generate()).ok());
  const std::string encoded = EncodeSnapshot(store);
  const fs::path path = dir / "t.snap";

  for (size_t pos = 0; pos < encoded.size(); ++pos) {
    std::string bad = encoded;
    // Rotate the flipped bit with the position so every bit lane in
    // every byte class gets hit across the sweep.
    bad[pos] = static_cast<char>(bad[pos] ^ (1u << (pos % 8)));
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    auto r = MapSnapshotStore(path.string());
    ASSERT_FALSE(r.ok()) << "bit flip at " << pos << " mapped";
    ASSERT_EQ(r.status().code(), StatusCode::kCorruption)
        << "bit flip at " << pos << ": " << r.status().ToString();
  }
  fs::remove_all(dir);
}

/// MyDB cold start through the mapped path: recovery adopts each table
/// as column views over its snapshot file (no rebuild), the row-decode
/// path recovers the same bytes, and both answer Find identically.
TEST(PersistRecoveryFuzzTest, MyDbMappedRecoveryColdStartsColumnar) {
  using archive::MyDb;
  const fs::path dir = FreshDir("fuzz_mydb_mapped_coldstart");
  catalog::SkyModel model;
  model.seed = 717;
  model.num_galaxies = 300;
  model.num_stars = 150;
  model.num_quasars = 10;
  std::vector<catalog::PhotoObj> sky =
      catalog::SkyGenerator(model).Generate();

  MyDb::Options options;
  options.persist_dir = dir.string();
  {
    MyDb writer(options);
    ASSERT_TRUE(writer.AttachStorage().ok());
    ASSERT_TRUE(writer.Put("alice", "t", sky).ok());
  }

  options.map_snapshots = true;
  MyDb mapped(options);
  ASSERT_TRUE(mapped.AttachStorage().ok());
  auto mapped_table = mapped.Find("alice", "t");
  ASSERT_TRUE(mapped_table.ok());
  for (const auto& [raw, c] : (*mapped_table)->containers()) {
    EXPECT_GT(c.columnar.n, 0u) << "container " << raw;
    EXPECT_TRUE(c.objects.empty()) << "container " << raw;
  }

  options.map_snapshots = false;
  MyDb decoded(options);
  ASSERT_TRUE(decoded.AttachStorage().ok());
  auto decoded_table = decoded.Find("alice", "t");
  ASSERT_TRUE(decoded_table.ok());
  for (const auto& [raw, c] : (*decoded_table)->containers()) {
    EXPECT_EQ(c.columnar.n, 0u) << "container " << raw;
  }

  EXPECT_EQ((*mapped_table)->object_count(), sky.size());
  EXPECT_EQ(EncodeSnapshot(**mapped_table),
            EncodeSnapshot(**decoded_table));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sdss::persist
