#include "dataflow/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "catalog/sky_generator.h"

namespace sdss::dataflow {
namespace {

using catalog::ObjectStore;
using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SkyModel;

ObjectStore MakeStore(uint64_t n = 6000) {
  SkyModel m;
  m.seed = 61;
  m.num_galaxies = n * 2 / 3;
  m.num_stars = n / 3;
  m.num_quasars = 20;
  ObjectStore store;
  EXPECT_TRUE(store.BulkLoad(SkyGenerator(m).Generate()).ok());
  return store;
}

TEST(ClusterSimTest, PartitioningPreservesEveryObject) {
  ObjectStore store = MakeStore();
  ClusterConfig cfg;
  cfg.num_nodes = 7;
  ClusterSim cluster(cfg);
  ASSERT_TRUE(cluster.LoadPartitioned(store).ok());
  EXPECT_EQ(cluster.TotalObjects(), store.object_count());

  std::set<uint64_t> seen;
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    for (const auto& o : cluster.NodeObjects(n)) {
      EXPECT_TRUE(seen.insert(o.obj_id).second) << "duplicate " << o.obj_id;
    }
  }
  EXPECT_EQ(seen.size(), store.object_count());
}

TEST(ClusterSimTest, LoadIsRoughlyBalanced) {
  ObjectStore store = MakeStore(12000);
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  ClusterSim cluster(cfg);
  ASSERT_TRUE(cluster.LoadPartitioned(store).ok());
  uint64_t min_n = UINT64_MAX, max_n = 0;
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    min_n = std::min<uint64_t>(min_n, cluster.NodeObjects(n).size());
    max_n = std::max<uint64_t>(max_n, cluster.NodeObjects(n).size());
  }
  EXPECT_GT(min_n, 0u);
  EXPECT_LT(static_cast<double>(max_n),
            3.0 * static_cast<double>(min_n) + 50.0);
}

TEST(ClusterSimTest, FullScanTimeMatchesBandwidthArithmetic) {
  ObjectStore store = MakeStore();
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.node.disk_mbps = 150.0;
  ClusterSim cluster(cfg);
  ASSERT_TRUE(cluster.LoadPartitioned(store).ok());
  SimSeconds t = cluster.FullScanSimSeconds();
  // Max node bytes / bandwidth.
  uint64_t max_bytes = 0;
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    max_bytes = std::max(max_bytes, cluster.NodeBytes(n));
  }
  EXPECT_DOUBLE_EQ(t, static_cast<double>(max_bytes) / (150.0 * 1e6));
}

TEST(ClusterSimTest, MoreNodesScanFaster) {
  ObjectStore store = MakeStore();
  SimSeconds prev = 1e18;
  for (size_t nodes : {1, 4, 16}) {
    ClusterConfig cfg;
    cfg.num_nodes = nodes;
    ClusterSim cluster(cfg);
    ASSERT_TRUE(cluster.LoadPartitioned(store).ok());
    SimSeconds t = cluster.FullScanSimSeconds();
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(ClusterSimTest, ParallelScanVisitsEverything) {
  ObjectStore store = MakeStore();
  ClusterConfig cfg;
  cfg.num_nodes = 5;
  ClusterSim cluster(cfg);
  ASSERT_TRUE(cluster.LoadPartitioned(store).ok());
  std::atomic<uint64_t> count{0};
  ScanReport report = cluster.ParallelScan(
      [&](size_t, const PhotoObj&) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), store.object_count());
  EXPECT_EQ(report.objects_scanned, store.object_count());
  EXPECT_EQ(report.bytes_scanned,
            store.object_count() * cfg.bytes_per_object);
  EXPECT_GT(report.aggregate_mbps, 0.0);
}

TEST(ClusterSimTest, AggregateBandwidthScalesWithNodes) {
  // The paper's 20-node * 150 MB/s = 3 GB/s arithmetic.
  ObjectStore store = MakeStore(20000);
  ClusterConfig cfg;
  cfg.num_nodes = 20;
  ClusterSim cluster(cfg);
  ASSERT_TRUE(cluster.LoadPartitioned(store).ok());
  ScanReport report =
      cluster.ParallelScan([](size_t, const PhotoObj&) {});
  // Aggregate rate approaches nodes * per-node bandwidth (within the
  // imbalance factor of the busiest node).
  EXPECT_GT(report.aggregate_mbps, 0.6 * 20 * 150.0);
  EXPECT_LE(report.aggregate_mbps, 20 * 150.0 + 1.0);
}

TEST(ClusterSimTest, AddNodesMovesBoundedFraction) {
  ObjectStore store = MakeStore();
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  ClusterSim cluster(cfg);
  ASSERT_TRUE(cluster.LoadPartitioned(store).ok());
  uint64_t before = cluster.TotalObjects();
  double moved = cluster.AddNodes(4);
  EXPECT_EQ(cluster.num_nodes(), 8u);
  EXPECT_EQ(cluster.TotalObjects(), before);  // Nothing lost.
  EXPECT_GT(moved, 0.0);
  EXPECT_LE(moved, 1.0);

  // Still balanced and scan still works.
  std::atomic<uint64_t> count{0};
  cluster.ParallelScan([&](size_t, const PhotoObj&) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), before);
}

TEST(ClusterSimTest, AddZeroNodesIsNoop) {
  ObjectStore store = MakeStore(500);
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  ClusterSim cluster(cfg);
  ASSERT_TRUE(cluster.LoadPartitioned(store).ok());
  EXPECT_DOUBLE_EQ(cluster.AddNodes(0), 0.0);
  EXPECT_EQ(cluster.num_nodes(), 3u);
}

TEST(ClusterSimTest, ZeroNodeConfigClampsToOne) {
  ClusterConfig cfg;
  cfg.num_nodes = 0;
  ClusterSim cluster(cfg);
  EXPECT_EQ(cluster.num_nodes(), 1u);
}

}  // namespace
}  // namespace sdss::dataflow
