#include "dataflow/hash_machine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "catalog/sky_generator.h"
#include "core/angle.h"
#include "core/random.h"

namespace sdss::dataflow {
namespace {

using catalog::ObjClass;
using catalog::ObjectStore;
using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SkyModel;

// A sky salted with synthetic gravitational-lens pairs: close pairs with
// identical colors but different brightness (the paper's lens query).
struct LensedSky {
  ObjectStore store;
  ClusterSim cluster{[] {
    ClusterConfig cfg;
    cfg.num_nodes = 6;
    return cfg;
  }()};
  uint64_t planted_pairs = 0;

  LensedSky() {
    SkyModel m;
    m.seed = 91;
    m.num_galaxies = 3000;
    m.num_stars = 1500;
    m.num_quasars = 120;
    auto objs = SkyGenerator(m).Generate();

    // Plant lens images: duplicate some quasars within 10 arcsec with the
    // same colors but fainter magnitudes (conserved color, changed flux).
    Rng rng(13);
    uint64_t next_id = 10'000'000;
    std::vector<PhotoObj> extra;
    for (const auto& o : objs) {
      if (o.obj_class != ObjClass::kQuasar || !rng.Bernoulli(0.25)) continue;
      PhotoObj image = o;
      image.obj_id = next_id++;
      image.pos = rng.UnitCap(o.pos, ArcsecToRad(8.0)).Normalized();
      SphericalFromUnitVector(image.pos, &image.ra_deg, &image.dec_deg);
      float dim = static_cast<float>(rng.Uniform(0.5, 2.0));
      for (int b = 0; b < catalog::kNumBands; ++b) image.mag[b] += dim;
      extra.push_back(image);
      ++planted_pairs;
    }
    objs.insert(objs.end(), extra.begin(), extra.end());
    EXPECT_TRUE(store.BulkLoad(objs).ok());
    EXPECT_TRUE(cluster.LoadPartitioned(store).ok());
  }
};

bool SameColors(const PhotoObj& a, const PhotoObj& b) {
  // "identical colors, but may have a different brightness".
  for (int i = 0; i < catalog::kNumBands - 1; ++i) {
    float ca = a.mag[i] - a.mag[i + 1];
    float cb = b.mag[i] - b.mag[i + 1];
    if (std::fabs(ca - cb) > 0.05f) return false;
  }
  return true;
}

TEST(HashMachineTest, FindsAllPlantedLensPairs) {
  LensedSky sky;
  HashMachine machine(&sky.cluster);
  PairSearchOptions opt;
  HashReport report;
  auto pairs = machine.FindPairs(
      [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
      10.0, SameColors, opt, &report);
  // Every planted image is within 10 arcsec of its source with identical
  // colors -- all must be found (plus possibly rare chance pairs).
  EXPECT_GE(pairs.size(), sky.planted_pairs);
  EXPECT_EQ(report.pairs_found, pairs.size());
  EXPECT_GT(report.selected, 0u);
}

TEST(HashMachineTest, MatchesBruteForceExactly) {
  LensedSky sky;
  HashMachine machine(&sky.cluster);
  PairSearchOptions opt;
  auto fast = machine.FindPairs(
      [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
      10.0, SameColors, opt);
  auto brute = machine.FindPairsBruteForce(
      [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
      10.0, SameColors);
  ASSERT_EQ(fast.size(), brute.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].obj_id_a, brute[i].obj_id_a);
    EXPECT_EQ(fast[i].obj_id_b, brute[i].obj_id_b);
    EXPECT_NEAR(fast[i].separation_arcsec, brute[i].separation_arcsec,
                1e-9);
  }
}

TEST(HashMachineTest, PairsAreUniqueAndOrdered) {
  LensedSky sky;
  HashMachine machine(&sky.cluster);
  auto pairs = machine.FindPairs(
      [](const PhotoObj&) { return true; }, 15.0,
      [](const PhotoObj&, const PhotoObj&) { return true; },
      PairSearchOptions{});
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (const auto& p : pairs) {
    EXPECT_LT(p.obj_id_a, p.obj_id_b);
    EXPECT_TRUE(seen.insert({p.obj_id_a, p.obj_id_b}).second);
    EXPECT_LE(p.separation_arcsec, 15.0 + 1e-9);
  }
}

TEST(HashMachineTest, BucketingBeatsBruteForceInPairTests) {
  LensedSky sky;
  HashMachine machine(&sky.cluster);
  HashReport report;
  machine.FindPairs([](const PhotoObj&) { return true; }, 10.0,
                    [](const PhotoObj&, const PhotoObj&) { return true; },
                    PairSearchOptions{}, &report);
  uint64_t brute_tests = 0;
  machine.FindPairsBruteForce(
      [](const PhotoObj&) { return true; }, 10.0,
      [](const PhotoObj&, const PhotoObj&) { return true; }, &brute_tests);
  // The whole point of the hash machine: avoid the O(N^2) comparison.
  EXPECT_LT(report.pair_tests * 20, brute_tests);
}

TEST(HashMachineTest, SelectPredicateFiltersPhaseOne) {
  LensedSky sky;
  HashMachine machine(&sky.cluster);
  HashReport all, quasars;
  machine.FindPairs([](const PhotoObj&) { return true; }, 5.0,
                    [](const PhotoObj&, const PhotoObj&) { return true; },
                    PairSearchOptions{}, &all);
  machine.FindPairs(
      [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
      5.0, [](const PhotoObj&, const PhotoObj&) { return true; },
      PairSearchOptions{}, &quasars);
  EXPECT_LT(quasars.selected, all.selected / 10);
  EXPECT_LE(quasars.pair_tests, all.pair_tests);
}

TEST(HashMachineTest, TimingModelSplitsPhases) {
  LensedSky sky;
  HashMachine machine(&sky.cluster);
  HashReport report;
  machine.FindPairs([](const PhotoObj&) { return true; }, 10.0,
                    [](const PhotoObj&, const PhotoObj&) { return true; },
                    PairSearchOptions{}, &report);
  EXPECT_GT(report.phase1_sim_seconds, 0.0);
  EXPECT_GE(report.phase2_sim_seconds, 0.0);
  EXPECT_NEAR(report.total_sim_seconds,
              report.phase1_sim_seconds + report.phase2_sim_seconds, 1e-12);
}

TEST(HashMachineTest, GenericBucketsClusterByRedshift) {
  // "clustering by spectral type or by redshift-distance vector".
  LensedSky sky;
  HashMachine machine(&sky.cluster);
  std::map<int64_t, uint64_t> bucket_sizes;
  std::mutex mu;
  HashReport report = machine.ProcessBuckets(
      [](const PhotoObj& o) { return o.redshift >= 0.0f; },
      [](const PhotoObj& o) {
        return static_cast<int64_t>(o.redshift / 0.1f);
      },
      [&](int64_t key, const std::vector<const PhotoObj*>& members) {
        std::lock_guard<std::mutex> lock(mu);
        bucket_sizes[key] = members.size();
        // Every member belongs in this redshift bin.
        for (const PhotoObj* o : members) {
          EXPECT_EQ(static_cast<int64_t>(o->redshift / 0.1f), key);
        }
      });
  EXPECT_EQ(report.buckets, bucket_sizes.size());
  uint64_t total = 0;
  for (const auto& [k, n] : bucket_sizes) total += n;
  EXPECT_EQ(total, report.selected);
  EXPECT_GT(report.buckets, 3u);
}

TEST(HashMachineTest, EmptySelectionYieldsNoPairs) {
  LensedSky sky;
  HashMachine machine(&sky.cluster);
  HashReport report;
  auto pairs = machine.FindPairs(
      [](const PhotoObj&) { return false; }, 10.0,
      [](const PhotoObj&, const PhotoObj&) { return true; },
      PairSearchOptions{}, &report);
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(report.selected, 0u);
  EXPECT_EQ(report.pair_tests, 0u);
}

}  // namespace
}  // namespace sdss::dataflow
