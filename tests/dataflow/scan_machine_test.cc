#include "dataflow/scan_machine.h"

#include <gtest/gtest.h>

#include "catalog/sky_generator.h"

namespace sdss::dataflow {
namespace {

using catalog::ObjClass;
using catalog::ObjectStore;
using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SkyModel;

struct Fixture {
  ObjectStore store;
  ClusterSim cluster{ClusterConfig{}};
  uint64_t quasars = 0;

  explicit Fixture(size_t nodes = 5) : cluster([nodes] {
    ClusterConfig cfg;
    cfg.num_nodes = nodes;
    return cfg;
  }()) {
    SkyModel m;
    m.seed = 71;
    m.num_galaxies = 4000;
    m.num_stars = 3000;
    m.num_quasars = 150;
    auto objs = SkyGenerator(m).Generate();
    for (const auto& o : objs) {
      if (o.obj_class == ObjClass::kQuasar) ++quasars;
    }
    EXPECT_TRUE(store.BulkLoad(objs).ok());
    EXPECT_TRUE(cluster.LoadPartitioned(store).ok());
  }
};

TEST(ScanMachineTest, SingleQueryCompletesWithinOneCycle) {
  Fixture f;
  ScanMachine machine(&f.cluster);
  machine.Admit(
      [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
      /*now=*/10.0);
  auto completions = machine.RunUntilDrained();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].matches, f.quasars);
  EXPECT_NEAR(completions[0].Latency(), machine.CycleSimSeconds(), 1e-12);
  EXPECT_DOUBLE_EQ(completions[0].admitted_at, 10.0);
}

TEST(ScanMachineTest, ConcurrentQueriesShareOnePass) {
  Fixture f;
  ScanMachine machine(&f.cluster);
  // Five queries admitted within the same cycle window.
  for (int i = 0; i < 5; ++i) {
    machine.Admit([i](const PhotoObj& o) { return o.mag[2] < 17.0f + i; },
                  static_cast<SimSeconds>(i) * 0.001);
  }
  auto completions = machine.RunUntilDrained();
  EXPECT_EQ(completions.size(), 5u);
  // One shared pass, not five.
  EXPECT_EQ(machine.cycles_run(), 1u);
}

TEST(ScanMachineTest, WellSeparatedQueriesUseSeparatePasses) {
  Fixture f;
  ScanMachine machine(&f.cluster);
  SimSeconds cycle = machine.CycleSimSeconds();
  machine.Admit([](const PhotoObj&) { return true; }, 0.0);
  machine.Admit([](const PhotoObj&) { return true; }, cycle * 10.0);
  auto completions = machine.RunUntilDrained();
  EXPECT_EQ(completions.size(), 2u);
  EXPECT_EQ(machine.cycles_run(), 2u);
}

TEST(ScanMachineTest, MatchesAreExact) {
  Fixture f;
  ScanMachine machine(&f.cluster);
  machine.Admit([](const PhotoObj& o) { return o.mag[2] < 18.0f; }, 0.0);
  auto completions = machine.RunUntilDrained();
  uint64_t expected = 0;
  f.store.ForEachObject([&](const PhotoObj& o) {
    if (o.mag[2] < 18.0f) ++expected;
  });
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].matches, expected);
}

TEST(ScanMachineTest, MoreNodesShortenTheCycle) {
  Fixture small(2), large(16);
  ScanMachine m_small(&small.cluster), m_large(&large.cluster);
  EXPECT_GT(m_small.CycleSimSeconds(), m_large.CycleSimSeconds());
}

TEST(ScanMachineTest, LatencyIsIndependentOfAdmissionPhase) {
  // "the query completes within the scan time" regardless of when it
  // joins the sweep.
  Fixture f;
  ScanMachine machine(&f.cluster);
  SimSeconds cycle = machine.CycleSimSeconds();
  machine.Admit([](const PhotoObj&) { return true; }, 0.25 * cycle);
  machine.Admit([](const PhotoObj&) { return true; }, 0.75 * cycle);
  auto completions = machine.RunUntilDrained();
  ASSERT_EQ(completions.size(), 2u);
  for (const auto& c : completions) {
    EXPECT_NEAR(c.Latency(), cycle, 1e-12);
  }
}

TEST(ScanMachineTest, DrainOnEmptyMachineIsEmpty) {
  Fixture f;
  ScanMachine machine(&f.cluster);
  EXPECT_TRUE(machine.RunUntilDrained().empty());
  EXPECT_EQ(machine.cycles_run(), 0u);
}

}  // namespace
}  // namespace sdss::dataflow
