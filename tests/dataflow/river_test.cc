#include "dataflow/river.h"

#include <gtest/gtest.h>

#include <set>

#include "catalog/sky_generator.h"

namespace sdss::dataflow {
namespace {

using catalog::ObjClass;
using catalog::ObjectStore;
using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SkyModel;

struct Fixture {
  ObjectStore store;
  ClusterSim cluster{[] {
    ClusterConfig cfg;
    cfg.num_nodes = 6;
    return cfg;
  }()};

  Fixture() {
    SkyModel m;
    m.seed = 101;
    m.num_galaxies = 5000;
    m.num_stars = 3000;
    m.num_quasars = 100;
    EXPECT_TRUE(store.BulkLoad(SkyGenerator(m).Generate()).ok());
    EXPECT_TRUE(cluster.LoadPartitioned(store).ok());
  }
};

TEST(RiverTest, PassthroughDeliversEverything) {
  Fixture f;
  River river(&f.cluster);
  std::set<uint64_t> seen;
  RiverStats stats = river.Run([&](const PhotoObj& o) {
    EXPECT_TRUE(seen.insert(o.obj_id).second);
  });
  EXPECT_EQ(seen.size(), f.store.object_count());
  EXPECT_EQ(stats.records_in, f.store.object_count());
  EXPECT_EQ(stats.records_out, f.store.object_count());
  EXPECT_GT(stats.sim_mbps, 0.0);
}

TEST(RiverTest, FilterStage) {
  Fixture f;
  River river(&f.cluster);
  river.Filter(
      [](const PhotoObj& o) { return o.obj_class == ObjClass::kGalaxy; });
  uint64_t count = 0;
  river.Run([&](const PhotoObj& o) {
    EXPECT_EQ(o.obj_class, ObjClass::kGalaxy);
    ++count;
  });
  uint64_t expected = 0;
  f.store.ForEachObject([&](const PhotoObj& o) {
    if (o.obj_class == ObjClass::kGalaxy) ++expected;
  });
  EXPECT_EQ(count, expected);
}

TEST(RiverTest, MapStage) {
  Fixture f;
  River river(&f.cluster);
  river.Map([](const PhotoObj& o) {
    PhotoObj copy = o;
    copy.mag[2] += 1.0f;  // Recalibration as a dataflow step.
    return copy;
  });
  double sum_shifted = 0;
  uint64_t n = 0;
  river.Run([&](const PhotoObj& o) {
    sum_shifted += o.mag[2];
    ++n;
  });
  double sum_orig = 0;
  f.store.ForEachObject([&](const PhotoObj& o) { sum_orig += o.mag[2]; });
  EXPECT_NEAR(sum_shifted, sum_orig + static_cast<double>(n), 1e-3);
}

TEST(RiverTest, SortProducesGlobalOrder) {
  Fixture f;
  River river(&f.cluster);
  river.SortBy([](const PhotoObj& o) { return o.mag[2]; });
  double prev = -1e9;
  uint64_t count = 0;
  RiverStats stats = river.Run([&](const PhotoObj& o) {
    EXPECT_GE(o.mag[2] + 1e-9, prev);
    prev = o.mag[2];
    ++count;
  });
  EXPECT_EQ(count, f.store.object_count());
  EXPECT_EQ(stats.records_out, count);
}

TEST(RiverTest, FilterThenSortComposition) {
  Fixture f;
  River river(&f.cluster);
  river.Filter([](const PhotoObj& o) { return o.mag[2] < 19.0f; })
      .SortBy([](const PhotoObj& o) { return o.mag[2]; });
  double prev = -1e9;
  uint64_t count = 0;
  river.Run([&](const PhotoObj& o) {
    EXPECT_LT(o.mag[2], 19.0f);
    EXPECT_GE(o.mag[2] + 1e-9, prev);
    prev = o.mag[2];
    ++count;
  });
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, f.store.object_count());
}

TEST(RiverTest, RepartitionPreservesRecords) {
  Fixture f;
  River river(&f.cluster);
  river.Repartition(
      [](const PhotoObj& o) { return static_cast<size_t>(o.obj_id % 13); },
      13);
  std::set<uint64_t> seen;
  river.Run([&](const PhotoObj& o) { seen.insert(o.obj_id); });
  EXPECT_EQ(seen.size(), f.store.object_count());
}

TEST(RiverTest, RangePartitionPlusSortIsAParallelSortingNetwork) {
  // The paper: "The simplest river systems are sorting networks."
  Fixture f;
  River river(&f.cluster);
  size_t parts = 8;
  river
      .Repartition(
          [parts](const PhotoObj& o) {
            // Range partition on magnitude so partition order = global
            // order after local sorts.
            double lo = 14.0, hi = 23.5;
            double frac = (o.mag[2] - lo) / (hi - lo);
            auto p = static_cast<size_t>(
                std::clamp(frac, 0.0, 0.999) * static_cast<double>(parts));
            return p;
          },
          parts)
      .SortBy([](const PhotoObj& o) { return o.mag[2]; });
  double prev = -1e9;
  uint64_t count = 0;
  river.Run([&](const PhotoObj& o) {
    EXPECT_GE(o.mag[2] + 1e-9, prev);
    prev = o.mag[2];
    ++count;
  });
  EXPECT_EQ(count, f.store.object_count());
}

TEST(RiverTest, SimThroughputTracksClusterBandwidth) {
  Fixture f;
  River slow_river(&f.cluster);
  RiverStats stats = slow_river.Run([](const PhotoObj&) {});
  // Modeled throughput is bounded by aggregate disk bandwidth.
  double aggregate =
      static_cast<double>(f.cluster.num_nodes()) *
      f.cluster.config().node.disk_mbps;
  EXPECT_LE(stats.sim_mbps, aggregate + 1.0);
  EXPECT_GT(stats.sim_mbps, aggregate * 0.3);  // Balanced enough.
}

}  // namespace
}  // namespace sdss::dataflow
