// PairHasher: the cluster-agnostic bucket/ghost core. Exactness against
// brute force, the local/foreign emission discipline that makes the
// distributed join exactly-once, and the planner's bucket-level
// heuristic.

#include "dataflow/pair_hasher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "catalog/sky_generator.h"
#include "core/angle.h"
#include "htm/cover.h"
#include "htm/region.h"
#include "htm/trixel.h"

namespace sdss::dataflow {
namespace {

using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SkyModel;

std::vector<PhotoObj> DensePatch(uint64_t seed) {
  SkyModel m;
  m.seed = seed;
  m.num_galaxies = 1200;
  m.num_stars = 400;
  m.num_quasars = 80;
  m.num_clusters = 8;
  m.cluster_fraction = 0.6;
  m.cluster_radius_deg = 0.05;
  return SkyGenerator(m).Generate();
}

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

PairSet BruteForce(const std::vector<PhotoObj>& objs, double sep_arcsec) {
  double cos_sep = std::cos(ArcsecToRad(sep_arcsec));
  PairSet pairs;
  for (size_t i = 0; i < objs.size(); ++i) {
    for (size_t j = i + 1; j < objs.size(); ++j) {
      if (objs[i].pos.Dot(objs[j].pos) < cos_sep) continue;
      pairs.emplace(std::min(objs[i].obj_id, objs[j].obj_id),
                    std::max(objs[i].obj_id, objs[j].obj_id));
    }
  }
  return pairs;
}

PairSet HashedPairs(const PairHasher& hasher) {
  PairSet pairs;
  for (const PairHasher::Bucket* bucket : hasher.BucketList()) {
    hasher.ForEachCandidatePair(
        *bucket, [&pairs](const PhotoObj& a, const PhotoObj& b, double) {
          EXPECT_TRUE(pairs.emplace(a.obj_id, b.obj_id).second)
              << "pair (" << a.obj_id << ", " << b.obj_id
              << ") emitted twice";
          return true;
        });
  }
  return pairs;
}

TEST(PairHasherTest, AllLocalMatchesBruteForce) {
  std::vector<PhotoObj> objs = DensePatch(11);
  for (double sep_arcsec : {5.0, 30.0, 120.0}) {
    PairHasher hasher(sep_arcsec, 10);
    for (const PhotoObj& o : objs) hasher.Add(&o);
    EXPECT_EQ(hasher.local_objects(), objs.size());
    EXPECT_EQ(HashedPairs(hasher), BruteForce(objs, sep_arcsec))
        << "sep " << sep_arcsec;
  }
}

TEST(PairHasherTest, ShardedWithGhostExchangeIsExactlyOnce) {
  // Split the sky into "shards" by home trixel parity at the container
  // level, ship each object to the other shard whenever its separation
  // cap covers a trixel it does not own, and check the union of the two
  // shard-local runs is exactly the brute-force set with no duplicates
  // -- the emission discipline the federated join relies on.
  std::vector<PhotoObj> objs = DensePatch(22);
  const double sep_arcsec = 90.0;
  const int container_level = 6;
  auto owner = [&](const Vec3& pos) {
    return PairHasher::HomeBucket(pos, container_level) % 2;
  };

  PairHasher shard0(sep_arcsec, 9), shard1(sep_arcsec, 9);
  PairHasher* shards[2] = {&shard0, &shard1};
  double sep_deg = ArcsecToDeg(sep_arcsec);
  for (const PhotoObj& o : objs) {
    uint64_t own = owner(o.pos);
    shards[own]->Add(&o, /*local=*/true);
    // Ghost exchange at the container level.
    bool shipped = false;
    htm::ForEachRawInCover(
        htm::Cover(htm::Region::CircleAround(o.pos, sep_deg),
                   container_level),
        container_level, [&shipped, own](uint64_t raw) {
          if (raw % 2 != own) shipped = true;
        });
    if (shipped) shards[1 - own]->Add(&o, /*local=*/false);
  }

  PairSet merged = HashedPairs(shard0);
  for (const auto& p : HashedPairs(shard1)) {
    EXPECT_TRUE(merged.insert(p).second)
        << "pair (" << p.first << ", " << p.second
        << ") emitted by both shards";
  }
  EXPECT_EQ(merged, BruteForce(objs, sep_arcsec));
}

TEST(PairHasherTest, ForeignObjectsNeverInitiateEmission) {
  std::vector<PhotoObj> objs = DensePatch(33);
  PairHasher hasher(60.0, 9);
  for (const PhotoObj& o : objs) hasher.Add(&o, /*local=*/false);
  EXPECT_EQ(hasher.foreign_objects(), objs.size());
  EXPECT_TRUE(HashedPairs(hasher).empty());
}

TEST(PairHasherTest, HomeBucketMatchesTrixelLookup) {
  std::vector<PhotoObj> objs = DensePatch(44);
  for (size_t i = 0; i < std::min<size_t>(objs.size(), 64); ++i) {
    EXPECT_EQ(PairHasher::HomeBucket(objs[i].pos, 8),
              htm::LookupId(objs[i].pos, 8).raw());
  }
}

TEST(PairHasherTest, ChooseBucketLevelTracksSeparation) {
  // Smaller separations earn deeper buckets; the level stays clamped.
  EXPECT_LE(PairHasher::ChooseBucketLevel(2.0), 12);
  EXPECT_GE(PairHasher::ChooseBucketLevel(2.0),
            PairHasher::ChooseBucketLevel(60.0));
  EXPECT_GE(PairHasher::ChooseBucketLevel(60.0),
            PairHasher::ChooseBucketLevel(3600.0));
  EXPECT_GE(PairHasher::ChooseBucketLevel(8.0 * 3600.0), 4);
  // A level-10 trixel is ~316 arcsec across; 10 arcsec caps must land
  // well inside one, keeping ghosts rare.
  EXPECT_GE(PairHasher::ChooseBucketLevel(10.0), 9);
}

TEST(PairHasherTest, ReportsBucketShape) {
  std::vector<PhotoObj> objs = DensePatch(55);
  PairHasher hasher(30.0, 10);
  for (const PhotoObj& o : objs) hasher.Add(&o);
  EXPECT_GT(hasher.bucket_count(), 0u);
  EXPECT_GT(hasher.max_bucket(), 0u);
  uint64_t entries = 0;
  for (const PairHasher::Bucket* b : hasher.BucketList()) {
    entries += b->size();
  }
  EXPECT_EQ(entries, hasher.local_objects() + hasher.ghost_entries());
}

}  // namespace
}  // namespace sdss::dataflow
