// Property sweep: the hash machine's bucketed pair search must equal the
// brute-force O(N^2) result for every combination of bucket depth and
// search radius -- including radii comparable to the bucket size, where
// edge-ghost replication is doing all the work.

#include <gtest/gtest.h>

#include <tuple>

#include "catalog/sky_generator.h"
#include "core/angle.h"
#include "core/random.h"
#include "dataflow/hash_machine.h"

namespace sdss::dataflow {
namespace {

using catalog::ObjectStore;
using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SkyModel;

class HashPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {
 public:
  static void SetUpTestSuite() {
    // A compact dense patch so pairs are plentiful: one cluster-heavy
    // field.
    SkyModel m;
    m.seed = 777;
    m.num_galaxies = 1500;
    m.num_stars = 500;
    m.num_quasars = 100;
    m.num_clusters = 10;
    m.cluster_fraction = 0.6;
    m.cluster_radius_deg = 0.05;  // Tight clusters: many close pairs.
    store_ = new ObjectStore();
    ASSERT_TRUE(store_->BulkLoad(SkyGenerator(m).Generate()).ok());
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cluster_ = new ClusterSim(cfg);
    ASSERT_TRUE(cluster_->LoadPartitioned(*store_).ok());
  }
  static void TearDownTestSuite() {
    delete cluster_;
    delete store_;
    cluster_ = nullptr;
    store_ = nullptr;
  }

  static ObjectStore* store_;
  static ClusterSim* cluster_;
};

ObjectStore* HashPropertyTest::store_ = nullptr;
ClusterSim* HashPropertyTest::cluster_ = nullptr;

TEST_P(HashPropertyTest, MatchesBruteForceExactly) {
  auto [bucket_level, max_sep_arcsec] = GetParam();
  HashMachine machine(cluster_);
  PairSearchOptions opt;
  opt.bucket_level = bucket_level;

  auto select = [](const PhotoObj& o) { return o.mag[2] < 22.5f; };
  auto pair_pred = [](const PhotoObj& a, const PhotoObj& b) {
    return std::fabs(a.mag[2] - b.mag[2]) < 3.0f;
  };

  auto fast = machine.FindPairs(select, max_sep_arcsec, pair_pred, opt);
  auto brute = machine.FindPairsBruteForce(select, max_sep_arcsec,
                                           pair_pred);
  ASSERT_EQ(fast.size(), brute.size())
      << "level " << bucket_level << " sep " << max_sep_arcsec;
  for (size_t i = 0; i < fast.size(); ++i) {
    ASSERT_EQ(fast[i].obj_id_a, brute[i].obj_id_a) << i;
    ASSERT_EQ(fast[i].obj_id_b, brute[i].obj_id_b) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LevelsAndRadii, HashPropertyTest,
    ::testing::Combine(
        // Bucket depths from coarse (level 7 ~0.5 deg) to fine (level 12
        // ~16 arcsec, comparable to the largest radius below).
        ::testing::Values(7, 9, 11, 12),
        // Radii from 2 arcsec to 2 arcmin.
        ::testing::Values(2.0, 15.0, 60.0, 120.0)),
    [](const ::testing::TestParamInfo<std::tuple<int, double>>& info) {
      return "L" + std::to_string(std::get<0>(info.param)) + "_Sep" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace sdss::dataflow
