// JobScheduler: cost-based lane admission, per-user concurrency quotas,
// cooperative cancellation (mid-scan, releasing the worker, leaving no
// partial mydb container), and the 3-step CasJobs-style mining workflow
// on a 4-shard fleet.

#include "workbench/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "query/federated_engine.h"

namespace sdss::workbench {
namespace {

using archive::MyDb;
using archive::ReplicationOptions;
using archive::ShardedStore;
using query::FederatedQueryEngine;

// A join wide enough that its ghost harvest + bucket compare keeps the
// LONG lane busy for a long time relative to any quick-lane query; every
// test that submits it cancels it, so only the pre-cancel slice runs.
constexpr char kHeavyJoinSql[] =
    "SELECT COUNT(*) FROM photo AS a JOIN photoobj AS b WITHIN 3 DEG";

constexpr char kIntoBrightSql[] =
    "SELECT * INTO mydb.bright FROM photo WHERE r < 20.5";

/// One 4-shard fleet per test process (SetUpTestSuite), fresh MyDb and
/// JobScheduler per test.
class WorkbenchSchedulerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyModel m;
    m.seed = 1100;
    m.num_galaxies = 16000;
    m.num_stars = 13000;
    m.num_quasars = 300;
    source_ = new catalog::ObjectStore();
    ASSERT_TRUE(
        source_->BulkLoad(catalog::SkyGenerator(m).Generate()).ok());
    ReplicationOptions repl;
    repl.num_servers = 4;
    repl.base_replicas = 2;
    sharded_ = new ShardedStore(*source_, repl);
    auto shards = sharded_->LiveShards();
    ASSERT_TRUE(shards.ok());
    engine_ = new FederatedQueryEngine(*shards);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete sharded_;
    delete source_;
    engine_ = nullptr;
    sharded_ = nullptr;
    source_ = nullptr;
  }

  void SetUp() override { mydb_ = std::make_unique<MyDb>(); }

  static JobScheduler::Options TwoLaneOptions() {
    JobScheduler::Options opt;
    opt.quick_workers = 2;
    opt.long_workers = 2;
    opt.per_user_running = 1;
    // The fleet scan is ~5.6 MB: full scans and the join go LONG,
    // pruned cones and mydb reads stay QUICK.
    opt.quick_lane_max_bytes = 4ull << 20;
    return opt;
  }

  /// Polls until the job leaves kQueued. Returns its state.
  static JobState AwaitStarted(JobScheduler& sched, uint64_t id) {
    for (;;) {
      auto snap = sched.Snapshot(id);
      EXPECT_TRUE(snap.ok());
      if (!snap.ok()) return JobState::kFailed;
      if (snap->state != JobState::kQueued) return snap->state;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  static catalog::ObjectStore* source_;
  static ShardedStore* sharded_;
  static FederatedQueryEngine* engine_;
  std::unique_ptr<MyDb> mydb_;
};

catalog::ObjectStore* WorkbenchSchedulerTest::source_ = nullptr;
ShardedStore* WorkbenchSchedulerTest::sharded_ = nullptr;
FederatedQueryEngine* WorkbenchSchedulerTest::engine_ = nullptr;

TEST_F(WorkbenchSchedulerTest, CostEstimateChoosesTheLane) {
  JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());

  auto quick = sched.Submit(
      "alice",
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 3)");
  ASSERT_TRUE(quick.ok());
  auto qsnap = sched.Snapshot(*quick);
  ASSERT_TRUE(qsnap.ok());
  EXPECT_EQ(qsnap->lane, Lane::kQuick);
  EXPECT_LT(qsnap->predicted_bytes, sched.options().quick_lane_max_bytes);

  auto heavy = sched.Submit("alice", "SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(heavy.ok());
  auto lsnap = sched.Snapshot(*heavy);
  ASSERT_TRUE(lsnap.ok());
  EXPECT_EQ(lsnap->lane, Lane::kLong);
  EXPECT_GT(lsnap->predicted_bytes, sched.options().quick_lane_max_bytes);

  auto done = sched.Wait(*heavy);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, JobState::kSucceeded);
  auto result = sched.TakeResult(*heavy);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->aggregate_value,
                   static_cast<double>(source_->object_count()));
  // A result can only be taken once.
  EXPECT_FALSE(sched.TakeResult(*heavy).ok());
}

TEST_F(WorkbenchSchedulerTest, SubmitRejectsBadQueriesUpFront) {
  JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());
  EXPECT_FALSE(sched.Submit("alice", "SELECT nonsense FROM").ok());
  EXPECT_FALSE(sched.Submit("alice", "SELECT bogus_attr FROM photo").ok());
  // Unknown personal table fails at plan time, before any queue slot.
  auto missing =
      sched.Submit("alice", "SELECT COUNT(*) FROM mydb.never_made");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(sched.Jobs().empty());
}

TEST_F(WorkbenchSchedulerTest, ThreeStepMiningWorkflowOnFourShards) {
  JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());

  // A heavy long-lane job occupies one mining worker for the whole test.
  auto load = sched.Submit("load", kHeavyJoinSql);
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(sched.Snapshot(*load)->lane, Lane::kLong);
  ASSERT_EQ(AwaitStarted(sched, *load), JobState::kRunning);

  // Step 1 (long lane): materialize the bright sample into MyDB.
  auto into = sched.Submit("miner", kIntoBrightSql);
  ASSERT_TRUE(into.ok());
  EXPECT_EQ(sched.Snapshot(*into)->lane, Lane::kLong);
  auto into_done = sched.Wait(*into);
  ASSERT_TRUE(into_done.ok());
  ASSERT_EQ(into_done->state, JobState::kSucceeded)
      << into_done->error.ToString();

  auto truth_count =
      engine_->Execute("SELECT COUNT(*) FROM photo WHERE r < 20.5");
  ASSERT_TRUE(truth_count.ok());
  EXPECT_EQ(static_cast<double>(into_done->rows),
            truth_count->aggregate_value);
  auto table = mydb_->Find("miner", "bright");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(static_cast<double>((*table)->object_count()),
            truth_count->aggregate_value);

  // Step 2 (quick lane): refine the personal table -- no base-data
  // re-scan, and it completes while the long-lane job is still running.
  auto refine = sched.Submit(
      "miner", "SELECT obj_id, r FROM mydb.bright WHERE g - r < 0.6");
  ASSERT_TRUE(refine.ok());
  EXPECT_EQ(sched.Snapshot(*refine)->lane, Lane::kQuick);
  auto refine_done = sched.Wait(*refine);
  ASSERT_TRUE(refine_done.ok());
  ASSERT_EQ(refine_done->state, JobState::kSucceeded);

  auto truth_refined = engine_->Execute(
      "SELECT obj_id, r FROM photo WHERE r < 20.5 AND g - r < 0.6");
  ASSERT_TRUE(truth_refined.ok());
  EXPECT_EQ(refine_done->rows, truth_refined->rows.size());

  // Step 3 (quick lane): aggregate the derived data.
  auto agg = sched.Submit("miner", "SELECT AVG(r) FROM mydb.bright");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(sched.Snapshot(*agg)->lane, Lane::kQuick);
  auto agg_done = sched.Wait(*agg);
  ASSERT_TRUE(agg_done.ok());
  ASSERT_EQ(agg_done->state, JobState::kSucceeded);
  auto avg = sched.TakeResult(*agg);
  ASSERT_TRUE(avg.ok());
  auto truth_avg =
      engine_->Execute("SELECT AVG(r) FROM photo WHERE r < 20.5");
  ASSERT_TRUE(truth_avg.ok());
  EXPECT_NEAR(avg->aggregate_value, truth_avg->aggregate_value,
              1e-9 * std::fabs(truth_avg->aggregate_value));

  // The whole mining workflow ran while the heavy job never left the
  // long lane's worker.
  EXPECT_EQ(sched.Snapshot(*load)->state, JobState::kRunning);
  ASSERT_TRUE(sched.Cancel(*load).ok());
  auto cancelled = sched.Wait(*load);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(cancelled->state, JobState::kCancelled);
}

TEST_F(WorkbenchSchedulerTest, CancelMidScanReleasesWorkerAndReportsIt) {
  JobScheduler::Options opt = TwoLaneOptions();
  opt.long_workers = 1;  // One mining worker: release is observable.
  JobScheduler sched(engine_, mydb_.get(), opt);

  auto heavy = sched.Submit("load", kHeavyJoinSql);
  ASSERT_TRUE(heavy.ok());
  ASSERT_EQ(AwaitStarted(sched, *heavy), JobState::kRunning);
  ASSERT_TRUE(sched.Cancel(*heavy).ok());
  auto done = sched.Wait(*heavy);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, JobState::kCancelled);
  EXPECT_EQ(done->error.code(), StatusCode::kCancelled);
  // Cancelling a terminal job is refused.
  EXPECT_EQ(sched.Cancel(*heavy).code(), StatusCode::kFailedPrecondition);

  // The lane's only worker is free again: the next long job completes.
  auto next = sched.Submit("miner", kIntoBrightSql);
  ASSERT_TRUE(next.ok());
  auto next_done = sched.Wait(*next);
  ASSERT_TRUE(next_done.ok());
  EXPECT_EQ(next_done->state, JobState::kSucceeded)
      << next_done->error.ToString();
}

TEST_F(WorkbenchSchedulerTest, CancelledIntoLeavesNoPartialContainer) {
  JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());

  auto into = sched.Submit("miner",
                           "SELECT * INTO mydb.part FROM photo");
  ASSERT_TRUE(into.ok());
  ASSERT_EQ(AwaitStarted(sched, *into), JobState::kRunning);
  ASSERT_TRUE(sched.Cancel(*into).ok());
  auto done = sched.Wait(*into);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->state, JobState::kCancelled);
  // All-or-nothing: the target table must not exist in any form.
  EXPECT_FALSE(mydb_->Find("miner", "part").ok());
  EXPECT_TRUE(mydb_->List("miner").empty());
  EXPECT_EQ(mydb_->UsedBytes("miner"), 0u);
}

TEST_F(WorkbenchSchedulerTest, QuotaAbortsIntoWithoutPartialContainer) {
  MyDb::Options small;
  small.per_user_quota_bytes = 64 * sizeof(catalog::PhotoObj);
  MyDb tiny(small);
  JobScheduler sched(engine_, &tiny, TwoLaneOptions());

  auto into = sched.Submit("miner", kIntoBrightSql);
  ASSERT_TRUE(into.ok());
  auto done = sched.Wait(*into);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, JobState::kFailed);
  EXPECT_EQ(done->error.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(tiny.Find("miner", "bright").ok());
  EXPECT_EQ(tiny.UsedBytes("miner"), 0u);
}

TEST_F(WorkbenchSchedulerTest, IntoAnExistingNameFailsWholesale) {
  JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());

  // A name claimed by a still-queued/running INTO job is refused at
  // submit: the duplicate must not burn a whole lane run to learn it.
  auto first = sched.Submit("miner", kIntoBrightSql);
  ASSERT_TRUE(first.ok());
  auto racing = sched.Submit("miner", kIntoBrightSql);
  ASSERT_FALSE(racing.ok());
  EXPECT_EQ(racing.status().code(), StatusCode::kAlreadyExists);
  ASSERT_EQ(sched.Wait(*first)->state, JobState::kSucceeded);

  // Once materialized, a fresh submission is refused the same way.
  auto rejected = sched.Submit("miner", kIntoBrightSql);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kAlreadyExists);

  // Last-line guard: a table created OUTSIDE the scheduler while the
  // job streams still fails the final Put wholesale -- nothing of the
  // job's result lands next to the interloper's table.
  auto slow = sched.Submit("miner", "SELECT * INTO mydb.race FROM photo");
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(AwaitStarted(sched, *slow), JobState::kRunning);
  ASSERT_TRUE(mydb_->Put("miner", "race", {}).ok());
  const uint64_t bytes_before = mydb_->UsedBytes("miner");
  auto done = sched.Wait(*slow);
  EXPECT_EQ(done->state, JobState::kFailed);
  EXPECT_EQ(done->error.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(mydb_->UsedBytes("miner"), bytes_before);
}

TEST_F(WorkbenchSchedulerTest, PruneDropsOnlyTerminalJobs) {
  JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());
  auto quick = sched.Submit(
      "alice",
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 3)");
  ASSERT_TRUE(quick.ok());
  ASSERT_EQ(sched.Wait(*quick)->state, JobState::kSucceeded);
  auto heavy = sched.Submit("load", kHeavyJoinSql);
  ASSERT_TRUE(heavy.ok());
  ASSERT_EQ(AwaitStarted(sched, *heavy), JobState::kRunning);

  EXPECT_EQ(sched.PruneTerminalJobs(), 1u);
  EXPECT_FALSE(sched.Snapshot(*quick).ok());
  EXPECT_TRUE(sched.Snapshot(*heavy).ok());

  ASSERT_TRUE(sched.Cancel(*heavy).ok());
  EXPECT_EQ(sched.Wait(*heavy)->state, JobState::kCancelled);
  EXPECT_EQ(sched.PruneTerminalJobs(), 1u);
  EXPECT_TRUE(sched.Jobs().empty());
}

TEST_F(WorkbenchSchedulerTest, PerUserQuotaHoldsSecondJobInQueue) {
  JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());

  auto first = sched.Submit("load", kHeavyJoinSql);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(AwaitStarted(sched, *first), JobState::kRunning);

  // Same user, second long job: both long workers are free, but the
  // user quota (1) keeps it queued.
  auto second = sched.Submit("load", "SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(second.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(sched.Snapshot(*second)->state, JobState::kQueued);

  // Another user's long job overtakes the held one.
  auto other = sched.Submit("miner", "SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(other.ok());
  auto other_done = sched.Wait(*other);
  EXPECT_EQ(other_done->state, JobState::kSucceeded);
  EXPECT_EQ(sched.Snapshot(*second)->state, JobState::kQueued);

  // Releasing the first job's slot lets the held job run to completion.
  ASSERT_TRUE(sched.Cancel(*first).ok());
  auto second_done = sched.Wait(*second);
  EXPECT_EQ(second_done->state, JobState::kSucceeded);
}

TEST_F(WorkbenchSchedulerTest, CancelWhileQueuedNeverRuns) {
  JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());
  auto first = sched.Submit("load", kHeavyJoinSql);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(AwaitStarted(sched, *first), JobState::kRunning);
  auto queued = sched.Submit("load", "SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(queued.ok());

  ASSERT_TRUE(sched.Cancel(*queued).ok());
  auto done = sched.Wait(*queued);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, JobState::kCancelled);
  EXPECT_EQ(done->exec.rows_emitted, 0u);

  ASSERT_TRUE(sched.Cancel(*first).ok());
  EXPECT_EQ(sched.Wait(*first)->state, JobState::kCancelled);
}

TEST_F(WorkbenchSchedulerTest, JobsFeedTheReplicaPromotionHeatLoop) {
  auto opt = TwoLaneOptions();
  opt.heat = sharded_;
  JobScheduler sched(engine_, mydb_.get(), opt);

  auto heat_sum = [this] {
    uint64_t sum = 0;
    for (const auto& [raw, count] : source_->DensityMap()) {
      sum += sharded_->HeatOf(raw);
    }
    return sum;
  };

  // A full-archive mining scan touches every container exactly once
  // fleet-wide (each container is assigned to one live shard).
  const uint64_t before = heat_sum();
  auto full = sched.Submit("miner", "SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(sched.Wait(*full)->state, JobState::kSucceeded);
  const uint64_t after_full = heat_sum();
  EXPECT_EQ(after_full - before, source_->container_count());

  // A pruned cone heats only the containers its cover admits.
  auto cone = sched.Submit(
      "miner", "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 3)");
  ASSERT_TRUE(cone.ok());
  auto cone_done = sched.Wait(*cone);
  ASSERT_EQ(cone_done->state, JobState::kSucceeded);
  const uint64_t after_cone = heat_sum();
  EXPECT_EQ(after_cone - after_full, cone_done->exec.containers_scanned);
  EXPECT_LT(after_cone - after_full, source_->container_count());

  // Personal-store mining reads no archive containers: zero heat.
  ASSERT_EQ(sched.Wait(*sched.Submit("miner", kIntoBrightSql))->state,
            JobState::kSucceeded);
  const uint64_t after_into = heat_sum();
  auto mine = sched.Submit("miner", "SELECT COUNT(*) FROM mydb.bright");
  ASSERT_TRUE(mine.ok());
  ASSERT_EQ(sched.Wait(*mine)->state, JobState::kSucceeded);
  EXPECT_EQ(heat_sum(), after_into);
}

TEST_F(WorkbenchSchedulerTest, LaneDepthsReportQueuedAndRunningPerLane) {
  auto opt = TwoLaneOptions();
  opt.quick_workers = 1;
  JobScheduler sched(engine_, mydb_.get(), opt);

  QueueDepths idle = sched.LaneDepths();
  EXPECT_EQ(idle.quick_queued, 0u);
  EXPECT_EQ(idle.quick_running, 0u);
  EXPECT_EQ(idle.long_queued, 0u);
  EXPECT_EQ(idle.long_running, 0u);

  // Hold the only quick worker pre-scan, then stack two more quick
  // jobs behind it: running 1, queued 2, LONG untouched.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  StreamHooks hooks;
  hooks.on_header = [gate](const query::ResultHeader&) { gate.wait(); };
  auto blocked = sched.SubmitStreaming(
      "blocker",
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 3)",
      std::move(hooks));
  ASSERT_TRUE(blocked.ok());
  ASSERT_EQ(AwaitStarted(sched, *blocked), JobState::kRunning);

  const char* quick_sql =
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 120, 55, 3)";
  ASSERT_TRUE(sched.Submit("u1", quick_sql).ok());
  ASSERT_TRUE(sched.Submit("u2", quick_sql).ok());

  QueueDepths busy = sched.LaneDepths();
  EXPECT_EQ(busy.quick_running, 1u);
  EXPECT_EQ(busy.quick_queued, 2u);
  EXPECT_EQ(busy.long_queued, 0u);
  EXPECT_EQ(busy.Queued(Lane::kQuick), 2u);
  EXPECT_EQ(busy.Running(Lane::kQuick), 1u);

  release.set_value();
  EXPECT_EQ(sched.Wait(*blocked)->state, JobState::kSucceeded);
}

TEST_F(WorkbenchSchedulerTest, BoundedAdmissionRefusesWithUnavailable) {
  auto opt = TwoLaneOptions();
  opt.quick_workers = 1;
  opt.max_queued_quick = 1;
  JobScheduler sched(engine_, mydb_.get(), opt);

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  StreamHooks hooks;
  hooks.on_header = [gate](const query::ResultHeader&) { gate.wait(); };
  auto blocked = sched.SubmitStreaming(
      "blocker",
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 3)",
      std::move(hooks));
  ASSERT_TRUE(blocked.ok());
  ASSERT_EQ(AwaitStarted(sched, *blocked), JobState::kRunning);

  const char* quick_sql =
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 120, 55, 3)";
  auto queued = sched.Submit("u1", quick_sql);
  ASSERT_TRUE(queued.ok());  // Fills the bound of 1.

  auto refused = sched.Submit("u2", quick_sql);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);

  // The refusal left nothing behind, and the LONG lane is unaffected.
  EXPECT_EQ(sched.LaneDepths().quick_queued, 1u);
  auto long_job = sched.Submit("u2", "SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(long_job.ok());

  release.set_value();
  EXPECT_EQ(sched.Wait(*blocked)->state, JobState::kSucceeded);
  EXPECT_EQ(sched.Wait(*queued)->state, JobState::kSucceeded);
  EXPECT_EQ(sched.Wait(*long_job)->state, JobState::kSucceeded);

  // With the lane drained, admission opens again.
  auto readmitted = sched.Submit("u2", quick_sql);
  ASSERT_TRUE(readmitted.ok());
  EXPECT_EQ(sched.Wait(*readmitted)->state, JobState::kSucceeded);
}

TEST_F(WorkbenchSchedulerTest, StreamingJobDeliversHeaderBatchesTerminal) {
  JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());
  const std::string sql = "SELECT obj_id, r FROM photo WHERE r < 20.5";

  std::mutex mu;
  query::ResultHeader header;
  bool header_seen = false;
  uint64_t rows_streamed = 0;
  bool complete_seen = false;
  JobSnapshot final_snap;

  StreamHooks hooks;
  hooks.on_header = [&](const query::ResultHeader& h) {
    std::lock_guard<std::mutex> lock(mu);
    header = h;
    header_seen = true;
  };
  hooks.on_batch = [&](const query::RowBatch& batch) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(header_seen) << "batch before header";
    rows_streamed += batch.size();
    return true;
  };
  hooks.on_complete = [&](const JobSnapshot& snap) {
    std::lock_guard<std::mutex> lock(mu);
    complete_seen = true;
    final_snap = snap;
  };

  auto id = sched.SubmitStreaming("alice", sql, std::move(hooks));
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(sched.Wait(*id)->state, JobState::kSucceeded);

  auto direct = engine_->Execute(sql);
  ASSERT_TRUE(direct.ok());
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_TRUE(header_seen);
  EXPECT_EQ(header.columns, (std::vector<std::string>{"obj_id", "r"}));
  EXPECT_FALSE(header.is_aggregate);
  EXPECT_EQ(rows_streamed, direct->rows.size());
  ASSERT_TRUE(complete_seen);
  EXPECT_EQ(final_snap.state, JobState::kSucceeded);
  EXPECT_EQ(final_snap.rows, rows_streamed);

  // A streaming job never materializes: there is nothing to take.
  auto take = sched.TakeResult(*id);
  ASSERT_FALSE(take.ok());
  EXPECT_EQ(take.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(WorkbenchSchedulerTest, StreamingSinkStopCancelsTheJob) {
  JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());

  std::atomic<bool> complete_seen{false};
  StreamHooks hooks;
  hooks.on_batch = [](const query::RowBatch&) { return false; };
  hooks.on_complete = [&complete_seen](const JobSnapshot& snap) {
    EXPECT_EQ(snap.state, JobState::kCancelled);
    complete_seen.store(true);
  };
  auto id = sched.SubmitStreaming(
      "alice", "SELECT obj_id, r FROM photo WHERE r < 21",
      std::move(hooks));
  ASSERT_TRUE(id.ok());
  auto done = sched.Wait(*id);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, JobState::kCancelled);
  EXPECT_EQ(done->error.code(), StatusCode::kCancelled);
  EXPECT_TRUE(complete_seen.load());
}

TEST_F(WorkbenchSchedulerTest, CancelWhileQueuedFiresOnComplete) {
  auto opt = TwoLaneOptions();
  opt.quick_workers = 1;
  JobScheduler sched(engine_, mydb_.get(), opt);

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  StreamHooks blocker_hooks;
  blocker_hooks.on_header = [gate](const query::ResultHeader&) {
    gate.wait();
  };
  auto blocked = sched.SubmitStreaming(
      "blocker",
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 3)",
      std::move(blocker_hooks));
  ASSERT_TRUE(blocked.ok());
  ASSERT_EQ(AwaitStarted(sched, *blocked), JobState::kRunning);

  std::atomic<bool> header_seen{false};
  std::atomic<bool> complete_seen{false};
  StreamHooks hooks;
  hooks.on_header = [&header_seen](const query::ResultHeader&) {
    header_seen.store(true);
  };
  hooks.on_complete = [&complete_seen](const JobSnapshot& snap) {
    EXPECT_EQ(snap.state, JobState::kCancelled);
    complete_seen.store(true);
  };
  auto queued = sched.SubmitStreaming(
      "alice", "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 120, 55, 3)",
      std::move(hooks));
  ASSERT_TRUE(queued.ok());

  ASSERT_TRUE(sched.Cancel(*queued).ok());
  EXPECT_TRUE(complete_seen.load());  // Fired by Cancel, synchronously.
  EXPECT_FALSE(header_seen.load());   // The job never started.
  EXPECT_EQ(sched.Wait(*queued)->state, JobState::kCancelled);

  release.set_value();
  EXPECT_EQ(sched.Wait(*blocked)->state, JobState::kSucceeded);
}

TEST_F(WorkbenchSchedulerTest, DestructorCancelsOutstandingJobs) {
  uint64_t heavy = 0;
  {
    JobScheduler sched(engine_, mydb_.get(), TwoLaneOptions());
    auto id = sched.Submit("load", kHeavyJoinSql);
    ASSERT_TRUE(id.ok());
    heavy = *id;
    ASSERT_EQ(AwaitStarted(sched, heavy), JobState::kRunning);
    // Destruction must raise the flag and join without hanging.
  }
  SUCCEED();
}

TEST_F(WorkbenchSchedulerTest, TerminalRetentionCapPrunesOldestJobs) {
  JobScheduler::Options opt = TwoLaneOptions();
  opt.max_retained_terminal_jobs = 2;
  JobScheduler sched(engine_, mydb_.get(), opt);

  const std::string sql =
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 5)";
  std::vector<uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    auto id = sched.Submit("load", sql);
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(sched.Wait(*id)->state, JobState::kSucceeded);
    ids.push_back(*id);
  }

  // Wait() can return between the terminal transition and the worker's
  // prune; poll briefly for the bookkeeping to settle at the cap.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sched.Jobs().size() > 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(sched.Jobs().size(), 2u);

  // The newest two survive; the oldest three are gone -- results and
  // all, which is exactly what a bounded long-lived service wants.
  EXPECT_FALSE(sched.Snapshot(ids[0]).ok());
  EXPECT_FALSE(sched.Snapshot(ids[1]).ok());
  EXPECT_FALSE(sched.Snapshot(ids[2]).ok());
  EXPECT_TRUE(sched.Snapshot(ids[3]).ok());
  EXPECT_TRUE(sched.Snapshot(ids[4]).ok());
  auto result = sched.TakeResult(ids[4]);
  EXPECT_TRUE(result.ok());

  // A cap of 0 (the default) retains everything -- the manual sweep is
  // then the only reaper.
  JobScheduler unbounded(engine_, mydb_.get(), TwoLaneOptions());
  for (int i = 0; i < 3; ++i) {
    auto id = unbounded.Submit("load", sql);
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(unbounded.Wait(*id)->state, JobState::kSucceeded);
  }
  EXPECT_EQ(unbounded.Jobs().size(), 3u);
  EXPECT_EQ(unbounded.PruneTerminalJobs(), 3u);
  EXPECT_TRUE(unbounded.Jobs().empty());
}

}  // namespace
}  // namespace sdss::workbench
