// Kill-and-recover: the scheduler + MyDB durability contract. A "crash"
// is SIGKILL-equivalent for state: the process-level objects are
// destroyed (the destructor deliberately journals nothing for in-flight
// jobs) and a fresh scheduler/MyDb reopens the same directories.
//
// Covered: QUEUED jobs re-enqueue in original lane order, RUNNING jobs
// come back failed-retryable (Aborted), committed MyDB tables are
// restored bit-exact (byte-compared snapshots), a crash mid-INTO leaves
// zero partially materialized tables, and user cancellations survive.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "core/io.h"
#include "persist/snapshot.h"
#include "query/federated_engine.h"
#include "workbench/scheduler.h"

namespace sdss::workbench {
namespace {

namespace fs = std::filesystem;

using archive::MyDb;
using archive::ReplicationOptions;
using archive::ShardedStore;
using query::FederatedQueryEngine;

constexpr char kHeavyJoinSql[] =
    "SELECT COUNT(*) FROM photo AS a JOIN photoobj AS b WITHIN 3 DEG";
constexpr char kQuickConeSql[] =
    "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 3)";
constexpr char kIntoBrightSql[] =
    "SELECT * INTO mydb.bright FROM photo WHERE r < 20.5";
constexpr char kIntoDoomedSql[] =
    "SELECT * INTO mydb.doomed FROM photo";

class WorkbenchRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyModel m;
    m.seed = 2200;
    m.num_galaxies = 16000;
    m.num_stars = 13000;
    m.num_quasars = 300;
    source_ = new catalog::ObjectStore();
    ASSERT_TRUE(
        source_->BulkLoad(catalog::SkyGenerator(m).Generate()).ok());
    ReplicationOptions repl;
    repl.num_servers = 4;
    repl.base_replicas = 2;
    sharded_ = new ShardedStore(*source_, repl);
    auto shards = sharded_->LiveShards();
    ASSERT_TRUE(shards.ok());
    engine_ = new FederatedQueryEngine(*shards);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete sharded_;
    delete source_;
    engine_ = nullptr;
    sharded_ = nullptr;
    source_ = nullptr;
  }

  void SetUp() override {
    jobs_dir_ = FreshDir("jobs");
    mydb_dir_ = FreshDir("mydb");
  }
  void TearDown() override {
    fs::remove_all(jobs_dir_);
    fs::remove_all(mydb_dir_);
  }

  fs::path FreshDir(const std::string& kind) {
    fs::path dir = fs::path(::testing::TempDir()) /
                   (std::string("recovery_") + kind + "_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name());
    fs::remove_all(dir);
    return dir;
  }

  static JobScheduler::Options SerialOptions() {
    JobScheduler::Options opt;
    opt.quick_workers = 1;
    opt.long_workers = 1;
    opt.per_user_running = 1;
    opt.quick_lane_max_bytes = 4ull << 20;
    return opt;
  }

  /// Polls until the job leaves kQueued. Returns its state.
  static JobState AwaitStarted(JobScheduler& sched, uint64_t id) {
    for (;;) {
      auto snap = sched.Snapshot(id);
      EXPECT_TRUE(snap.ok());
      if (!snap.ok()) return JobState::kFailed;
      if (snap->state != JobState::kQueued) return snap->state;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  static catalog::ObjectStore* source_;
  static ShardedStore* sharded_;
  static FederatedQueryEngine* engine_;
  fs::path jobs_dir_;
  fs::path mydb_dir_;
};

catalog::ObjectStore* WorkbenchRecoveryTest::source_ = nullptr;
ShardedStore* WorkbenchRecoveryTest::sharded_ = nullptr;
FederatedQueryEngine* WorkbenchRecoveryTest::engine_ = nullptr;

TEST_F(WorkbenchRecoveryTest, QueuedJobsReenqueueInOrderRunningFails) {
  MyDb mydb;
  uint64_t running_id = 0;
  std::vector<uint64_t> queued_ids;
  {
    JobScheduler crashed(engine_, &mydb, SerialOptions());
    auto fresh = crashed.RecoverFrom(jobs_dir_.string());
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_EQ(fresh->jobs_seen, 0u);

    // The mining join occupies alice's single running slot on the LONG
    // lane; the three cones stay QUEUED on QUICK until the "crash".
    auto heavy = crashed.Submit("alice", kHeavyJoinSql);
    ASSERT_TRUE(heavy.ok());
    running_id = *heavy;
    ASSERT_EQ(AwaitStarted(crashed, running_id), JobState::kRunning);
    for (int i = 0; i < 3; ++i) {
      auto id = crashed.Submit("alice", kQuickConeSql);
      ASSERT_TRUE(id.ok());
      queued_ids.push_back(*id);
    }
    EXPECT_EQ(crashed.QueueDepth(Lane::kQuick), 3u);
    // Scope exit == SIGKILL for the journal: in-flight jobs are torn
    // down without terminal records.
  }

  JobScheduler revived(engine_, &mydb, SerialOptions());
  auto report = revived.RecoverFrom(jobs_dir_.string());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->jobs_seen, 4u);
  EXPECT_EQ(report->failed_running, 1u);
  EXPECT_EQ(report->terminal_restored, 0u);
  // Original lane order, original ids.
  EXPECT_EQ(report->requeued_ids, queued_ids);

  // The interrupted join: FAILED, Aborted, and flagged retryable.
  auto snap = revived.Snapshot(running_id);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->state, JobState::kFailed);
  EXPECT_EQ(snap->error.code(), StatusCode::kAborted);
  EXPECT_TRUE(snap->retryable);
  EXPECT_EQ(snap->sql, kHeavyJoinSql);

  // The re-enqueued cones run to completion (serially: one worker, one
  // per-user slot) and agree with a direct engine run.
  auto direct = engine_->Execute(kQuickConeSql);
  ASSERT_TRUE(direct.ok());
  for (uint64_t id : queued_ids) {
    auto done = revived.Wait(id);
    ASSERT_TRUE(done.ok());
    EXPECT_EQ(done->state, JobState::kSucceeded);
    auto result = revived.TakeResult(id);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->rows.size(), 1u);
    EXPECT_EQ(result->rows[0].values[0], direct->rows[0].values[0]);
  }
}

TEST_F(WorkbenchRecoveryTest, CommittedTablesSurviveCrashMidInto) {
  std::string bright_bytes;
  uint64_t committed_id = 0, doomed_id = 0;
  {
    MyDb::Options mopt;
    mopt.persist_dir = mydb_dir_.string();
    MyDb mydb(mopt);
    ASSERT_TRUE(mydb.AttachStorage().ok());
    JobScheduler crashed(engine_, &mydb, SerialOptions());
    ASSERT_TRUE(crashed.RecoverFrom(jobs_dir_.string()).ok());

    auto bright = crashed.Submit("alice", kIntoBrightSql);
    ASSERT_TRUE(bright.ok());
    committed_id = *bright;
    auto done = crashed.Wait(committed_id);
    ASSERT_TRUE(done.ok());
    ASSERT_EQ(done->state, JobState::kSucceeded);
    auto store = mydb.Find("alice", "bright");
    ASSERT_TRUE(store.ok());
    ASSERT_GT((*store)->object_count(), 0u);
    bright_bytes = persist::EncodeSnapshot(**store);

    // Kill the scheduler while the second INTO is mid-materialization:
    // its sink aborts cooperatively, MyDb::Put never runs, and no
    // terminal record is journaled.
    auto doomed = crashed.Submit("alice", kIntoDoomedSql);
    ASSERT_TRUE(doomed.ok());
    doomed_id = *doomed;
    ASSERT_EQ(AwaitStarted(crashed, doomed_id), JobState::kRunning);
  }

  // Crash debris a real mid-INTO power cut can leave: a completed
  // snapshot whose CREATE never committed, and a half-written temp.
  const fs::path alice_dir = mydb_dir_ / "tables" / "alice";
  {
    catalog::StoreOptions sopt;
    sopt.build_tags = false;
    catalog::ObjectStore ghost(sopt);
    std::vector<catalog::PhotoObj> few;
    source_->ForEachObject([&few](const catalog::PhotoObj& o) {
      if (few.size() < 10) few.push_back(o);
    });
    ASSERT_TRUE(ghost.BulkLoad(std::move(few)).ok());
    persist::SnapshotWriter writer((alice_dir / "ghost.snap").string());
    ASSERT_TRUE(writer.Write(ghost).ok());
    std::ofstream torn(alice_dir / "torn.snap.tmp", std::ios::binary);
    torn << "half-writ";
  }

  // Restart. Recovery restores exactly the committed table, bit-exact
  // on disk and in memory, and sweeps everything uncommitted.
  MyDb::Options mopt;
  mopt.persist_dir = mydb_dir_.string();
  MyDb revived_mydb(mopt);
  auto mreport = revived_mydb.AttachStorage();
  ASSERT_TRUE(mreport.ok()) << mreport.status().ToString();
  EXPECT_EQ(mreport->tables_loaded, 1u);
  EXPECT_GE(mreport->orphans_removed, 2u);  // ghost.snap + torn tmp.
  EXPECT_EQ(revived_mydb.List("alice"),
            std::vector<std::string>{"bright"});
  EXPECT_FALSE(revived_mydb.Find("alice", "doomed").ok());
  EXPECT_FALSE(revived_mydb.Find("alice", "ghost").ok());
  EXPECT_FALSE(PathExists((alice_dir / "ghost.snap").string()));
  EXPECT_FALSE(PathExists((alice_dir / "torn.snap.tmp").string()));

  auto store = revived_mydb.Find("alice", "bright");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(persist::EncodeSnapshot(**store), bright_bytes)
      << "recovered table is not bit-exact";
  auto on_disk =
      ReadFileToString((alice_dir / "bright.snap").string());
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(*on_disk, bright_bytes);

  // The scheduler side of the same crash: the committed INTO is
  // terminal bookkeeping, the doomed one is failed-retryable...
  JobScheduler revived(engine_, &revived_mydb, SerialOptions());
  auto report = revived.RecoverFrom(jobs_dir_.string());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->jobs_seen, 2u);
  EXPECT_EQ(report->terminal_restored, 1u);
  EXPECT_EQ(report->failed_running, 1u);
  auto doomed_snap = revived.Snapshot(doomed_id);
  ASSERT_TRUE(doomed_snap.ok());
  EXPECT_EQ(doomed_snap->state, JobState::kFailed);
  EXPECT_TRUE(doomed_snap->retryable);

  // ...and retrying it materializes the table this time, while the
  // committed name stays protected.
  auto retry = revived.Submit("alice", kIntoDoomedSql);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  auto done = revived.Wait(*retry);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, JobState::kSucceeded);
  EXPECT_TRUE(revived_mydb.Find("alice", "doomed").ok());
  auto dup = revived.Submit("alice", kIntoBrightSql);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(WorkbenchRecoveryTest, UserCancellationsSurviveTheCrash) {
  MyDb mydb;
  uint64_t cancelled_id = 0;
  {
    JobScheduler crashed(engine_, &mydb, SerialOptions());
    ASSERT_TRUE(crashed.RecoverFrom(jobs_dir_.string()).ok());
    auto heavy = crashed.Submit("alice", kHeavyJoinSql);
    ASSERT_TRUE(heavy.ok());
    ASSERT_EQ(AwaitStarted(crashed, *heavy), JobState::kRunning);
    auto queued = crashed.Submit("alice", kQuickConeSql);
    ASSERT_TRUE(queued.ok());
    cancelled_id = *queued;
    ASSERT_TRUE(crashed.Cancel(cancelled_id).ok());
  }
  JobScheduler revived(engine_, &mydb, SerialOptions());
  auto report = revived.RecoverFrom(jobs_dir_.string());
  ASSERT_TRUE(report.ok());
  // The user's decision was journaled: the job is NOT re-enqueued.
  EXPECT_TRUE(report->requeued_ids.empty());
  EXPECT_EQ(report->terminal_restored, 1u);
  auto snap = revived.Snapshot(cancelled_id);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->state, JobState::kCancelled);
  EXPECT_FALSE(snap->retryable);
}

TEST_F(WorkbenchRecoveryTest, RecoverFromGuardsItsPreconditions) {
  MyDb mydb;
  JobScheduler sched(engine_, &mydb, SerialOptions());
  ASSERT_TRUE(sched.RecoverFrom(jobs_dir_.string()).ok());
  auto again = sched.RecoverFrom(jobs_dir_.string());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);

  MyDb mydb2;
  JobScheduler late(engine_, &mydb2, SerialOptions());
  auto id = late.Submit("alice", kQuickConeSql);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(late.Wait(*id).ok());
  auto after_submit = late.RecoverFrom(FreshDir("late").string());
  ASSERT_FALSE(after_submit.ok());
  EXPECT_EQ(after_submit.status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(WorkbenchRecoveryTest, IdsContinuePastTheCrash) {
  MyDb mydb;
  uint64_t last_id = 0;
  {
    JobScheduler crashed(engine_, &mydb, SerialOptions());
    ASSERT_TRUE(crashed.RecoverFrom(jobs_dir_.string()).ok());
    for (int i = 0; i < 3; ++i) {
      auto id = crashed.Submit("alice", kQuickConeSql);
      ASSERT_TRUE(id.ok());
      last_id = *id;
      ASSERT_TRUE(crashed.Wait(last_id).ok());
    }
  }
  JobScheduler revived(engine_, &mydb, SerialOptions());
  ASSERT_TRUE(revived.RecoverFrom(jobs_dir_.string()).ok());
  auto fresh = revived.Submit("alice", kQuickConeSql);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, last_id) << "recovered ids must not be reissued";
}

}  // namespace
}  // namespace sdss::workbench
