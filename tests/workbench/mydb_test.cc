// MyDb: per-user named stores, byte quotas (all-or-nothing Put), and
// query-engine integration through the planner resolver.

#include "archive/mydb.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/sky_generator.h"
#include "query/query_engine.h"

namespace sdss::archive {
namespace {

std::vector<catalog::PhotoObj> MakeObjects(uint64_t seed, uint64_t count) {
  catalog::SkyModel m;
  m.seed = seed;
  m.num_galaxies = count;
  m.num_stars = 0;
  m.num_quasars = 0;
  return catalog::SkyGenerator(m).Generate();
}

TEST(MyDbTest, PutFindListDropWithByteAccounting) {
  MyDb mydb;
  auto objects = MakeObjects(5, 500);
  const uint64_t bytes = objects.size() * sizeof(catalog::PhotoObj);
  ASSERT_TRUE(mydb.Put("alice", "t1", objects).ok());
  EXPECT_EQ(mydb.UsedBytes("alice"), bytes);

  auto found = mydb.Find("alice", "t1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->object_count(), objects.size());
  EXPECT_EQ(mydb.List("alice"), std::vector<std::string>{"t1"});

  // Names are already taken per user, not globally.
  EXPECT_EQ(mydb.Put("alice", "t1", objects).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(mydb.Put("bob", "t1", objects).ok());

  ASSERT_TRUE(mydb.Drop("alice", "t1").ok());
  EXPECT_EQ(mydb.UsedBytes("alice"), 0u);
  EXPECT_FALSE(mydb.Find("alice", "t1").ok());
  EXPECT_EQ(mydb.Drop("alice", "t1").code(), StatusCode::kNotFound);
  EXPECT_TRUE(mydb.Find("bob", "t1").ok());
}

TEST(MyDbTest, RejectsNamesThatAreUnsafeOnDisk) {
  MyDb mydb;
  auto objects = MakeObjects(7, 10);
  // Same rule as the parser (core ValidatePathComponent): a table or
  // user name is one safe path component or the Put is refused whole
  // with InvalidArgument.
  for (const char* bad : {"", "a/b", "..", "a..b", ".hidden", "a\\b"}) {
    auto s = mydb.Put("alice", bad, objects);
    ASSERT_FALSE(s.ok()) << "name '" << bad << "' accepted";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
  std::string long_name(65, 'x');
  EXPECT_EQ(mydb.Put("alice", long_name, objects).code(),
            StatusCode::kInvalidArgument);
  // The user name is a path component too.
  EXPECT_EQ(mydb.Put("../alice", "t", objects).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(mydb.List("alice").empty());
  ASSERT_TRUE(mydb.Put("alice", std::string(64, 'x'), objects).ok());
}

TEST(MyDbTest, PerUserQuotaOverrides) {
  MyDb mydb;
  auto objects = MakeObjects(8, 100);
  const uint64_t bytes = objects.size() * sizeof(catalog::PhotoObj);
  // Shrink alice below the payload: refused; raise it back: accepted.
  ASSERT_TRUE(mydb.SetQuota("alice", bytes - 1).ok());
  EXPECT_EQ(mydb.QuotaBytes("alice"), bytes - 1);
  EXPECT_EQ(mydb.Put("alice", "t", objects).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(mydb.SetQuota("alice", 2 * bytes).ok());
  EXPECT_TRUE(mydb.Put("alice", "t", objects).ok());
  EXPECT_EQ(mydb.RemainingBytes("alice"), bytes);
  // Other users keep the configured default.
  EXPECT_EQ(mydb.QuotaBytes("bob"), mydb.options().per_user_quota_bytes);
}

TEST(MyDbTest, QuotaRefusesWholePutNeverPartial) {
  MyDb::Options opt;
  opt.per_user_quota_bytes = 100 * sizeof(catalog::PhotoObj);
  MyDb mydb(opt);

  ASSERT_TRUE(mydb.Put("alice", "small", MakeObjects(6, 60)).ok());
  Status refused = mydb.Put("alice", "big", MakeObjects(7, 80));
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  // Nothing of the refused table exists; the accepted one is intact.
  EXPECT_FALSE(mydb.Find("alice", "big").ok());
  EXPECT_EQ(mydb.List("alice"), std::vector<std::string>{"small"});
  EXPECT_EQ(mydb.RemainingBytes("alice"),
            40 * sizeof(catalog::PhotoObj));

  // Dropping frees quota for a retry.
  ASSERT_TRUE(mydb.Drop("alice", "small").ok());
  EXPECT_TRUE(mydb.Put("alice", "big", MakeObjects(7, 80)).ok());
}

TEST(MyDbTest, ResolverScopesToOneUser) {
  MyDb mydb;
  ASSERT_TRUE(mydb.Put("alice", "mine", MakeObjects(8, 50)).ok());
  query::MyDbResolver alice = mydb.ResolverFor("alice");
  query::MyDbResolver bob = mydb.ResolverFor("bob");
  EXPECT_NE(alice("mine"), nullptr);
  EXPECT_EQ(alice("other"), nullptr);
  EXPECT_EQ(bob("mine"), nullptr);
}

TEST(MyDbTest, StoresAnswerSpatialQueriesLikeTheArchive) {
  MyDb mydb;
  auto objects = MakeObjects(9, 2000);
  ASSERT_TRUE(mydb.Put("alice", "sky", objects).ok());

  // The materialized store is HTM-clustered: a spatial query through
  // the engine prunes containers and matches a brute-force filter.
  catalog::ObjectStore unused;  // Engine needs a base store; mydb scans
                                // carry their own.
  query::QueryEngine::Options opt;
  opt.planner.mydb = mydb.ResolverFor("alice");
  query::QueryEngine engine(&unused, opt);

  auto res = engine.Execute(
      "SELECT COUNT(*) FROM mydb.sky WHERE CIRCLE('GAL', 40, 70, 8)");
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->used_spatial_index);

  auto all = engine.Execute("SELECT COUNT(*) FROM mydb.sky");
  ASSERT_TRUE(all.ok());
  EXPECT_DOUBLE_EQ(all->aggregate_value,
                   static_cast<double>(objects.size()));
  EXPECT_LT(res->aggregate_value, all->aggregate_value);
  EXPECT_GT(res->aggregate_value, 0.0);
}

}  // namespace
}  // namespace sdss::archive
