// The slow-query log: a scheduler with slowlog_dir set traces every
// job and persists chrome://tracing captures for jobs at or over the
// slow_query_seconds threshold, pruned to slowlog_max_files newest.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "core/eventlog.h"
#include "core/io.h"
#include "core/metrics.h"
#include "query/trace.h"
#include "query/federated_engine.h"
#include "workbench/scheduler.h"

namespace sdss::workbench {
namespace {

using archive::MyDb;
using archive::ReplicationOptions;
using archive::ShardedStore;
using query::FederatedQueryEngine;

class SlowLogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyModel m;
    m.seed = 2200;
    m.num_galaxies = 6000;
    m.num_stars = 5000;
    m.num_quasars = 100;
    source_ = new catalog::ObjectStore();
    ASSERT_TRUE(
        source_->BulkLoad(catalog::SkyGenerator(m).Generate()).ok());
    ReplicationOptions repl;
    repl.num_servers = 2;
    repl.base_replicas = 1;
    sharded_ = new ShardedStore(*source_, repl);
    auto shards = sharded_->LiveShards();
    ASSERT_TRUE(shards.ok());
    engine_ = new FederatedQueryEngine(*shards);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete sharded_;
    delete source_;
    engine_ = nullptr;
    sharded_ = nullptr;
    source_ = nullptr;
  }

  std::string TempDir(const char* tag) {
    std::string dir = ::testing::TempDir() + "slowlog_" + tag + "_" +
                      std::to_string(::getpid());
    std::remove(dir.c_str());
    return dir;
  }

  std::vector<std::string> Captures(const std::string& dir) {
    std::vector<std::string> names;
    auto entries = ListDir(dir);
    if (!entries.ok()) return names;
    for (const std::string& name : *entries) {
      if (name.rfind("slow-", 0) == 0) names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  static catalog::ObjectStore* source_;
  static ShardedStore* sharded_;
  static FederatedQueryEngine* engine_;
};

catalog::ObjectStore* SlowLogTest::source_ = nullptr;
ShardedStore* SlowLogTest::sharded_ = nullptr;
FederatedQueryEngine* SlowLogTest::engine_ = nullptr;

TEST_F(SlowLogTest, ThresholdZeroCapturesEveryJob) {
  const std::string dir = TempDir("all");
  metrics::Registry registry;
  JobScheduler::Options opt;
  opt.quick_workers = 1;
  opt.long_workers = 1;
  opt.slowlog_dir = dir;
  opt.slow_query_seconds = 0.0;  // Every job is "slow".
  opt.metrics = &registry;
  MyDb mydb;
  JobScheduler scheduler(engine_, &mydb, opt);

  auto job = scheduler.Submit(
      "ana", "SELECT COUNT(*) FROM photo WHERE r < 23");
  ASSERT_TRUE(job.ok());
  auto snap = scheduler.Wait(*job);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->state, JobState::kSucceeded);

  auto captures = Captures(dir);
  ASSERT_EQ(captures.size(), 1u);
  // The capture is chrome://tracing JSON carrying the job's identity
  // and its stage spans.
  auto json = ReadFileToString(dir + "/" + captures[0]);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json->find("\"admission_wait\""), std::string::npos);
  EXPECT_NE(json->find("\"fan_out\""), std::string::npos);
  EXPECT_NE(json->find("COUNT(*)"), std::string::npos);
  EXPECT_NE(json->find("\"user\":\"ana\""), std::string::npos);
  EXPECT_EQ(registry.GetCounter("workbench_slowlog_writes")->Value(), 1u);
}

TEST_F(SlowLogTest, HighThresholdWritesNothing) {
  const std::string dir = TempDir("none");
  JobScheduler::Options opt;
  opt.quick_workers = 1;
  opt.long_workers = 1;
  opt.slowlog_dir = dir;
  opt.slow_query_seconds = 3600.0;  // Nothing is that slow.
  MyDb mydb;
  JobScheduler scheduler(engine_, &mydb, opt);

  auto job = scheduler.Submit("ana", "SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(scheduler.Wait(*job).ok());
  EXPECT_TRUE(Captures(dir).empty());
}

TEST_F(SlowLogTest, PrunesToMaxFilesNewestSurvive) {
  const std::string dir = TempDir("prune");
  JobScheduler::Options opt;
  opt.quick_workers = 1;
  opt.long_workers = 1;
  opt.slowlog_dir = dir;
  opt.slow_query_seconds = 0.0;
  opt.slowlog_max_files = 3;
  MyDb mydb;
  JobScheduler scheduler(engine_, &mydb, opt);

  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    auto job = scheduler.Submit(
        "ana", "SELECT COUNT(*) FROM photo WHERE r < " +
                   std::to_string(18 + i));
    ASSERT_TRUE(job.ok());
    auto snap = scheduler.Wait(*job);
    ASSERT_TRUE(snap.ok());
    ids.push_back(*job);
  }

  auto captures = Captures(dir);
  ASSERT_EQ(captures.size(), 3u);
  // Fixed-width naming makes lexicographic order age order: the three
  // survivors must be the three newest job ids.
  for (size_t i = 0; i < 3; ++i) {
    char expected[32];
    std::snprintf(expected, sizeof(expected), "slow-%08llu.json",
                  static_cast<unsigned long long>(ids[ids.size() - 3 + i]));
    EXPECT_EQ(captures[i], expected);
  }
}

TEST_F(SlowLogTest, SlowJobEmitsEventAndLandsInTraceRing) {
  const std::string dir = TempDir("ring");
  auto events = EventLog::Open(TempDir("ring_events"));
  ASSERT_TRUE(events.ok());
  query::TraceRing ring(8);
  JobScheduler::Options opt;
  opt.quick_workers = 1;
  opt.long_workers = 1;
  opt.slowlog_dir = dir;
  opt.slow_query_seconds = 0.0;  // Every job is "slow".
  opt.events = events->get();
  opt.trace_ring = &ring;
  MyDb mydb;
  JobScheduler scheduler(engine_, &mydb, opt);

  auto job = scheduler.Submit(
      "ana", "SELECT COUNT(*) FROM photo WHERE r < 22");
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(scheduler.Wait(*job).ok());

  // The slow_query event carries user, SQL, and run time.
  EXPECT_EQ((*events)->events_written(), 1u);
  bool found = false;
  for (const std::string& name :
       ListEventLogFiles((*events)->dir())) {
    auto data = ReadFileToString((*events)->dir() + "/" + name);
    ASSERT_TRUE(data.ok());
    if (data->find("\"event\":\"slow_query\"") != std::string::npos &&
        data->find("\"user\":\"ana\"") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // The capture is in the /tracez ring, flagged slow, with the full
  // chrome JSON.
  auto captures = ring.List();
  ASSERT_EQ(captures.size(), 1u);
  EXPECT_EQ(captures[0].job_id, *job);
  EXPECT_EQ(captures[0].user, "ana");
  EXPECT_TRUE(captures[0].slow);
  EXPECT_GT(captures[0].seconds, 0.0);
  EXPECT_NE(captures[0].chrome_json.find("\"traceEvents\""),
            std::string::npos);
  EXPECT_EQ(ring.Find(captures[0].id).job_id, *job);
  EXPECT_EQ(ring.Find(9999).id, 0u);  // Unknown id: empty capture.
}

TEST_F(SlowLogTest, TraceRingSamplingWithoutSlowlogDir) {
  // No slowlog_dir: tracing is still enabled by the ring, and with
  // trace_sample_every=1 every job is pushed (slow=false under a high
  // threshold).
  query::TraceRing ring(4);
  JobScheduler::Options opt;
  opt.quick_workers = 1;
  opt.long_workers = 1;
  opt.slow_query_seconds = 3600.0;
  opt.trace_ring = &ring;
  opt.trace_sample_every = 1;
  MyDb mydb;
  JobScheduler scheduler(engine_, &mydb, opt);

  for (int i = 0; i < 6; ++i) {
    auto job = scheduler.Submit("ana", "SELECT COUNT(*) FROM photo");
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE(scheduler.Wait(*job).ok());
  }
  EXPECT_EQ(ring.pushes(), 6u);
  auto captures = ring.List();
  ASSERT_EQ(captures.size(), 4u);  // Ring capacity bounds retention.
  for (const auto& capture : captures) EXPECT_FALSE(capture.slow);
  // Newest first: ids descend.
  for (size_t i = 1; i < captures.size(); ++i) {
    EXPECT_GT(captures[i - 1].id, captures[i].id);
  }
}

TEST_F(SlowLogTest, NoSlowlogDirMeansNoTracingNoFiles) {
  JobScheduler::Options opt;
  opt.quick_workers = 1;
  opt.long_workers = 1;
  MyDb mydb;
  JobScheduler scheduler(engine_, &mydb, opt);
  auto job = scheduler.Submit("ana", "SELECT COUNT(*) FROM photo");
  ASSERT_TRUE(job.ok());
  auto snap = scheduler.Wait(*job);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->state, JobState::kSucceeded);
}

}  // namespace
}  // namespace sdss::workbench
