// JobQueue: lane FIFO order, quota-aware dequeue, removal, shutdown.

#include "workbench/job_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace sdss::workbench {
namespace {

TEST(JobQueueTest, FifoWithinLane) {
  JobQueue queue;
  queue.Push(Lane::kQuick, 1, "alice");
  queue.Push(Lane::kQuick, 2, "bob");
  queue.Push(Lane::kLong, 3, "carol");

  uint64_t id = 0;
  std::string user;
  ASSERT_TRUE(queue.PopEligible(Lane::kQuick, &id, &user));
  EXPECT_EQ(id, 1u);
  ASSERT_TRUE(queue.PopEligible(Lane::kQuick, &id, &user));
  EXPECT_EQ(id, 2u);
  ASSERT_TRUE(queue.PopEligible(Lane::kLong, &id, &user));
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(queue.Depth(Lane::kQuick), 0u);
}

TEST(JobQueueTest, QuotaHoldsBackSameUserButNotOthers) {
  JobQueue queue(JobQueue::Options{/*per_user_running=*/1});
  queue.Push(Lane::kQuick, 1, "alice");
  queue.Push(Lane::kQuick, 2, "alice");
  queue.Push(Lane::kQuick, 3, "bob");

  uint64_t id = 0;
  std::string user;
  ASSERT_TRUE(queue.PopEligible(Lane::kQuick, &id, &user));
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(queue.RunningFor("alice"), 1u);

  // Alice is at quota: her second job is skipped, bob's runs.
  ASSERT_TRUE(queue.PopEligible(Lane::kQuick, &id, &user));
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(user, "bob");
  EXPECT_EQ(queue.Depth(Lane::kQuick), 1u);

  // Releasing alice's slot makes her queued job eligible again.
  queue.OnJobFinished("alice");
  ASSERT_TRUE(queue.PopEligible(Lane::kQuick, &id, &user));
  EXPECT_EQ(id, 2u);
}

TEST(JobQueueTest, PopBlocksUntilEligibleWork) {
  JobQueue queue(JobQueue::Options{/*per_user_running=*/1});
  queue.Push(Lane::kLong, 1, "alice");
  uint64_t id = 0;
  std::string user;
  ASSERT_TRUE(queue.PopEligible(Lane::kLong, &id, &user));

  // A second worker blocks on the quota until the first job finishes.
  uint64_t second = 0;
  std::thread worker([&queue, &second] {
    uint64_t got = 0;
    std::string who;
    if (queue.PopEligible(Lane::kLong, &got, &who)) second = got;
  });
  queue.Push(Lane::kLong, 2, "alice");
  queue.OnJobFinished("alice");
  worker.join();
  EXPECT_EQ(second, 2u);
}

TEST(JobQueueTest, RemoveTakesQueuedJobOut) {
  JobQueue queue;
  queue.Push(Lane::kLong, 7, "alice");
  EXPECT_TRUE(queue.Remove(7));
  EXPECT_FALSE(queue.Remove(7));
  EXPECT_EQ(queue.Depth(Lane::kLong), 0u);
}

TEST(JobQueueTest, ShutdownUnblocksWaiters) {
  JobQueue queue;
  std::thread worker([&queue] {
    uint64_t id = 0;
    std::string user;
    EXPECT_FALSE(queue.PopEligible(Lane::kQuick, &id, &user));
  });
  queue.Shutdown();
  worker.join();
  // Pushes after shutdown are dropped.
  queue.Push(Lane::kQuick, 1, "alice");
  EXPECT_EQ(queue.Depth(Lane::kQuick), 0u);
}

}  // namespace
}  // namespace sdss::workbench
