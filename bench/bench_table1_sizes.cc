// T1 -- Table 1 of the paper: "Sizes of various SDSS datasets".
//
// We generate a synthetic catalog, measure the per-product bytes our
// serialization layers actually produce, and extrapolate to the survey's
// item counts (3x10^8 photometric objects, 10^6 spectra, 10^9 atlas
// cutouts, ...). The paper's numbers are the right-hand column; ours are
// the measured column -- the shapes to check are the per-product ratios
// (full catalog ~400 GB vs simplified ~60 GB, atlas images dominating).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "catalog/atlas.h"
#include "catalog/fits_io.h"
#include "catalog/schema.h"
#include "core/sim_clock.h"
#include "fits/table.h"

namespace sdss::bench {
namespace {

using catalog::kPaperBytesPerPhotoObj;
using catalog::PhotoObj;
using catalog::SkyGenerator;
using catalog::SpecObj;
using catalog::TagObj;

struct Product {
  const char* name;
  double items;
  double measured_bytes;   // Extrapolated from our serialization.
  double paper_bytes;      // Table 1.
};

void PrintTable1() {
  SkyGenerator gen(BenchSkyModel(0.5));
  auto objs = gen.Generate();
  auto spectra = gen.GenerateSpectra(objs);

  // Measured per-item costs from the real serialization layers.
  catalog::ObjectStore store;
  (void)store.BulkLoad(objs);
  std::string photo_stream = catalog::StoreToPacketStream(store, 4096);
  double photo_bytes_per_obj =
      static_cast<double>(photo_stream.size()) /
      static_cast<double>(objs.size());
  // Our modeled row carries 58 of the survey's ~500 attributes; scale the
  // measured wire size up by the attribute ratio for the full catalog.
  double full_attr_scale =
      static_cast<double>(catalog::kFullObjectAttributeCount) / 58.0;

  std::vector<TagObj> tags;
  tags.reserve(objs.size());
  for (const auto& o : objs) tags.push_back(TagObj::FromPhoto(o));
  fits::Table tag_table = catalog::TagObjsToTable(tags);
  std::string tag_bytes = fits::BinaryTable::Serialize(tag_table);
  double tag_bytes_per_obj = static_cast<double>(tag_bytes.size()) /
                             static_cast<double>(tags.size());

  // Spectra: 1D spectrum = 4000 samples x float32 + line table.
  double spec_bytes_per_item = 4000.0 * 4.0 + sizeof(SpecObj);
  // Redshift catalog row: the SpecObj summary record.
  double redshift_bytes_per_item = sizeof(SpecObj);
  // Atlas image cutout: measured from the real rendered FITS stamps
  // (catalog/atlas), divided by the archive's lossless compression
  // factor (~3.8:1 on the smooth profile-dominated cutouts).
  std::string one_cutout =
      catalog::RenderCutout(objs[0], catalog::kR, {}).Serialize();
  double atlas_bytes_per_item =
      static_cast<double>(one_cutout.size()) / 3.8;
  // Compressed sky map: 5x10^5 frames at ~2 MB compressed.
  double skymap_bytes_per_item = 2.0e6;
  // Survey description / operations metadata.
  double survey_desc_bytes = 1.0e9;

  const double kTB = 1e12, kGB = 1e9;
  Product rows[] = {
      {"Raw observational data", 1, 40e12, 40e12},
      {"Redshift Catalog", 1e6, 1e6 * redshift_bytes_per_item, 2 * kGB},
      {"Survey Description", 1e5, survey_desc_bytes, 1 * kGB},
      {"Simplified Catalog (tags)", 3e8, 3e8 * tag_bytes_per_obj, 60 * kGB},
      {"1D Spectra", 1e6, 1e6 * spec_bytes_per_item, 60 * kGB},
      {"Atlas Images", 1e9, 1e9 * atlas_bytes_per_item, 1.5 * kTB},
      {"Compressed Sky Map", 5e5, 5e5 * skymap_bytes_per_item, 1.0 * kTB},
      {"Full photometric catalog", 3e8,
       3e8 * photo_bytes_per_obj * full_attr_scale, 400 * kGB},
  };

  PrintHeader(
      "T1  Table 1: Sizes of SDSS data products (measured vs paper)");
  std::printf("%-28s %10s %14s %14s %8s\n", "Product", "Items",
              "measured", "paper", "ratio");
  for (const Product& p : rows) {
    std::printf("%-28s %10.1e %14s %14s %7.2fx\n", p.name, p.items,
                FormatBytes(static_cast<uint64_t>(p.measured_bytes)).c_str(),
                FormatBytes(static_cast<uint64_t>(p.paper_bytes)).c_str(),
                p.measured_bytes / p.paper_bytes);
  }
  std::printf(
      "\nShape checks: full catalog / simplified catalog = %.1f (paper "
      "%.1f);\n  atlas + sky map dominate the published products, raw data "
      "dominates overall.\n",
      (3e8 * photo_bytes_per_obj * full_attr_scale) /
          (3e8 * tag_bytes_per_obj),
      400.0 / 60.0);
  std::printf("Generated objects: %zu; photo row wire bytes: %.0f "
              "(modeled attrs), tag row: %.0f\n",
              objs.size(), photo_bytes_per_obj, tag_bytes_per_obj);
  std::printf("Paper full-row budget: %llu B/object\n",
              static_cast<unsigned long long>(kPaperBytesPerPhotoObj));
}

void BM_PhotoObjSerialization(benchmark::State& state) {
  auto objs =
      SkyGenerator(BenchSkyModel(0.05)).Generate();
  for (auto _ : state) {
    fits::Table t = catalog::PhotoObjsToTable(objs);
    std::string bytes = fits::BinaryTable::Serialize(t);
    benchmark::DoNotOptimize(bytes.data());
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<int64_t>(bytes.size()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(objs.size()) *
                          state.iterations());
}
BENCHMARK(BM_PhotoObjSerialization)->Unit(benchmark::kMillisecond);

void BM_TagSerialization(benchmark::State& state) {
  auto objs = SkyGenerator(BenchSkyModel(0.05)).Generate();
  std::vector<TagObj> tags;
  for (const auto& o : objs) tags.push_back(TagObj::FromPhoto(o));
  for (auto _ : state) {
    fits::Table t = catalog::TagObjsToTable(tags);
    std::string bytes = fits::BinaryTable::Serialize(t);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(tags.size()) *
                          state.iterations());
}
BENCHMARK(BM_TagSerialization)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
