// C7 -- the index claims: containers "define the base of an index tree
// that tells us whether containers are fully inside, outside or bisected
// by our query. Only the bisected container category is searched ... A
// prediction of the output data volume and search time can be computed
// from the intersection volume."
//
// We sweep cone searches of increasing radius and report: predicted vs
// actual result counts, bytes scanned with and without the index (the
// lookup-vs-scan crossover), and an ablation over container clustering
// depth (the [Csabai97] tradeoff).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/coords.h"
#include "query/query_engine.h"

namespace sdss::bench {
namespace {

using catalog::ObjectStore;
using catalog::PhotoObj;
using query::QueryEngine;

SphericalCoord FootprintCenter() {
  return ToSpherical(EquatorialUnitVector({0.0, 90.0, Frame::kGalactic}),
                     Frame::kEquatorial);
}

void PrintC7() {
  ObjectStore store = MakeBenchStore(1.0);
  SphericalCoord c = FootprintCenter();

  PrintHeader(
      "C7  HTM index: output-volume prediction and pruning vs radius");
  std::printf("catalog: %llu objects in %zu containers (level %d)\n\n",
              static_cast<unsigned long long>(store.object_count()),
              store.container_count(), store.cluster_level());
  std::printf("%8s %10s %10s %10s %12s %12s %10s\n", "radius", "actual",
              "predicted", "err", "idx bytes", "scan bytes", "saving");
  for (double radius : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    htm::Region region = htm::Region::Circle(c.lon_deg, c.lat_deg, radius);
    auto pred = store.PredictRegion(region);
    uint64_t actual = 0;
    auto stats = store.QueryRegion(region,
                                   [&](const PhotoObj&) { ++actual; });
    uint64_t full_bytes = store.Stats().full_bytes;
    double err = actual > 0 ? (pred.expected_objects -
                               static_cast<double>(actual)) /
                                  static_cast<double>(actual)
                            : 0.0;
    std::printf("%7.2f%1s %10llu %10.0f %9.1f%% %12s %12s %9.1fx\n", radius,
                "d", static_cast<unsigned long long>(actual),
                pred.expected_objects, err * 100.0,
                FormatBytes(stats.bytes_touched).c_str(),
                FormatBytes(full_bytes).c_str(),
                static_cast<double>(full_bytes) /
                    static_cast<double>(std::max<uint64_t>(
                        1, stats.bytes_touched)));
  }
  std::printf(
      "\nShape check: prediction tracks actual within the bisected-"
      "container bracket;\nindex savings fall from >100x (arcminute cones) "
      "toward 1x as the query\napproaches the footprint (the "
      "index-vs-full-scan crossover).\n");

  // Ablation: clustering depth (the density-contrast tradeoff).
  std::printf("\nClustering-depth ablation (2-degree cone):\n");
  std::printf("%7s %12s %14s %14s %12s\n", "level", "containers",
              "bytes touched", "objs tested", "exact objs");
  auto objs = catalog::SkyGenerator(BenchSkyModel(1.0)).Generate();
  for (int level : {3, 4, 5, 6, 7, 8}) {
    catalog::StoreOptions opt;
    opt.cluster_level = level;
    opt.build_tags = false;
    ObjectStore s(opt);
    (void)s.BulkLoad(objs);
    htm::Region region = htm::Region::Circle(c.lon_deg, c.lat_deg, 2.0);
    uint64_t n = 0;
    auto stats = s.QueryRegion(region, [&](const PhotoObj&) { ++n; });
    std::printf("%7d %12zu %14s %14llu %12llu\n", level,
                s.container_count(),
                FormatBytes(stats.bytes_touched).c_str(),
                static_cast<unsigned long long>(stats.objects_tested),
                static_cast<unsigned long long>(n));
  }
  std::printf(
      "\nDeeper containers touch fewer bytes but multiply container "
      "count; level 6\n(~1 degree) balances both for this footprint -- "
      "the design default.\n");
}

void BM_IndexedConeSearch(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.5);
  SphericalCoord c = FootprintCenter();
  double radius = static_cast<double>(state.range(0)) / 10.0;
  htm::Region region = htm::Region::Circle(c.lon_deg, c.lat_deg, radius);
  for (auto _ : state) {
    uint64_t n = 0;
    store.QueryRegion(region, [&](const PhotoObj&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_IndexedConeSearch)->Arg(5)->Arg(20)->Arg(80)
    ->Unit(benchmark::kMicrosecond);

void BM_UnindexedConeSearch(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.5);
  SphericalCoord c = FootprintCenter();
  double radius = static_cast<double>(state.range(0)) / 10.0;
  htm::Region region = htm::Region::Circle(c.lon_deg, c.lat_deg, radius);
  for (auto _ : state) {
    uint64_t n = 0;
    store.ForEachObject([&](const PhotoObj& o) {
      if (region.Contains(o.pos)) ++n;
    });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_UnindexedConeSearch)->Arg(5)->Arg(20)->Arg(80)
    ->Unit(benchmark::kMicrosecond);

void BM_PredictionCost(benchmark::State& state) {
  // The prediction itself must be cheap (planning-time operation).
  ObjectStore store = MakeBenchStore(0.5);
  SphericalCoord c = FootprintCenter();
  htm::Region region = htm::Region::Circle(c.lon_deg, c.lat_deg, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.PredictRegion(region).expected_objects);
  }
}
BENCHMARK(BM_PredictionCost)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
