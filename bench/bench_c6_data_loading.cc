// C6 -- the data-loading claims: "about 20 GB will be arriving daily",
// "Our load design minimizes disk accesses, touching each clustering
// unit at most once during a load", via the two-phase (index, then
// single-pass insert) strategy.
//
// We replay nightly chunks through the two-phase clustered loader and the
// naive arrival-order loader, reporting container touches and modeled
// load time, and check that a 20 GB night loads in a small fraction of a
// day (the feasibility requirement).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "catalog/loader.h"

namespace sdss::bench {
namespace {

using catalog::Chunk;
using catalog::ChunkLoader;
using catalog::kPaperBytesPerPhotoObj;
using catalog::LoadStats;
using catalog::ObjectStore;
using catalog::SkyGenerator;
using catalog::StoreOptions;

void PrintC6() {
  // 12 nights over the footprint.
  auto chunks = SkyGenerator(BenchSkyModel(1.0)).GenerateChunks(12);

  PrintHeader("C6  Data loading: two-phase clustered vs naive loads");
  std::printf("%6s %9s %12s %12s %14s %14s\n", "night", "objects",
              "touches(2p)", "touches(nv)", "time(2p)", "time(nv)");

  StoreOptions opt{.cluster_level = 5, .build_tags = true};
  ObjectStore clustered_store(opt), naive_store(opt);
  ChunkLoader loader;
  double total_2p = 0, total_nv = 0;
  uint64_t objects = 0;
  for (const Chunk& chunk : chunks) {
    if (chunk.objects.empty()) continue;
    auto s2p = loader.LoadClustered(&clustered_store, chunk);
    auto snv = loader.LoadNaive(&naive_store, chunk);
    if (!s2p.ok() || !snv.ok()) continue;
    total_2p += s2p->sim_seconds;
    total_nv += snv->sim_seconds;
    objects += s2p->objects;
    std::printf("%6d %9llu %12llu %12llu %14s %14s\n", chunk.night,
                static_cast<unsigned long long>(s2p->objects),
                static_cast<unsigned long long>(s2p->container_touches),
                static_cast<unsigned long long>(snv->container_touches),
                FormatSimDuration(s2p->sim_seconds).c_str(),
                FormatSimDuration(snv->sim_seconds).c_str());
  }
  std::printf("\ntotal modeled load time: two-phase %s vs naive %s "
              "(%.1fx faster)\n",
              FormatSimDuration(total_2p).c_str(),
              FormatSimDuration(total_nv).c_str(), total_nv / total_2p);

  // Feasibility: one 20 GB night at paper scale.
  uint64_t night_objects = 20'000'000'000ull / kPaperBytesPerPhotoObj;
  // Touches scale with occupied containers (bounded by container count),
  // transfer with bytes.
  catalog::LoadCostModel cost;
  double transfer = 20'000'000'000.0 / (cost.write_mbps * 1e6);
  double seeks_2p = 8192.0 * cost.seek_seconds;  // Every container once.
  double seeks_nv =
      static_cast<double>(night_objects) * cost.seek_seconds;
  std::printf(
      "\nAt survey scale (one 20 GB night, %llu objects):\n"
      "  two-phase: %s transfer + %s seeks = %s  (fits the day easily)\n"
      "  naive:     %s transfer + %s seeks = %s  (misses the day)\n",
      static_cast<unsigned long long>(night_objects),
      FormatSimDuration(transfer).c_str(),
      FormatSimDuration(seeks_2p).c_str(),
      FormatSimDuration(transfer + seeks_2p).c_str(),
      FormatSimDuration(transfer).c_str(),
      FormatSimDuration(seeks_nv).c_str(),
      FormatSimDuration(transfer + seeks_nv).c_str());
  std::printf(
      "\nShape check: clustering turns per-object seeks into per-container "
      "seeks,\nthe difference between sustaining 20 GB/day and falling "
      "behind.\n");
}

void BM_ClusteredLoad(benchmark::State& state) {
  auto chunks = SkyGenerator(BenchSkyModel(0.5)).GenerateChunks(1);
  for (auto _ : state) {
    ObjectStore store;
    ChunkLoader loader;
    auto stats = loader.LoadClustered(&store, chunks[0]);
    benchmark::DoNotOptimize(stats->container_touches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(chunks[0].objects.size()));
}
BENCHMARK(BM_ClusteredLoad)->Unit(benchmark::kMillisecond);

void BM_NaiveLoad(benchmark::State& state) {
  auto chunks = SkyGenerator(BenchSkyModel(0.5)).GenerateChunks(1);
  for (auto _ : state) {
    ObjectStore store;
    ChunkLoader loader;
    auto stats = loader.LoadNaive(&store, chunks[0]);
    benchmark::DoNotOptimize(stats->container_touches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(chunks[0].objects.size()));
}
BENCHMARK(BM_NaiveLoad)->Unit(benchmark::kMillisecond);

void BM_BulkLoadScaling(benchmark::State& state) {
  double scale = static_cast<double>(state.range(0)) / 10.0;
  auto objs = SkyGenerator(BenchSkyModel(scale)).Generate();
  for (auto _ : state) {
    ObjectStore store;
    (void)store.BulkLoad(objs);
    benchmark::DoNotOptimize(store.container_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(objs.size()));
}
BENCHMARK(BM_BulkLoadScaling)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
