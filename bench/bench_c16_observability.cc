// C16 -- the cost of watching: metrics registry and query tracing
// overhead on the C9-style scan mix.
//
// The observability layer (ISSUE 9) promises that a process which does
// NOT opt in pays nothing measurable: the engine's metric sites are
// null-guarded pointer bumps and the trace sites branch once per stage,
// never per row. The artifact section runs the same federated scan mix
// three ways -- bare engine, metrics registry wired, metrics + per-query
// span tracing -- and reports median latency deltas. Microbenchmarks
// price the primitives themselves (histogram record, registry snapshot,
// span open/close, chrome JSON export).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "archive/sharded_store.h"
#include "bench_util.h"
#include "core/eventlog.h"
#include "core/metrics.h"
#include "core/metrics_history.h"
#include "query/federated_engine.h"
#include "query/trace.h"

namespace sdss::bench {
namespace {

using archive::ReplicationOptions;
using archive::ShardedStore;
using query::ExecContext;
using query::FederatedQueryEngine;
using query::QueryTrace;
using query::RowBatch;

/// The C9-style mix: a pruned cone, a color-cut scan, an aggregate.
const std::vector<std::string>& MixQueries() {
  static const std::vector<std::string> queries = {
      "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 6) "
      "AND r < 22",
      "SELECT obj_id, g, r FROM photo WHERE g - r < 0.8 AND r < 21",
      "SELECT COUNT(*) FROM photo WHERE class = 'QSO' AND r < 22",
  };
  return queries;
}

uint64_t RunMix(FederatedQueryEngine& engine, const ExecContext& ctx) {
  uint64_t rows = 0;
  for (const std::string& sql : MixQueries()) {
    auto stats = engine.ExecuteStreaming(
        sql,
        [&rows](const RowBatch& batch) {
          rows += batch.size();
          return true;
        },
        ctx);
    if (!stats.ok()) std::abort();
  }
  return rows;
}

double MedianMixSeconds(FederatedQueryEngine& engine, bool traced,
                        int rounds) {
  std::vector<double> seconds;
  seconds.reserve(rounds);
  for (int i = 0; i < rounds; ++i) {
    QueryTrace trace;
    ExecContext ctx;
    if (traced) ctx.trace = &trace;
    auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(RunMix(engine, ctx));
    seconds.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

void PrintC16() {
  auto store = MakeBenchStore(0.3);
  ReplicationOptions repl;
  repl.num_servers = 2;
  repl.base_replicas = 1;
  ShardedStore sharded(store, repl);
  auto shards = sharded.LiveShards();
  if (!shards.ok()) std::abort();

  FederatedQueryEngine bare(*shards);
  metrics::Registry registry;
  FederatedQueryEngine::Options instrumented;
  instrumented.metrics = &registry;
  FederatedQueryEngine wired(*shards, instrumented);

  PrintHeader("C16  Observability overhead on the C9-style scan mix");
  std::printf("catalog: %llu objects on a 2-shard fleet; mix = cone + "
              "color cut + aggregate\n\n",
              static_cast<unsigned long long>(store.object_count()));

  constexpr int kRounds = 31;
  (void)MedianMixSeconds(bare, false, 3);  // Warm the page cache.
  const double off = MedianMixSeconds(bare, false, kRounds);
  const double metrics_on = MedianMixSeconds(wired, false, kRounds);
  const double traced = MedianMixSeconds(wired, true, kRounds);

  auto delta = [off](double s) { return 100.0 * (s - off) / off; };
  std::printf("median mix latency over %d rounds:\n", kRounds);
  std::printf("  engine, no observability     %8.3f ms\n", off * 1e3);
  std::printf("  + metrics registry wired     %8.3f ms  (%+.2f%%)\n",
              metrics_on * 1e3, delta(metrics_on));
  std::printf("  + per-query span tracing     %8.3f ms  (%+.2f%%)\n",
              traced * 1e3, delta(traced));

  // One traced run, shown: the span forest and what the registry holds.
  QueryTrace trace;
  ExecContext ctx;
  ctx.trace = &trace;
  (void)RunMix(wired, ctx);
  std::printf("\none traced mix run: %zu spans, %zu bytes of chrome "
              "JSON\n",
              trace.span_count(), trace.ToChromeJson().size());
  const auto snaps = registry.Snapshot();
  std::printf("registry after the runs: %zu instruments, e.g.\n",
              snaps.size());
  for (const auto& s : snaps) {
    if (s.kind == metrics::Kind::kHistogram && s.hist.count > 0) {
      std::printf("  %s: n=%llu p50=%llu us p99=%llu us\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.hist.count),
                  static_cast<unsigned long long>(s.hist.P50()),
                  static_cast<unsigned long long>(s.hist.P99()));
    }
  }
  std::printf(
      "\nShape check: wiring the registry moves scan medians by noise "
      "(the off path\nis a null-guarded pointer test), and full span "
      "tracing stays in low single\ndigits -- spans are per stage, "
      "never per row.\n");
}

// ---------------------------------------------------------------------
// Microbenchmarks: the primitives.

void BM_HistogramRecord(benchmark::State& state) {
  metrics::Histogram h;
  uint64_t v = 1;
  for (auto _ : state) {
    h.Record(v++);
  }
  benchmark::DoNotOptimize(h.Count());
}
BENCHMARK(BM_HistogramRecord)->Unit(benchmark::kNanosecond);

void BM_CounterInc(benchmark::State& state) {
  metrics::Counter c;
  for (auto _ : state) {
    c.Inc();
  }
  benchmark::DoNotOptimize(c.Value());
}
BENCHMARK(BM_CounterInc)->Unit(benchmark::kNanosecond);

void BM_RegistrySnapshot(benchmark::State& state) {
  metrics::Registry reg;
  for (int i = 0; i < 32; ++i) {
    reg.GetCounter("counter_" + std::to_string(i))->Inc(i);
    reg.GetHistogram("hist_" + std::to_string(i))->Record(i * 100);
  }
  for (auto _ : state) {
    auto snaps = reg.Snapshot();
    benchmark::DoNotOptimize(snaps.size());
  }
}
BENCHMARK(BM_RegistrySnapshot)->Unit(benchmark::kMicrosecond);

/// What a /metrics scrape renders: the full Prometheus text page of a
/// registry about the size a loaded server carries.
void BM_TextExposition(benchmark::State& state) {
  metrics::Registry reg;
  for (int i = 0; i < 32; ++i) {
    reg.GetCounter("counter_" + std::to_string(i))->Inc(i);
    reg.GetHistogram("hist_" + std::to_string(i))->Record(i * 100);
  }
  for (auto _ : state) {
    std::string page = reg.TextExposition();
    benchmark::DoNotOptimize(page.size());
  }
}
BENCHMARK(BM_TextExposition)->Unit(benchmark::kMicrosecond);

/// What the monitoring plane's sampler pays every period: one registry
/// snapshot into the history ring.
void BM_HistorySample(benchmark::State& state) {
  metrics::Registry reg;
  for (int i = 0; i < 32; ++i) {
    reg.GetCounter("counter_" + std::to_string(i))->Inc(i);
    reg.GetHistogram("hist_" + std::to_string(i))->Record(i * 100);
  }
  metrics::History history(&reg);
  double now = 0.0;
  for (auto _ : state) {
    history.Sample(now += 1.0);
  }
  benchmark::DoNotOptimize(history.samples_taken());
}
BENCHMARK(BM_HistorySample)->Unit(benchmark::kMicrosecond);

/// One structured event, formatted and appended (no fsync by design).
void BM_EventLogEmit(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sdss_bench_eventlog")
          .string();
  std::filesystem::remove_all(dir);
  auto log = EventLog::Open(dir);
  if (!log.ok()) std::abort();
  for (auto _ : state) {
    (*log)->Emit(EventSeverity::kWarn, "workbench", "slow_query", 42,
                 {{"user", "ana"}, {"seconds", "2.171"}});
  }
  benchmark::DoNotOptimize((*log)->events_written());
  state.counters["write_errors"] =
      static_cast<double>((*log)->write_errors());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_EventLogEmit)->Unit(benchmark::kMicrosecond);

void BM_TraceSpanOpenClose(benchmark::State& state) {
  QueryTrace trace;
  for (auto _ : state) {
    int span = trace.Begin("stage");
    trace.Num(span, "rows", 1);
    trace.End(span);
  }
  benchmark::DoNotOptimize(trace.span_count());
}
BENCHMARK(BM_TraceSpanOpenClose)->Unit(benchmark::kNanosecond);

void BM_TraceChromeExport(benchmark::State& state) {
  QueryTrace trace;
  int root = trace.Begin("fan_out");
  for (int i = 0; i < 16; ++i) {
    int shard = trace.Begin("shard", root, 1 + i);
    trace.Num(shard, "rows", i * 100);
    trace.Note(shard, "kernel", "columnar");
    trace.End(shard);
  }
  trace.End(root);
  for (auto _ : state) {
    std::string json = trace.ToChromeJson();
    benchmark::DoNotOptimize(json.size());
  }
}
BENCHMARK(BM_TraceChromeExport)->Unit(benchmark::kMicrosecond);

/// The macro path, for the record: one mix round off vs on.
struct MixFixture {
  catalog::ObjectStore store = MakeBenchStore(0.15);
  ShardedStore sharded;
  std::vector<query::Shard> shards;
  MixFixture() : sharded(store, TwoShards()) {
    auto live = sharded.LiveShards();
    if (!live.ok()) std::abort();
    shards = *live;
  }
  static ReplicationOptions TwoShards() {
    ReplicationOptions repl;
    repl.num_servers = 2;
    repl.base_replicas = 1;
    return repl;
  }
};

void BM_MixObservabilityOff(benchmark::State& state) {
  MixFixture fx;
  FederatedQueryEngine engine(fx.shards);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMix(engine, {}));
  }
}
BENCHMARK(BM_MixObservabilityOff)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_MixMetricsOn(benchmark::State& state) {
  MixFixture fx;
  metrics::Registry registry;
  FederatedQueryEngine::Options options;
  options.metrics = &registry;
  FederatedQueryEngine engine(fx.shards, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMix(engine, {}));
  }
}
BENCHMARK(BM_MixMetricsOn)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MixTracedOn(benchmark::State& state) {
  MixFixture fx;
  metrics::Registry registry;
  FederatedQueryEngine::Options options;
  options.metrics = &registry;
  FederatedQueryEngine engine(fx.shards, options);
  for (auto _ : state) {
    QueryTrace trace;
    ExecContext ctx;
    ctx.trace = &trace;
    benchmark::DoNotOptimize(RunMix(engine, ctx));
  }
}
BENCHMARK(BM_MixTracedOn)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC16();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
