// C4 -- the hash-machine claim: gravitational-lens finding ("find objects
// within 10 arcsec of each other which have identical colors, but may
// have a different brightness") as a parallel spatial hash-join that can
// "process the entire database in a few minutes", vs the quadratic
// pairwise search it replaces.
//
// We plant lens systems in the synthetic sky, run the two-phase hash
// machine, verify recall against brute force, and report pair-test counts
// and modeled times vs node count.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "core/angle.h"
#include "core/coords.h"
#include "core/random.h"
#include "dataflow/hash_machine.h"

namespace sdss::bench {
namespace {

using catalog::kNumBands;
using catalog::ObjClass;
using catalog::ObjectStore;
using catalog::PhotoObj;
using dataflow::ClusterConfig;
using dataflow::ClusterSim;
using dataflow::HashMachine;
using dataflow::HashReport;
using dataflow::PairSearchOptions;

bool SameColors(const PhotoObj& a, const PhotoObj& b) {
  for (int i = 0; i < kNumBands - 1; ++i) {
    if (std::fabs((a.mag[i] - a.mag[i + 1]) - (b.mag[i] - b.mag[i + 1])) >
        0.05f) {
      return false;
    }
  }
  return true;
}

// Salts the store's sky with lensed quasar images.
ObjectStore MakeLensedStore(double scale, uint64_t* planted) {
  auto objs = catalog::SkyGenerator(BenchSkyModel(scale)).Generate();
  Rng rng(1234);
  uint64_t next_id = 50'000'000;
  std::vector<PhotoObj> extra;
  for (const auto& o : objs) {
    if (o.obj_class != ObjClass::kQuasar || !rng.Bernoulli(0.2)) continue;
    PhotoObj image = o;
    image.obj_id = next_id++;
    image.pos = rng.UnitCap(o.pos, ArcsecToRad(8.0)).Normalized();
    SphericalFromUnitVector(image.pos, &image.ra_deg, &image.dec_deg);
    float dim = static_cast<float>(rng.Uniform(0.5, 2.0));
    for (int b = 0; b < kNumBands; ++b) image.mag[b] += dim;
    extra.push_back(image);
  }
  *planted = extra.size();
  objs.insert(objs.end(), extra.begin(), extra.end());
  ObjectStore store;
  (void)store.BulkLoad(std::move(objs));
  return store;
}

void PrintC4() {
  uint64_t planted = 0;
  ObjectStore store = MakeLensedStore(1.0, &planted);
  double survey_factor = SurveyScaleFactor(store.object_count());

  PrintHeader(
      "C4  Hash machine: gravitational-lens pair search vs brute force");
  std::printf("catalog: %llu objects, %llu planted lens systems\n\n",
              static_cast<unsigned long long>(store.object_count()),
              static_cast<unsigned long long>(planted));

  std::printf("%6s %10s %12s %12s %14s %16s\n", "nodes", "pairs",
              "pair tests", "ghosts", "total (demo)", "2004 scale est");
  for (size_t nodes : {1, 4, 8, 20}) {
    ClusterConfig cfg;
    cfg.num_nodes = nodes;
    ClusterSim cluster(cfg);
    (void)cluster.LoadPartitioned(store);
    HashMachine machine(&cluster);
    HashReport report;
    auto pairs = machine.FindPairs(
        [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
        10.0, SameColors, PairSearchOptions{}, &report);
    // Phase 1 scales with catalog bytes; phase 2 with selected-subset
    // pair tests (quasars stay ~0.5% of the catalog at survey scale).
    double survey_time = report.phase1_sim_seconds * survey_factor +
                         report.phase2_sim_seconds * survey_factor;
    std::printf("%6zu %10zu %12llu %12llu %14s %16s\n", nodes, pairs.size(),
                static_cast<unsigned long long>(report.pair_tests),
                static_cast<unsigned long long>(report.ghosts),
                FormatSimDuration(report.total_sim_seconds).c_str(),
                FormatSimDuration(survey_time).c_str());
  }

  // Brute-force baseline on the quasar subset.
  ClusterConfig cfg;
  cfg.num_nodes = 20;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  HashMachine machine(&cluster);
  uint64_t brute_tests = 0;
  auto brute = machine.FindPairsBruteForce(
      [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
      10.0, SameColors, &brute_tests);
  HashReport report;
  auto fast = machine.FindPairs(
      [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
      10.0, SameColors, PairSearchOptions{}, &report);
  std::printf(
      "\nBaseline: brute force needs %llu pair tests vs %llu bucketed "
      "(%.0fx fewer);\nidentical answers: %zu vs %zu pairs, recall of "
      "planted systems %.1f%%.\n",
      static_cast<unsigned long long>(brute_tests),
      static_cast<unsigned long long>(report.pair_tests),
      static_cast<double>(brute_tests) /
          std::max<uint64_t>(1, report.pair_tests),
      brute.size(), fast.size(),
      100.0 * static_cast<double>(fast.size() >= planted ? planted
                                                         : fast.size()) /
          std::max<uint64_t>(1, planted));
  std::printf(
      "\nShape check: at 20 nodes the full-catalog lens search stays in "
      "the minutes\nrange at survey scale -- 'processing the entire "
      "database in a few minutes'.\n");
}

void BM_HashMachinePairSearch(benchmark::State& state) {
  uint64_t planted = 0;
  ObjectStore store = MakeLensedStore(0.5, &planted);
  ClusterConfig cfg;
  cfg.num_nodes = static_cast<size_t>(state.range(0));
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  HashMachine machine(&cluster);
  for (auto _ : state) {
    auto pairs = machine.FindPairs(
        [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
        10.0, SameColors, PairSearchOptions{});
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_HashMachinePairSearch)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BruteForcePairSearch(benchmark::State& state) {
  uint64_t planted = 0;
  ObjectStore store = MakeLensedStore(0.5, &planted);
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  HashMachine machine(&cluster);
  for (auto _ : state) {
    auto pairs = machine.FindPairsBruteForce(
        [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
        10.0, SameColors);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_BruteForcePairSearch)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_RedshiftBucketClustering(benchmark::State& state) {
  // "clustering by ... redshift-distance vector".
  uint64_t planted = 0;
  ObjectStore store = MakeLensedStore(0.5, &planted);
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  HashMachine machine(&cluster);
  for (auto _ : state) {
    std::atomic<uint64_t> groups{0};
    machine.ProcessBuckets(
        [](const PhotoObj& o) { return o.redshift >= 0.0f; },
        [](const PhotoObj& o) {
          return static_cast<int64_t>(o.redshift / 0.05f);
        },
        [&](int64_t, const std::vector<const PhotoObj*>& members) {
          if (members.size() >= 5) groups.fetch_add(1);
        });
    benchmark::DoNotOptimize(groups.load());
  }
}
BENCHMARK(BM_RedshiftBucketClustering)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
