// C11 -- the distributed spatial neighbor join.
//
// The C9 lens-candidate pair query executed two ways over the SAME sky:
// (A) the ClusterSim hash machine (the paper's standalone two-phase
// bucket demo) and (B) the federated fleet path -- ShardedStore +
// FederatedQueryEngine running the kPairJoin operator per shard with the
// boundary ghost exchange. Both drive the one dataflow::PairHasher core,
// so the delta is pure orchestration: scan plumbing, ghost shipping,
// merge + dedupe. The deterministic section also reports the exchange
// volume (bytes shipped vs scanned), the first observable of the
// network cost model.
//
// Baseline recording (the 1-core methodology: interleaved A/B with
// medians, never back-to-back one-sided runs):
//   ./build/bench/bench_c11_pair_join
//       --benchmark_enable_random_interleaving=true
//       --benchmark_repetitions=5
//       --benchmark_report_aggregates_only=true
//       --benchmark_out=BENCH_c11_pair_join.json
//       --benchmark_out_format=json
// (one command line; wrapped here for width)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "archive/sharded_store.h"
#include "bench_util.h"
#include "catalog/photo_obj.h"
#include "dataflow/hash_machine.h"
#include "query/federated_engine.h"
#include "query/query_engine.h"

namespace sdss::bench {
namespace {

using archive::ShardedStore;
using catalog::kNumBands;
using catalog::ObjectStore;
using catalog::PhotoObj;
using dataflow::ClusterConfig;
using dataflow::ClusterSim;
using dataflow::HashMachine;
using dataflow::HashReport;
using dataflow::PairSearchOptions;
using query::FederatedQueryEngine;
using query::QueryEngine;

constexpr double kSepArcsec = 10.0;

/// The lens query, SQL form: pairs within 10 arcsec with identical g-r
/// and r-i colors to 0.05 mag (C9 (c) with the executor's either-
/// assignment semantics; symmetric, so roles do not matter).
const char kLensSql[] =
    "SELECT a.obj_id, b.obj_id, sep FROM photo AS a "
    "JOIN photo AS b WITHIN 10 ARCSEC "
    "WHERE a.g - a.r - b.g + b.r < 0.05 AND b.g - b.r - a.g + a.r < 0.05 "
    "AND a.r - a.i - b.r + b.i < 0.05 AND b.r - b.i - a.r + a.i < 0.05";

/// The same predicate, hash-machine form.
bool LensPair(const PhotoObj& a, const PhotoObj& b) {
  for (int i = 1; i < 3; ++i) {
    if (std::fabs((a.mag[i] - a.mag[i + 1]) - (b.mag[i] - b.mag[i + 1])) >=
        0.05) {
      return false;
    }
  }
  return true;
}

void PrintC11() {
  ObjectStore store = MakeBenchStore(0.5);
  PrintHeader("C11  Distributed neighbor join: hash machine vs the fleet");
  std::printf("catalog: %llu objects, lens pairs within %.0f arcsec\n\n",
              static_cast<unsigned long long>(store.object_count()),
              kSepArcsec);

  // (A) The standalone hash machine on a 20-node ClusterSim.
  ClusterConfig cfg;
  cfg.num_nodes = 20;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  HashMachine machine(&cluster);
  HashReport rep;
  auto t0 = std::chrono::steady_clock::now();
  auto pairs = machine.FindPairs([](const PhotoObj&) { return true; },
                                 kSepArcsec, LensPair, PairSearchOptions{},
                                 &rep);
  double machine_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "(A) ClusterSim hash machine: %zu pairs, %llu pair tests, "
      "%llu buckets, %.1f ms\n",
      pairs.size(), static_cast<unsigned long long>(rep.pair_tests),
      static_cast<unsigned long long>(rep.buckets), machine_s * 1e3);

  // (B) The same query through the federated fleet, 4 shards.
  ShardedStore sharded(store, {4, 2});
  auto shards = sharded.LiveShards();
  if (!shards.ok()) return;
  FederatedQueryEngine fed(*shards);
  t0 = std::chrono::steady_clock::now();
  auto result = fed.Execute(kLensSql);
  double fed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!result.ok()) {
    std::printf("federated join failed: %s\n",
                result.status().ToString().c_str());
    return;
  }
  std::printf(
      "(B) federated fleet (4 shards): %zu pairs, %.1f ms; "
      "%llu bytes scanned, %llu bytes shipped (%.2f%% ghost traffic)\n",
      result->rows.size(), fed_s * 1e3,
      static_cast<unsigned long long>(result->exec.bytes_touched),
      static_cast<unsigned long long>(result->exec.bytes_shipped),
      result->exec.bytes_touched > 0
          ? 100.0 * static_cast<double>(result->exec.bytes_shipped) /
                static_cast<double>(result->exec.bytes_touched)
          : 0.0);
  std::printf(
      "\nShape check: identical pair sets from one PairHasher core; the "
      "fleet pays\nonly the boundary ghost band for distribution, a few "
      "percent of scanned bytes.\n");
}

void BM_ClusterHashMachine(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.3);
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  HashMachine machine(&cluster);
  for (auto _ : state) {
    auto pairs = machine.FindPairs([](const PhotoObj&) { return true; },
                                   kSepArcsec, LensPair,
                                   PairSearchOptions{});
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_ClusterHashMachine)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SingleStoreJoin(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.3);
  QueryEngine engine(&store);
  for (auto _ : state) {
    auto r = engine.Execute(kLensSql);
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_SingleStoreJoin)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FleetPairJoin(benchmark::State& state) {
  size_t servers = static_cast<size_t>(state.range(0));
  ObjectStore store = MakeBenchStore(0.3);
  ShardedStore sharded(store, {servers, 2});
  auto shards = sharded.LiveShards();
  if (!shards.ok()) {
    state.SkipWithError("no live shards");
    return;
  }
  FederatedQueryEngine fed(*shards);
  uint64_t shipped = 0;
  for (auto _ : state) {
    auto r = fed.Execute(kLensSql);
    benchmark::DoNotOptimize(r->rows.size());
    shipped = r->exec.bytes_shipped;
  }
  state.counters["bytes_shipped"] =
      benchmark::Counter(static_cast<double>(shipped));
}
BENCHMARK(BM_FleetPairJoin)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC11();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
