// C13 -- durable archive: snapshot bandwidth, journal append latency,
// and cold recovery of a crashed 100-job workbench session.
//
// The persistence subsystem's price list. Snapshots are the MyDB
// materialization tax (one durable columnar file per table) and the
// restart tax (every committed table is re-read); the journal append is
// on every submit/start/terminal transition, so its latency bounds the
// workbench's admission rate; cold recovery is the service's
// time-to-first-query after a crash. Compare interleaved medians (see
// BUILDING.md: this box is 1-core and noisy; never trust single runs).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "bench_util.h"
#include "core/io.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "query/federated_engine.h"
#include "workbench/scheduler.h"

namespace sdss::bench {
namespace {

namespace fs = std::filesystem;

using archive::MyDb;
using archive::ReplicationOptions;
using archive::ShardedStore;
using query::FederatedQueryEngine;
using workbench::JobScheduler;
using workbench::JobState;

constexpr char kBlockingJoinSql[] =
    "SELECT COUNT(*) FROM photo AS a JOIN photoobj AS b WITHIN 3 DEG";
constexpr char kQuickConeSql[] =
    "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 3)";
constexpr int kSessionJobs = 100;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

fs::path BenchDir(const std::string& name) {
  return fs::temp_directory_path() / ("sdss_bench_c13_" + name);
}

/// One fleet + a recorded "crashed" 100-job session for the whole
/// binary: a mining join was RUNNING and 100 quick cones were QUEUED
/// when the process died.
struct PersistBench {
  catalog::ObjectStore store;
  std::unique_ptr<ShardedStore> sharded;
  std::unique_ptr<FederatedQueryEngine> fed;
  fs::path session_dir = BenchDir("session_master");
  std::string snapshot_bytes;

  PersistBench() : store(MakeBenchStore(0.25)) {
    ReplicationOptions repl;
    repl.num_servers = 2;
    repl.base_replicas = 2;
    sharded = std::make_unique<ShardedStore>(store, repl);
    auto live = sharded->LiveShards();
    if (!live.ok()) std::abort();
    fed = std::make_unique<FederatedQueryEngine>(*live);
    snapshot_bytes = persist::EncodeSnapshot(store);
    RecordCrashedSession();
  }

  static JobScheduler::Options SerialOptions() {
    JobScheduler::Options opt;
    opt.quick_workers = 1;
    opt.long_workers = 1;
    opt.per_user_running = 1;
    return opt;
  }

  void RecordCrashedSession() {
    fs::remove_all(session_dir);
    MyDb mydb;
    JobScheduler sched(fed.get(), &mydb, SerialOptions());
    if (!sched.RecoverFrom(session_dir.string()).ok()) std::abort();
    // One user: the running join occupies the only per-user slot, so
    // the 100 cones pile up QUEUED -- the worst-case recovery inventory.
    auto join = sched.Submit("miner", kBlockingJoinSql);
    if (!join.ok()) std::abort();
    while (sched.Snapshot(*join)->state == JobState::kQueued) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (int i = 0; i < kSessionJobs; ++i) {
      if (!sched.Submit("miner", kQuickConeSql).ok()) std::abort();
    }
    // Scope exit tears the scheduler down without terminal records:
    // SIGKILL-equivalent for the journal.
  }

  /// Copies the master session and times RecoverFrom on the copy.
  double RecoverOnce(size_t* requeued) {
    const fs::path scratch = BenchDir("session_scratch");
    fs::remove_all(scratch);
    fs::copy(session_dir, scratch, fs::copy_options::recursive);
    MyDb mydb;
    JobScheduler sched(fed.get(), &mydb, SerialOptions());
    auto t0 = std::chrono::steady_clock::now();
    auto report = sched.RecoverFrom(scratch.string());
    double secs = SecondsSince(t0);
    if (!report.ok()) std::abort();
    if (requeued != nullptr) *requeued = report->requeued_ids.size();
    return secs;
  }
};

PersistBench& Fixture() {
  static PersistBench* pb = new PersistBench();
  return *pb;
}

void PrintC13() {
  PrintHeader("C13  Durable archive: snapshot + journal + cold recovery");
  PersistBench& pb = Fixture();
  const double mb = 1.0 / (1 << 20);
  const double snap_mb = static_cast<double>(pb.snapshot_bytes.size()) * mb;
  std::printf("store: %llu objects in %zu containers; snapshot %.1f MB "
              "(columnar, CRC-32 trailer)\n\n",
              static_cast<unsigned long long>(pb.store.object_count()),
              pb.store.container_count(), snap_mb);

  const fs::path dir = BenchDir("preamble");
  fs::remove_all(dir);
  (void)CreateDirs(dir.string());
  const std::string snap_path = (dir / "store.snap").string();

  auto t0 = std::chrono::steady_clock::now();
  persist::SnapshotWriter writer(snap_path);
  if (!writer.Write(pb.store).ok()) std::abort();
  double write_s = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  persist::SnapshotReader reader(snap_path);
  auto loaded = reader.Read();
  if (!loaded.ok()) std::abort();
  double read_s = SecondsSince(t0);

  std::printf("snapshot durable write: %6.1f MB/s   (temp+fsync+rename)\n",
              snap_mb / write_s);
  std::printf("snapshot read+verify:   %6.1f MB/s   (CRC + columnar "
              "decode, %llu objects)\n",
              snap_mb / read_s,
              static_cast<unsigned long long>(loaded->object_count()));

  persist::Journal::Options jopt;
  jopt.sync_each_append = true;
  auto journal = persist::Journal::Open((dir / "journal").string(), jopt);
  if (!journal.ok()) std::abort();
  const std::string record(256, 'j');
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 200; ++i) {
    if (!(*journal)->Append(record).ok()) std::abort();
  }
  double append_s = SecondsSince(t0);
  std::printf("journal append (synced): %5.0f us/record over 200 "
              "256-B records\n",
              append_s / 200 * 1e6);

  size_t requeued = 0;
  double recover_s = pb.RecoverOnce(&requeued);
  std::printf("cold recovery of a crashed %d-job session: %.1f ms "
              "(%zu QUEUED jobs re-enqueued,\n1 RUNNING join -> "
              "failed-retryable)\n",
              kSessionJobs, recover_s * 1e3, requeued);
  fs::remove_all(dir);
}

void BM_SnapshotWrite(benchmark::State& state) {
  PersistBench& pb = Fixture();
  const fs::path dir = BenchDir("bm_write");
  fs::remove_all(dir);
  if (!CreateDirs(dir.string()).ok()) std::abort();
  persist::SnapshotWriter writer((dir / "s.snap").string());
  for (auto _ : state) {
    if (!writer.Write(pb.store).ok()) std::abort();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(writer.bytes_written()));
  fs::remove_all(dir);
}
BENCHMARK(BM_SnapshotWrite)->Unit(benchmark::kMillisecond);

void BM_SnapshotRead(benchmark::State& state) {
  PersistBench& pb = Fixture();
  const fs::path dir = BenchDir("bm_read");
  fs::remove_all(dir);
  if (!CreateDirs(dir.string()).ok()) std::abort();
  persist::SnapshotWriter writer((dir / "s.snap").string());
  if (!writer.Write(pb.store).ok()) std::abort();
  persist::SnapshotReader reader((dir / "s.snap").string());
  for (auto _ : state) {
    auto loaded = reader.Read();
    if (!loaded.ok()) std::abort();
    benchmark::DoNotOptimize(loaded->object_count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(writer.bytes_written()));
  fs::remove_all(dir);
}
BENCHMARK(BM_SnapshotRead)->Unit(benchmark::kMillisecond);

/// Arg 0: buffered appends (explicit Sync amortized elsewhere);
/// arg 1: fdatasync on every append (the workbench default).
void BM_JournalAppend(benchmark::State& state) {
  const fs::path dir = BenchDir("bm_append");
  fs::remove_all(dir);
  persist::Journal::Options opt;
  opt.sync_each_append = state.range(0) == 1;
  auto journal = persist::Journal::Open(dir.string(), opt);
  if (!journal.ok()) std::abort();
  const std::string record(256, 'j');
  for (auto _ : state) {
    if (!(*journal)->Append(record).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_JournalAppend)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_ColdRecovery(benchmark::State& state) {
  PersistBench& pb = Fixture();
  for (auto _ : state) {
    // Only RecoverFrom is on the clock: the directory copy and the
    // scheduler teardown are setup noise.
    double secs = pb.RecoverOnce(nullptr);
    state.SetIterationTime(secs);
  }
  state.SetItemsProcessed(state.iterations() * kSessionJobs);
}
BENCHMARK(BM_ColdRecovery)->UseManualTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC13();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::filesystem::remove_all(sdss::bench::BenchDir("session_master"));
  std::filesystem::remove_all(sdss::bench::BenchDir("session_scratch"));
  return 0;
}
