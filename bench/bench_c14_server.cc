// C14 -- query server: tail latency under concurrent sessions.
//
// The paper's archive is sized for a whole community of astronomers;
// the TCP front end (src/server/) is where that community arrives.
// This bench is the load generator: N concurrent sessions (each its
// own user, its own connection, its own thread) drive a SkyServer-style
// quick-query mix through the full wire path -- frame, authenticate,
// admission, federated execution, streamed rows back -- and we report
// p50/p99 per-statement latency at N = 100, 500 and 1000 sessions.
//
// The acceptance shape: the server must *degrade*, never collapse.
// Below the BUSY threshold every connection is accepted (zero drops);
// past it, overload surfaces as explicit BUSY + retry-after verdicts
// that the generator obeys, and the accept queue stays bounded.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "bench_util.h"
#include "query/federated_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "workbench/scheduler.h"

namespace sdss::bench {
namespace {

using archive::MyDb;
using archive::ReplicationOptions;
using archive::ShardedStore;
using query::FederatedQueryEngine;
using server::Client;
using server::QueryOutcome;
using server::QueryServer;
using server::ServerOptions;
using workbench::JobScheduler;

/// The quick mix: small spatially-pruned selects and aggregates, the
/// shape of SkyServer's interactive traffic.
constexpr const char* kMix[] = {
    "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 4)",
    "SELECT COUNT(*) FROM photo WHERE CIRCLE(180, 0, 5)",
    "SELECT obj_id, g, r FROM tag WHERE RECT(40, 55, -8, 8) AND r < 21",
    "SELECT obj_id FROM photo WHERE BAND(-3, 3) AND class = 'QSO'",
};
constexpr int kMixSize = 4;

/// One fleet + scheduler + server for the whole binary.
struct ServerFixture {
  catalog::ObjectStore store;
  std::unique_ptr<ShardedStore> sharded;
  std::unique_ptr<FederatedQueryEngine> fed;
  std::unique_ptr<MyDb> mydb;
  std::unique_ptr<JobScheduler> scheduler;
  std::unique_ptr<QueryServer> server;

  ServerFixture() : store(MakeBenchStore(0.5)) {
    ReplicationOptions repl;
    repl.num_servers = 4;
    repl.base_replicas = 2;
    sharded = std::make_unique<ShardedStore>(store, repl);
    auto live = sharded->LiveShards();
    if (!live.ok()) std::abort();
    fed = std::make_unique<FederatedQueryEngine>(*live);
    mydb = std::make_unique<MyDb>();
    JobScheduler::Options lanes;
    lanes.quick_workers = 4;
    lanes.long_workers = 1;
    lanes.per_user_running = 1;
    lanes.max_queued_quick = 4096;
    scheduler = std::make_unique<JobScheduler>(fed.get(), mydb.get(), lanes);
    ServerOptions options;
    options.max_sessions = 1200;   // Above the largest tested N.
    options.backlog = 1024;        // The connect burst must not drop.
    options.busy_quick_depth = 512;
    options.busy_retry_ms = 25;
    server = std::make_unique<QueryServer>(scheduler.get(), options);
    if (!server->Start().ok()) std::abort();
  }
};

ServerFixture& Fixture() {
  static ServerFixture* f = new ServerFixture();
  return *f;
}

struct LoadResult {
  std::vector<double> latencies;  ///< Per-statement seconds (successes).
  uint64_t busy = 0;              ///< BUSY verdicts obeyed (then retried).
  uint64_t errors = 0;
  uint64_t connect_failures = 0;
  double wall_seconds = 0;
};

/// Runs `sessions` concurrent sessions, each `per_session` statements
/// from the mix (every session a distinct user). BUSY verdicts back off
/// by the server's retry-after hint and retry the same statement.
LoadResult RunLoad(int sessions, int per_session) {
  ServerFixture& f = Fixture();
  LoadResult result;
  std::mutex mu;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&f, &result, &mu, s, per_session] {
      auto client = Client::Connect("127.0.0.1", f.server->port(),
                                    "u" + std::to_string(s));
      if (!client.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        ++result.connect_failures;
        return;
      }
      std::vector<double> mine;
      uint64_t busy = 0, errors = 0;
      for (int q = 0; q < per_session; ++q) {
        const char* sql = kMix[(s + q) % kMixSize];
        for (;;) {
          auto t = std::chrono::steady_clock::now();
          auto out = client->Query(sql);
          if (!out.ok()) {
            ++errors;
            break;
          }
          if (out->kind == QueryOutcome::Kind::kBusy) {
            ++busy;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(out->busy.retry_after_ms));
            continue;
          }
          if (out->kind == QueryOutcome::Kind::kDone) {
            mine.push_back(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t)
                               .count());
          } else {
            ++errors;
          }
          break;
        }
      }
      (void)client->Bye();
      std::lock_guard<std::mutex> lock(mu);
      result.latencies.insert(result.latencies.end(), mine.begin(),
                              mine.end());
      result.busy += busy;
      result.errors += errors;
    });
  }
  for (auto& t : threads) t.join();
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  std::sort(result.latencies.begin(), result.latencies.end());
  return result;
}

double PercentileMs(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx] * 1e3;
}

void PrintC14() {
  PrintHeader("C14  Query server: SkyServer mix under concurrent sessions");
  ServerFixture& f = Fixture();
  std::printf(
      "fleet: 4 servers x2 replicas, %llu objects; scheduler: 4 quick + "
      "1 long worker;\nserver: max_sessions 1200, busy_quick_depth 512, "
      "retry-after 25 ms\nmix: cone select / cone count / rect tag "
      "select / band class select, 3 per session\n\n",
      static_cast<unsigned long long>(f.store.object_count()));

  std::printf("%9s %9s %9s %9s %7s %7s %9s %8s\n", "sessions", "queries",
              "p50 ms", "p99 ms", "busy", "errors", "refused", "wall s");
  uint64_t refused_before = f.server->stats().sessions_refused;
  for (int sessions : {100, 500, 1000}) {
    LoadResult r = RunLoad(sessions, 3);
    uint64_t refused = f.server->stats().sessions_refused - refused_before;
    refused_before = f.server->stats().sessions_refused;
    std::printf("%9d %9zu %9.2f %9.2f %7llu %7llu %9llu %8.2f\n",
                sessions, r.latencies.size(),
                PercentileMs(r.latencies, 0.50),
                PercentileMs(r.latencies, 0.99),
                static_cast<unsigned long long>(r.busy),
                static_cast<unsigned long long>(r.errors),
                static_cast<unsigned long long>(refused + r.connect_failures),
                r.wall_seconds);
  }
  std::printf(
      "\nShape check: every session below max_sessions is accepted "
      "(refused = 0);\noverload surfaces as BUSY verdicts the client "
      "retries, and p99 grows with\nqueueing -- graceful degradation, "
      "not accept-queue collapse.\n");
}

/// Full wire round trip of one quick statement, single session.
void BM_ServerRoundTrip(benchmark::State& state) {
  ServerFixture& f = Fixture();
  auto client = Client::Connect("127.0.0.1", f.server->port(), "bench");
  if (!client.ok()) std::abort();
  const char* sql = kMix[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto out = client->Query(sql);
    if (!out.ok() || out->kind != QueryOutcome::Kind::kDone) std::abort();
    benchmark::DoNotOptimize(out->done.rows);
  }
  (void)client->Bye();
}
BENCHMARK(BM_ServerRoundTrip)
    ->DenseRange(0, kMixSize - 1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Connect + HELLO/WELCOME + BYE, the per-session fixed cost.
void BM_ServerHandshake(benchmark::State& state) {
  ServerFixture& f = Fixture();
  for (auto _ : state) {
    auto client = Client::Connect("127.0.0.1", f.server->port(), "hs");
    if (!client.ok()) std::abort();
    (void)client->Bye();
  }
}
BENCHMARK(BM_ServerHandshake)->Unit(benchmark::kMicrosecond)->UseRealTime();

/// The load-generator phase as a macro-benchmark: wall time for N
/// concurrent sessions x 3 statements (manual timing, one shot per
/// iteration).
void BM_ServerConcurrentLoad(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LoadResult r = RunLoad(sessions, 3);
    state.SetIterationTime(r.wall_seconds);
    state.counters["p99_ms"] = PercentileMs(r.latencies, 0.99);
    state.counters["busy"] = static_cast<double>(r.busy);
    if (r.connect_failures != 0) std::abort();
  }
}
BENCHMARK(BM_ServerConcurrentLoad)
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC14();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
