// F2 -- Figure 2: the archive data-flow with publication delays.
//
// Replays a 60-night observing campaign (20 GB/night, per the paper's
// data-loading section) through the T -> OA -> MSA -> LA -> MPA -> PA
// pipeline and reports when each tier sees the data -- reproducing the
// figure's "1 day / 2 weeks / 1 month / 1-2 years" annotations -- plus a
// recalibration event that re-publishes early chunks.

#include <benchmark/benchmark.h>

#include "archive/archive.h"
#include "bench_util.h"
#include "core/sim_clock.h"

namespace sdss::bench {
namespace {

using archive::ArchivePipeline;
using archive::LocalArchiveSet;
using archive::Tier;

constexpr uint64_t kObjectsPerNight = 500'000;   // ~20 GB / 40 KB rows.
constexpr uint64_t kBytesPerNight = 20'000'000'000ull;  // "about 20 GB".

ArchivePipeline ReplayCampaign(int nights) {
  ArchivePipeline p;
  for (int n = 0; n < nights; ++n) {
    (void)p.ObserveChunk(n, kObjectsPerNight, kBytesPerNight,
                         static_cast<SimSeconds>(n) * kSimDay);
  }
  return p;
}

void PrintFigure2() {
  const int kNights = 60;
  ArchivePipeline p = ReplayCampaign(kNights);

  PrintHeader("F2  Figure 2: archive data flow and publication latency");
  std::printf("Campaign: %d nights x %s/night\n\n", kNights,
              FormatBytes(kBytesPerNight).c_str());

  // Latency of the first chunk through each tier (the figure's arrows).
  auto rec = p.GetChunk(0);
  std::printf("%-6s %-28s %14s   (paper annotation)\n", "tier",
              "description", "latency");
  const char* notes[] = {"observation (tapes)",  "reduced + calibrated",
                         "organized for science", "replicated to sites",
                         "science-verified",      "public access"};
  const char* paper[] = {"-", "1 day", "2 weeks", "1 month", "1-2 years",
                         "+1 week"};
  for (int t = 0; t < archive::kNumTiers; ++t) {
    std::printf("%-6s %-28s %14s   (%s)\n",
                archive::TierName(static_cast<Tier>(t)), notes[t],
                FormatSimDuration(rec->visible_at[t] -
                                  rec->visible_at[0])
                    .c_str(),
                paper[t]);
  }

  // Data volume growth per tier over the campaign.
  std::printf("\nBytes visible per tier over time:\n");
  std::printf("%10s %12s %12s %12s %12s\n", "day", "OA", "MSA", "LA", "PA");
  for (double day : {1.0, 15.0, 30.0, 60.0, 90.0, 400.0, 600.0}) {
    SimSeconds t = day * kSimDay;
    std::printf("%10.0f %12s %12s %12s %12s\n", day,
                FormatBytes(p.BytesVisible(Tier::kOperational, t)).c_str(),
                FormatBytes(p.BytesVisible(Tier::kMasterScience, t)).c_str(),
                FormatBytes(p.BytesVisible(Tier::kLocal, t)).c_str(),
                FormatBytes(p.BytesVisible(Tier::kPublic, t)).c_str());
  }

  // Recalibration: version 2 of the first 30 nights at day 120.
  (void)p.Recalibrate(29, 120 * kSimDay);
  auto rec2 = p.GetChunk(10);
  std::printf("\nRecalibration at day 120 (nights 0-29): night 10 is now "
              "version %d,\n  MSA re-publication at day %.0f, public at day "
              "%.0f\n",
              rec2->version,
              rec2->visible_at[static_cast<int>(Tier::kMasterScience)] /
                  kSimDay,
              rec2->visible_at[static_cast<int>(Tier::kPublic)] / kSimDay);

  LocalArchiveSet sites({0.0, 2 * kSimDay, 7 * kSimDay});
  std::printf("\nLocal archive staleness bound: %s across %zu sites\n",
              FormatSimDuration(sites.MaxLag()).c_str(),
              sites.site_count());
}

void BM_CampaignReplay(benchmark::State& state) {
  int nights = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ArchivePipeline p = ReplayCampaign(nights);
    benchmark::DoNotOptimize(
        p.ObjectsVisible(Tier::kPublic, 1000 * kSimDay));
  }
  state.SetItemsProcessed(state.iterations() * nights);
}
BENCHMARK(BM_CampaignReplay)->Arg(60)->Arg(365)->Arg(1825);

void BM_VisibilityQuery(benchmark::State& state) {
  ArchivePipeline p = ReplayCampaign(1825);  // Full five-year survey.
  double day = 0;
  for (auto _ : state) {
    day += 1.0;
    benchmark::DoNotOptimize(
        p.ObjectsVisible(Tier::kMasterScience, day * kSimDay));
  }
}
BENCHMARK(BM_VisibilityQuery);

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
