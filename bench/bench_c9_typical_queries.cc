// C9 -- the paper's three "typical queries":
//   (a) finding charts: "fairly complex queries on position, colors, and
//       other parts of the attribute space";
//   (b) "find all the quasars brighter than r=22, which have a faint blue
//       galaxy within 5 arcsec on the sky" (non-local / join query);
//   (c) "find objects within 10 arcsec of each other which have identical
//       colors, but may have a different brightness" (gravitational
//       lens, high-dimensional pair query).
//
// (a) runs on the query engine with HTM pruning; (b) and (c) run on the
// hash machine. We report end-to-end latency and objects touched, with
// survey-scale extrapolation of the I/O-bound parts.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "core/angle.h"
#include "core/coords.h"
#include "core/random.h"
#include "dataflow/hash_machine.h"
#include "persist/snapshot.h"
#include "query/query_engine.h"

namespace sdss::bench {
namespace {

using catalog::kNumBands;
using catalog::ObjClass;
using catalog::ObjectStore;
using catalog::PhotoObj;
using dataflow::ClusterConfig;
using dataflow::ClusterSim;
using dataflow::HashMachine;
using dataflow::HashReport;
using dataflow::PairSearchOptions;
using query::QueryEngine;

void PrintC9() {
  // Sky salted with quasar+faint-blue-galaxy pairs and lens images.
  auto objs = catalog::SkyGenerator(BenchSkyModel(1.0)).Generate();
  Rng rng(31415);
  uint64_t next_id = 80'000'000;
  uint64_t planted_neighbors = 0, planted_lenses = 0;
  std::vector<PhotoObj> extra;
  for (const auto& o : objs) {
    if (o.obj_class != ObjClass::kQuasar) continue;
    if (rng.Bernoulli(0.15)) {
      // A faint blue galaxy within 5 arcsec.
      PhotoObj g = o;
      g.obj_id = next_id++;
      g.obj_class = ObjClass::kGalaxy;
      g.pos = rng.UnitCap(o.pos, ArcsecToRad(4.0)).Normalized();
      SphericalFromUnitVector(g.pos, &g.ra_deg, &g.dec_deg);
      g.mag[2] = static_cast<float>(rng.Uniform(21.0, 23.0));  // Faint.
      g.mag[1] = g.mag[2] + 0.2f;                              // Blue g-r.
      g.mag[0] = g.mag[1] + 0.6f;
      extra.push_back(g);
      ++planted_neighbors;
    }
    if (rng.Bernoulli(0.1)) {
      PhotoObj image = o;
      image.obj_id = next_id++;
      image.pos = rng.UnitCap(o.pos, ArcsecToRad(8.0)).Normalized();
      SphericalFromUnitVector(image.pos, &image.ra_deg, &image.dec_deg);
      for (int b = 0; b < kNumBands; ++b) image.mag[b] += 1.0f;
      extra.push_back(image);
      ++planted_lenses;
    }
  }
  objs.insert(objs.end(), extra.begin(), extra.end());
  ObjectStore store;
  (void)store.BulkLoad(std::move(objs));
  double survey_factor = SurveyScaleFactor(store.object_count());

  PrintHeader("C9  The paper's three typical queries, end to end");
  std::printf("catalog: %llu objects (planted: %llu QSO+faint-blue "
              "neighbors, %llu lens images)\n\n",
              static_cast<unsigned long long>(store.object_count()),
              static_cast<unsigned long long>(planted_neighbors),
              static_cast<unsigned long long>(planted_lenses));

  // (a) Finding chart: cone + color + class cuts.
  QueryEngine engine(&store);
  SphericalCoord c = ToSpherical(
      EquatorialUnitVector({0.0, 90.0, Frame::kGalactic}),
      Frame::kEquatorial);
  char sql[256];
  std::snprintf(sql, sizeof(sql),
                "SELECT obj_id, ra, dec, r FROM photo WHERE "
                "CIRCLE(%.4f, %.4f, 1.5) AND r < 22 AND g - r < 1.2",
                c.lon_deg, c.lat_deg);
  auto t0 = std::chrono::steady_clock::now();
  auto chart = engine.Execute(sql);
  double chart_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (chart.ok()) {
    std::printf(
        "(a) finding chart (1.5 deg cone + color cuts):\n"
        "    %zu objects in %.1f ms; %llu of %llu objects examined "
        "(%.2f%%)\n\n",
        chart->rows.size(), chart_s * 1e3,
        static_cast<unsigned long long>(chart->exec.objects_examined),
        static_cast<unsigned long long>(store.object_count()),
        100.0 * static_cast<double>(chart->exec.objects_examined) /
            static_cast<double>(store.object_count()));
  }

  // (b) Quasars with a faint blue galaxy within 5 arcsec: pair query
  // with asymmetric roles via the hash machine.
  ClusterConfig cfg;
  cfg.num_nodes = 20;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  HashMachine machine(&cluster);
  HashReport rep_b;
  auto pairs_b = machine.FindPairs(
      [](const PhotoObj& o) {
        bool qso = o.obj_class == ObjClass::kQuasar && o.mag[2] < 22.0f;
        bool faint_blue_gal = o.obj_class == ObjClass::kGalaxy &&
                              o.mag[2] > 20.5f &&
                              (o.mag[1] - o.mag[2]) < 0.5f;
        return qso || faint_blue_gal;
      },
      5.0,
      [](const PhotoObj& a, const PhotoObj& b) {
        // One side QSO (r<22), the other a faint blue galaxy.
        auto is_qso = [](const PhotoObj& o) {
          return o.obj_class == ObjClass::kQuasar && o.mag[2] < 22.0f;
        };
        auto is_fbg = [](const PhotoObj& o) {
          return o.obj_class == ObjClass::kGalaxy && o.mag[2] > 20.5f &&
                 (o.mag[1] - o.mag[2]) < 0.5f;
        };
        return (is_qso(a) && is_fbg(b)) || (is_qso(b) && is_fbg(a));
      },
      PairSearchOptions{}, &rep_b);
  std::printf(
      "(b) quasars (r<22) with a faint blue galaxy within 5 arcsec:\n"
      "    %zu pairs found (>= %llu planted); %llu candidates hashed, "
      "%llu pair tests;\n    modeled %s demo / %s at survey scale\n\n",
      pairs_b.size(), static_cast<unsigned long long>(planted_neighbors),
      static_cast<unsigned long long>(rep_b.selected),
      static_cast<unsigned long long>(rep_b.pair_tests),
      FormatSimDuration(rep_b.total_sim_seconds).c_str(),
      FormatSimDuration(rep_b.total_sim_seconds * survey_factor).c_str());

  // (c) Gravitational lenses: within 10 arcsec, identical colors.
  HashReport rep_c;
  auto pairs_c = machine.FindPairs(
      [](const PhotoObj&) { return true; }, 10.0,
      [](const PhotoObj& a, const PhotoObj& b) {
        for (int i = 0; i < kNumBands - 1; ++i) {
          if (std::fabs((a.mag[i] - a.mag[i + 1]) -
                        (b.mag[i] - b.mag[i + 1])) > 0.05f) {
            return false;
          }
        }
        return true;
      },
      PairSearchOptions{}, &rep_c);
  std::printf(
      "(c) lens candidates (10 arcsec, identical colors, any "
      "brightness):\n"
      "    %zu pairs (>= %llu planted); %llu pair tests over %llu "
      "buckets;\n    modeled %s demo / %s at survey scale\n",
      pairs_c.size(), static_cast<unsigned long long>(planted_lenses),
      static_cast<unsigned long long>(rep_c.pair_tests),
      static_cast<unsigned long long>(rep_c.buckets),
      FormatSimDuration(rep_c.total_sim_seconds).c_str(),
      FormatSimDuration(rep_c.total_sim_seconds * survey_factor).c_str());
  std::printf(
      "\nShape check: (a) answers in interactive time touching <1%% of "
      "the catalog;\n(b) and (c) run as bucketed pair searches in minutes "
      "at survey scale, not the\nhours/days a quadratic or unindexed "
      "approach would need.\n");
}

void BM_FindingChart(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.5);
  QueryEngine engine(&store);
  SphericalCoord c = ToSpherical(
      EquatorialUnitVector({0.0, 90.0, Frame::kGalactic}),
      Frame::kEquatorial);
  char sql[256];
  std::snprintf(sql, sizeof(sql),
                "SELECT obj_id, ra, dec, r FROM photo WHERE "
                "CIRCLE(%.4f, %.4f, 0.5) AND r < 21",
                c.lon_deg, c.lat_deg);
  for (auto _ : state) {
    auto r = engine.Execute(sql);
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_FindingChart)->Unit(benchmark::kMicrosecond)->UseRealTime();

// --- Columnar scan kernel vs row path -------------------------------
//
// The scan-bound cases below run the same SQL through the same mapped
// snapshot store twice: once with the columnar kernel disabled (the
// executor walks materialized PhotoObj rows and interprets the
// predicate per row) and once enabled (the kernel streams per-container
// column arrays in chunks). Single scan thread and no tag rewrite, so
// the delta is purely the execution path.

/// Snapshot of the canonical bench sky on disk; written once, shared by
/// the mapped-store and cold-start benchmarks.
const std::string& BenchSnapshotPath() {
  static const std::string* path = [] {
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "sdss_bench_c9";
    fs::create_directories(dir);
    auto* p = new std::string((dir / "sky.snap").string());
    ObjectStore store = MakeBenchStore(1.0);
    persist::SnapshotWriter writer(*p);
    Status s = writer.Write(store);
    if (!s.ok()) std::fprintf(stderr, "snapshot: %s\n", s.ToString().c_str());
    return p;
  }();
  return *path;
}

/// The shared mmap-backed store (columnar containers, no rebuilt rows).
ObjectStore& MappedBenchStore() {
  static ObjectStore* store = [] {
    auto mapped = persist::MapSnapshotStore(BenchSnapshotPath());
    return new ObjectStore(std::move(*mapped));
  }();
  return *store;
}

query::QueryEngine::Options ScanOptions(bool columnar) {
  query::QueryEngine::Options opt;
  // Pin the scan to photo containers (the tag partition has no column
  // views) and one thread so the kernel-vs-row delta is undiluted.
  opt.planner.auto_tag_selection = false;
  opt.executor.scan_threads = 1;
  opt.executor.columnar_kernel = columnar;
  return opt;
}

void ScanBench(benchmark::State& state, const char* sql, bool columnar) {
  QueryEngine engine(&MappedBenchStore(), ScanOptions(columnar));
  // Warm up: the row path lazily materializes rows from the mapped
  // columns on first touch; that one-time cost is not the scan.
  { auto warm = engine.Execute(sql); benchmark::DoNotOptimize(warm.ok()); }
  for (auto _ : state) {
    auto r = engine.Execute(sql);
    benchmark::DoNotOptimize(r->exec.objects_examined);
  }
  state.counters["columnar_containers"] = static_cast<double>(
      engine.Execute(sql)->exec.containers_columnar);
}

constexpr char kScanFilterSql[] =
    "SELECT obj_id, r FROM photo WHERE g - r > 1.4 AND r < 20.5";
constexpr char kScanCountSql[] =
    "SELECT COUNT(*) FROM photo WHERE g - r > 0.6 AND r < 21.5";
constexpr char kScanAvgSql[] =
    "SELECT AVG(g) FROM photo WHERE class = 'GALAXY'";

void BM_ScanFilterRowPath(benchmark::State& state) {
  ScanBench(state, kScanFilterSql, false);
}
BENCHMARK(BM_ScanFilterRowPath)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_ScanFilterColumnar(benchmark::State& state) {
  ScanBench(state, kScanFilterSql, true);
}
BENCHMARK(BM_ScanFilterColumnar)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_ScanCountRowPath(benchmark::State& state) {
  ScanBench(state, kScanCountSql, false);
}
BENCHMARK(BM_ScanCountRowPath)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_ScanCountColumnar(benchmark::State& state) {
  ScanBench(state, kScanCountSql, true);
}
BENCHMARK(BM_ScanCountColumnar)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_ScanAvgRowPath(benchmark::State& state) {
  ScanBench(state, kScanAvgSql, false);
}
BENCHMARK(BM_ScanAvgRowPath)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_ScanAvgColumnar(benchmark::State& state) {
  ScanBench(state, kScanAvgSql, true);
}
BENCHMARK(BM_ScanAvgColumnar)->Unit(benchmark::kMicrosecond)->UseRealTime();

// --- Cold start: decode-and-rebuild vs mmap-and-adopt ---------------

void BM_ColdStartDecode(benchmark::State& state) {
  const std::string& path = BenchSnapshotPath();
  for (auto _ : state) {
    auto store = persist::SnapshotReader(path).Read();
    benchmark::DoNotOptimize(store->object_count());
  }
}
BENCHMARK(BM_ColdStartDecode)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ColdStartMmap(benchmark::State& state) {
  const std::string& path = BenchSnapshotPath();
  for (auto _ : state) {
    auto store = persist::MapSnapshotStore(path);
    benchmark::DoNotOptimize(store->object_count());
  }
}
BENCHMARK(BM_ColdStartMmap)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_LensSearch(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.3);
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  HashMachine machine(&cluster);
  for (auto _ : state) {
    auto pairs = machine.FindPairs(
        [](const PhotoObj&) { return true; }, 10.0,
        [](const PhotoObj& a, const PhotoObj& b) {
          return std::fabs((a.mag[1] - a.mag[2]) -
                           (b.mag[1] - b.mag[2])) < 0.05f;
        },
        PairSearchOptions{});
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_LensSearch)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC9();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
