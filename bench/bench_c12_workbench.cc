// C12 -- batch workbench: quick-lane latency under long-lane load.
//
// The workbench's reason to exist is isolation: a community member's
// cone search must keep answering in interactive time while someone
// else's full-sky mining join grinds in the LONG lane of the same
// scheduler, same engine, same single scan pool. This bench prices that
// isolation on a 4-shard fleet: the submit->complete latency of a
// quick-lane job with the mining lane idle vs saturated, plus the cost
// of materializing a MyDB table (the INTO sink). Compare the two
// BM_QuickLaneLatency arms with interleaved medians (see BUILDING.md:
// this box is 1-core and noisy; never trust single runs).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "bench_util.h"
#include "query/federated_engine.h"
#include "workbench/scheduler.h"

namespace sdss::bench {
namespace {

using archive::MyDb;
using archive::ReplicationOptions;
using archive::ShardedStore;
using query::FederatedQueryEngine;
using workbench::JobScheduler;
using workbench::JobState;
using workbench::Lane;

constexpr char kQuickSql[] =
    "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 4)";
constexpr char kMiningJoinSql[] =
    "SELECT COUNT(*) FROM photo AS a JOIN photoobj AS b WITHIN 3 DEG";
constexpr char kIntoSelect[] = "SELECT * INTO mydb.%s FROM photo "
                               "WHERE r < 20.5";

/// One 4-shard fleet + workbench for the whole binary.
struct Workbench {
  catalog::ObjectStore store;
  std::unique_ptr<ShardedStore> sharded;
  std::unique_ptr<FederatedQueryEngine> fed;
  std::unique_ptr<MyDb> mydb;
  std::unique_ptr<JobScheduler> scheduler;
  uint64_t load_job = 0;  ///< Currently running mining join, 0 = none.
  int into_counter = 0;

  Workbench() : store(MakeBenchStore(0.5)) {
    ReplicationOptions repl;
    repl.num_servers = 4;
    repl.base_replicas = 2;
    sharded = std::make_unique<ShardedStore>(store, repl);
    auto live = sharded->LiveShards();
    if (!live.ok()) std::abort();
    fed = std::make_unique<FederatedQueryEngine>(*live);
    mydb = std::make_unique<MyDb>();
    JobScheduler::Options opt;
    opt.quick_workers = 2;
    opt.long_workers = 1;
    opt.quick_lane_max_bytes = 4ull << 20;
    scheduler = std::make_unique<JobScheduler>(fed.get(), mydb.get(), opt);
  }

  /// Blocks until `id` is terminal, returns its final state.
  JobState Finish(uint64_t id) {
    auto done = scheduler->Wait(id);
    return done.ok() ? done->state : JobState::kFailed;
  }

  /// Submit a quick job and wait it out; returns seconds of latency.
  double QuickLatency() {
    auto t0 = std::chrono::steady_clock::now();
    auto id = scheduler->Submit("alice", kQuickSql);
    if (!id.ok() || Finish(*id) != JobState::kSucceeded) std::abort();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }

  /// Keeps exactly one mining join occupying the LONG lane.
  void EnsureLoad() {
    if (load_job != 0) {
      auto snap = scheduler->Snapshot(load_job);
      if (snap.ok() && snap->state == JobState::kRunning) return;
    }
    auto id = scheduler->Submit("load", kMiningJoinSql);
    if (!id.ok()) std::abort();
    load_job = *id;
    while (scheduler->Snapshot(load_job)->state == JobState::kQueued) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void StopLoad() {
    if (load_job == 0) return;
    (void)scheduler->Cancel(load_job);
    (void)scheduler->Wait(load_job);
    load_job = 0;
  }

  /// Materializes one fresh MyDB table, returns (seconds, objects).
  std::pair<double, uint64_t> IntoOnce() {
    char name[32], sql[128];
    std::snprintf(name, sizeof(name), "b%d", into_counter++);
    std::snprintf(sql, sizeof(sql), kIntoSelect, name);
    auto t0 = std::chrono::steady_clock::now();
    auto id = scheduler->Submit("miner", sql);
    if (!id.ok() || Finish(*id) != JobState::kSucceeded) std::abort();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    uint64_t rows = scheduler->Snapshot(*id)->rows;
    (void)mydb->Drop("miner", name);
    return {secs, rows};
  }
};

Workbench& Fixture() {
  static Workbench* wb = new Workbench();
  return *wb;
}

double MedianMs(std::vector<double> seconds) {
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2] * 1e3;
}

void PrintC12() {
  PrintHeader("C12  Batch workbench: quick lane under mining load");
  Workbench& wb = Fixture();
  std::printf("fleet: 4 servers x2 replicas, %llu objects; scheduler: "
              "2 quick + 1 long worker,\nquick lane <= 4 MB predicted "
              "scan, per-user quota 1\n\n",
              static_cast<unsigned long long>(wb.store.object_count()));

  auto [into_secs, into_rows] = wb.IntoOnce();
  std::printf("INTO mydb (r < 20.5): %llu objects in %.0f ms\n",
              static_cast<unsigned long long>(into_rows),
              into_secs * 1e3);

  std::vector<double> idle, loaded;
  for (int i = 0; i < 9; ++i) idle.push_back(wb.QuickLatency());
  wb.EnsureLoad();
  for (int i = 0; i < 9; ++i) loaded.push_back(wb.QuickLatency());
  wb.StopLoad();
  std::printf("quick-lane cone count latency (median of 9):\n");
  std::printf("  %-22s %8.2f ms\n", "long lane idle",
              MedianMs(idle));
  std::printf("  %-22s %8.2f ms\n", "under 3-deg mining join",
              MedianMs(loaded));
  std::printf(
      "\nShape check: the loaded median pays a contention tax (one scan\n"
      "pool, one core) but stays interactive -- the long job never\n"
      "occupies a quick worker, so admission isolation holds.\n");
}

void BM_QuickLaneLatency(benchmark::State& state) {
  Workbench& wb = Fixture();
  const bool under_load = state.range(0) == 1;
  if (under_load) {
    wb.EnsureLoad();
  } else {
    wb.StopLoad();
  }
  for (auto _ : state) {
    if (under_load) wb.EnsureLoad();
    benchmark::DoNotOptimize(wb.QuickLatency());
  }
  if (under_load) wb.StopLoad();
}
BENCHMARK(BM_QuickLaneLatency)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_IntoMaterialize(benchmark::State& state) {
  Workbench& wb = Fixture();
  wb.StopLoad();
  for (auto _ : state) {
    auto r = wb.IntoOnce();
    benchmark::DoNotOptimize(r.second);
  }
}
BENCHMARK(BM_IntoMaterialize)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC12();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
