// C8 -- the ASAP streaming claim: "Results from child nodes are passed up
// the tree as soon as they are generated. ... this ASAP data push
// strategy ensures that even in the case of a query that takes a very
// long time to complete, the user starts seeing results almost
// immediately."
//
// We measure time-to-first-row vs time-to-completion across QET shapes:
// pure streaming scans, blocking sorts, set operations (which block on
// one side), and LIMIT early-out cancellation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "query/query_engine.h"

namespace sdss::bench {
namespace {

using catalog::ObjectStore;
using query::ExecStats;
using query::QueryEngine;
using query::RowBatch;

void PrintC8() {
  ObjectStore store = MakeBenchStore(2.0);
  QueryEngine engine(&store);

  struct Case {
    const char* label;
    const char* sql;
  };
  Case cases[] = {
      {"streaming scan", "SELECT obj_id, r FROM photo WHERE r < 22"},
      {"streaming + spatial",
       "SELECT obj_id FROM photo WHERE BAND('GAL', 35, 80) AND r < 22"},
      {"blocking sort",
       "SELECT obj_id, r FROM photo WHERE r < 22 ORDER BY r"},
      {"union (streams both)",
       "SELECT obj_id FROM photo WHERE r < 18 UNION SELECT obj_id FROM "
       "photo WHERE g < 18"},
      {"intersect (blocks rhs)",
       "SELECT obj_id FROM photo WHERE r < 20 INTERSECT SELECT obj_id "
       "FROM photo WHERE g - r > 0.7"},
      {"limit early-out", "SELECT obj_id FROM photo LIMIT 100"},
  };

  PrintHeader(
      "C8  ASAP streaming: time to first result vs time to completion");
  std::printf("catalog: %llu objects\n\n",
              static_cast<unsigned long long>(store.object_count()));
  std::printf("%-26s %10s %12s %12s %8s\n", "plan shape", "rows",
              "first row", "complete", "ratio");
  for (const Case& c : cases) {
    auto stats = engine.ExecuteStreaming(
        c.sql, [](const RowBatch&) { return true; });
    if (!stats.ok()) {
      std::printf("%-26s ERROR %s\n", c.label,
                  stats.status().ToString().c_str());
      continue;
    }
    double ratio = stats->seconds_to_first_row > 0
                       ? stats->seconds_total / stats->seconds_to_first_row
                       : 0.0;
    std::printf("%-26s %10llu %9.2f ms %9.2f ms %7.1fx\n", c.label,
                static_cast<unsigned long long>(stats->rows_emitted),
                stats->seconds_to_first_row * 1e3,
                stats->seconds_total * 1e3, ratio);
  }
  std::printf(
      "\nShape check: streaming plans deliver the first row a large "
      "factor before\ncompletion; sort/intersect shapes collapse the gap "
      "(they must drain a side\nfirst) -- exactly the paper's blocking-node "
      "caveat. LIMIT cancels upstream work.\n");
}

void BM_TimeToFirstRow(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(1.0);
  QueryEngine engine(&store);
  for (auto _ : state) {
    bool got_first = false;
    auto stats = engine.ExecuteStreaming(
        "SELECT obj_id FROM photo WHERE r < 22",
        [&](const RowBatch&) {
          got_first = true;
          return false;  // Stop at the first batch.
        });
    benchmark::DoNotOptimize(got_first);
  }
}
BENCHMARK(BM_TimeToFirstRow)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_FullCompletion(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(1.0);
  QueryEngine engine(&store);
  for (auto _ : state) {
    uint64_t rows = 0;
    auto stats = engine.ExecuteStreaming(
        "SELECT obj_id FROM photo WHERE r < 22",
        [&](const RowBatch& b) {
          rows += b.size();
          return true;
        });
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_FullCompletion)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_LimitCancellation(benchmark::State& state) {
  // LIMIT n should cost far less than the full scan for small n.
  ObjectStore store = MakeBenchStore(1.0);
  QueryEngine engine(&store);
  int64_t limit = state.range(0);
  std::string sql =
      "SELECT obj_id FROM photo LIMIT " + std::to_string(limit);
  for (auto _ : state) {
    uint64_t rows = 0;
    auto stats = engine.ExecuteStreaming(sql, [&](const RowBatch& b) {
      rows += b.size();
      return true;
    });
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_LimitCancellation)->Arg(10)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
