// Shared helpers for the reproduction benchmarks: canonical synthetic
// skies and table-printing utilities. Every bench binary prints the
// paper-artifact reproduction first (deterministic, simulated-time based)
// and then runs its google-benchmark microbenchmarks.

#ifndef SDSS_BENCH_BENCH_UTIL_H_
#define SDSS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "catalog/object_store.h"
#include "catalog/sky_generator.h"
#include "core/sim_clock.h"

namespace sdss::bench {

/// The canonical benchmark sky: clustered galaxies + stars + quasars on
/// the north-galactic-cap footprint. `scale` multiplies the default
/// 100k-object mix.
inline catalog::SkyModel BenchSkyModel(double scale = 1.0,
                                       uint64_t seed = 42) {
  catalog::SkyModel m;
  m.seed = seed;
  m.num_galaxies = static_cast<uint64_t>(50'000 * scale);
  m.num_stars = static_cast<uint64_t>(48'000 * scale);
  m.num_quasars = static_cast<uint64_t>(500 * scale);
  return m;
}

inline catalog::ObjectStore MakeBenchStore(double scale = 1.0,
                                           uint64_t seed = 42,
                                           int cluster_level = 6) {
  catalog::StoreOptions opt;
  opt.cluster_level = cluster_level;
  catalog::ObjectStore store(opt);
  auto objs = catalog::SkyGenerator(BenchSkyModel(scale, seed)).Generate();
  // Generated positions always produce valid container ids.
  (void)store.BulkLoad(std::move(objs));
  return store;
}

/// Survey-scale extrapolation factor: generated objects -> the paper's
/// 3x10^8 catalog objects.
inline double SurveyScaleFactor(uint64_t generated_objects) {
  return 3.0e8 / static_cast<double>(generated_objects);
}

inline void PrintRule() {
  std::printf(
      "-----------------------------------------------------------------"
      "-------------\n");
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n");
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace sdss::bench

#endif  // SDSS_BENCH_BENCH_UTIL_H_
