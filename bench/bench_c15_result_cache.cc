// C15 -- semantic result cache on the typical-query mix.
//
// SkyServer's production traffic re-runs a small set of typical queries
// over slowly-changing data, so the archive's semantic result cache
// should turn the steady state into fingerprint replays and cover
// containment filters instead of federated fan-outs. Three questions,
// each answered with interleaved 5-rep medians so machine noise hits
// both sides equally:
//   1. cache-hit vs cold fan-out latency on the typical-query mix
//      (acceptance: hits at least 5x faster),
//   2. containment filtering (narrow probes served from one wide cached
//      cone) vs real fleet re-scans,
//   3. the epoch-bump cost: the first run after a mutation pays a full
//      re-scan plus re-install, then the cache is warm again.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "archive/sharded_store.h"
#include "bench_util.h"
#include "query/federated_engine.h"

namespace sdss::bench {
namespace {

using archive::ReplicationOptions;
using archive::ShardedStore;
using catalog::ObjectStore;
using query::FederatedQueryEngine;
using query::QueryResult;

/// The cacheable slice of the C9/C10 typical-query mix: finding chart,
/// candidate union, lens intersect, color-window top-k, ordered stream,
/// and the survey aggregates. (SAMPLE and division queries are never
/// cached and would dilute the comparison.)
std::vector<std::string> TypicalMix() {
  return {
      "SELECT obj_id, u, g, r FROM photo WHERE CIRCLE('GAL', 0, 88, 1.5) "
      "AND r < 22 AND g - r < 1.2",
      "SELECT obj_id, ra, dec, r FROM photo WHERE class = 'QSO' AND "
      "r < 22 UNION SELECT obj_id, ra, dec, r FROM photo WHERE "
      "r > 20.5 AND g - r < 0.5",
      "SELECT obj_id, u, g FROM photo WHERE g - r > 0.1 AND g - r < 0.6 "
      "INTERSECT SELECT obj_id, u, g FROM photo WHERE u - g > 0.2 AND "
      "u - g < 0.9",
      "SELECT obj_id, r FROM photo WHERE g - r > 0.2 AND g - r < 0.7 "
      "ORDER BY r LIMIT 100",
      "SELECT obj_id, g, r FROM photo WHERE r < 22.5 ORDER BY r LIMIT "
      "500",
      "SELECT COUNT(*) FROM photo WHERE r < 22",
      "SELECT AVG(g) FROM photo WHERE class = 'GALAXY' AND r < 22",
  };
}

/// The wide cone every containment probe is a subset of. All-tag
/// attributes, so probes route to the same physical table.
const char kWideCone[] =
    "SELECT obj_id, u, g, r FROM photo WHERE CIRCLE('GAL', 30, 70, 10)";

/// Narrow probes inside the wide cone, with non-spatial residuals the
/// cache must re-filter cached rows by.
std::vector<std::string> ContainmentProbes() {
  return {
      "SELECT obj_id, u, g, r FROM photo WHERE CIRCLE('GAL', 30, 70, 4)",
      "SELECT obj_id, u, g, r FROM photo WHERE "
      "RECT('GAL', 27, 33, 68, 72) AND g - r < 0.8",
      "SELECT obj_id, u, g, r FROM photo WHERE CIRCLE('GAL', 28, 69, 3) "
      "AND u - g > 0.2 ORDER BY r LIMIT 50",
  };
}

/// One fleet, two engines: `cold` never caches, `cached` owns a 32 MB
/// semantic cache keyed by the fleet-wide epoch.
struct Fleet {
  ObjectStore store;
  std::unique_ptr<ShardedStore> sharded;
  std::unique_ptr<FederatedQueryEngine> cold;
  std::unique_ptr<FederatedQueryEngine> cached;

  explicit Fleet(size_t servers) : store(MakeBenchStore()) {
    ReplicationOptions repl;
    repl.num_servers = servers;
    repl.base_replicas = servers >= 2 ? 2 : 1;
    sharded = std::make_unique<ShardedStore>(store, repl);
    auto live = sharded->LiveShards();
    if (!live.ok()) {
      std::fprintf(stderr, "routing failed: %s\n",
                   live.status().ToString().c_str());
      std::abort();
    }
    cold = std::make_unique<FederatedQueryEngine>(*live);
    FederatedQueryEngine::Options opt;
    opt.result_cache_bytes = 32u << 20;
    opt.cache_epoch_source = [s = sharded.get()] { return s->Epoch(); };
    cached = std::make_unique<FederatedQueryEngine>(*live, opt);
  }

  QueryResult Run(FederatedQueryEngine* engine, const std::string& sql) {
    auto r = engine->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n%s\n",
                   r.status().ToString().c_str(), sql.c_str());
      std::abort();
    }
    return std::move(*r);
  }
};

Fleet& SharedFleet() {
  static Fleet* fleet = new Fleet(4);
  return *fleet;
}

/// The epoch-bump fixture owns a mutable single store (sharded fleets
/// only expose their shard stores const; real mutations arrive through
/// ingest, which the bench does not model).
struct MutableFleet {
  ObjectStore store;
  std::unique_ptr<FederatedQueryEngine> cached;

  MutableFleet() : store(MakeBenchStore()) {
    std::vector<query::Shard> shards;
    shards.push_back({0, &store, nullptr});
    FederatedQueryEngine::Options opt;
    opt.result_cache_bytes = 32u << 20;
    cached = std::make_unique<FederatedQueryEngine>(shards, opt);
  }

  QueryResult Run(const std::string& sql) {
    auto r = cached->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n%s\n",
                   r.status().ToString().c_str(), sql.c_str());
      std::abort();
    }
    return std::move(*r);
  }
};

MutableFleet& SharedMutableFleet() {
  static MutableFleet* fleet = new MutableFleet();
  return *fleet;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double TimeMix(Fleet& fleet, FederatedQueryEngine* engine,
               const std::vector<std::string>& mix) {
  auto t0 = std::chrono::steady_clock::now();
  for (const auto& sql : mix) {
    auto r = fleet.Run(engine, sql);
    benchmark::DoNotOptimize(r.rows.size());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

void PrintC15() {
  PrintHeader("C15  Semantic result cache on the typical-query mix");
  Fleet& fleet = SharedFleet();
  const auto mix = TypicalMix();
  const auto probes = ContainmentProbes();
  constexpr int kReps = 5;

  std::printf(
      "store: %llu objects on 4 servers x2 replicas; cache: 32 MB,\n"
      "epoch-keyed to the fleet; all timings interleaved %d-rep "
      "medians\n\n",
      static_cast<unsigned long long>(fleet.store.object_count()), kReps);

  // -- 1. cache hit vs cold fan-out on the mix ---------------------------
  for (const auto& sql : mix) fleet.Run(fleet.cached.get(), sql);  // warm
  std::vector<double> cold_s, hit_s;
  for (int rep = 0; rep < kReps; ++rep) {
    cold_s.push_back(TimeMix(fleet, fleet.cold.get(), mix));
    hit_s.push_back(TimeMix(fleet, fleet.cached.get(), mix));
  }
  const double cold_ms = Median(cold_s) * 1e3;
  const double hit_ms = Median(hit_s) * 1e3;
  std::printf("%-34s %12s %14s\n", "case", "median ms", "vs cold");
  std::printf("%-34s %12.2f %14s\n", "typical mix, cold fan-out", cold_ms,
              "1.0x");
  std::printf("%-34s %12.2f %13.1fx\n", "typical mix, cache hit", hit_ms,
              cold_ms / hit_ms);

  // -- 2. containment probes vs fleet re-scans ---------------------------
  fleet.Run(fleet.cached.get(), kWideCone);  // the superset entry
  size_t served_by_containment = 0;
  for (const auto& sql : probes) {
    if (fleet.Run(fleet.cached.get(), sql).exec.cache_containment) {
      ++served_by_containment;
    }
  }
  std::vector<double> scan_s, contain_s;
  for (int rep = 0; rep < kReps; ++rep) {
    scan_s.push_back(TimeMix(fleet, fleet.cold.get(), probes));
    contain_s.push_back(TimeMix(fleet, fleet.cached.get(), probes));
  }
  const double scan_ms = Median(scan_s) * 1e3;
  const double contain_ms = Median(contain_s) * 1e3;
  std::printf("%-34s %12.2f %14s\n", "narrow probes, fleet re-scan",
              scan_ms, "1.0x");
  char label[64];
  std::snprintf(label, sizeof(label), "narrow probes, containment (%zu/%zu)",
                served_by_containment, probes.size());
  std::printf("%-34s %12.2f %13.1fx\n", label, contain_ms,
              scan_ms / contain_ms);

  // -- 3. epoch-bump miss cost -------------------------------------------
  // A mutation moves the store epoch: the next run pays a full re-scan
  // plus re-install, then the cache is warm again. Runs on the mutable
  // single-store fixture (sharded fleets expose shard stores const).
  MutableFleet& mut = SharedMutableFleet();
  const std::string count_sql = "SELECT COUNT(*) FROM photo WHERE r < 22";
  mut.Run(count_sql);
  std::vector<double> warm_s, miss_s;
  catalog::PhotoObj extra =
      mut.store.containers().begin()->second.rows()[0];
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    mut.Run(count_sql);
    warm_s.push_back(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
    extra.obj_id = 900'000'000 + static_cast<uint64_t>(rep);
    if (!mut.store.Insert(extra).ok()) std::abort();
    t0 = std::chrono::steady_clock::now();
    mut.Run(count_sql);
    miss_s.push_back(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  }
  std::printf("%-34s %12.2f %14s\n", "COUNT warm hit (1 store)",
              Median(warm_s) * 1e3, "-");
  std::printf("%-34s %12.2f %14s\n", "COUNT after epoch bump",
              Median(miss_s) * 1e3, "-");

  auto stats = fleet.cached->result_cache()->stats();
  auto mut_stats = mut.cached->result_cache()->stats();
  std::printf(
      "\nfleet cache: %llu hits, %llu containment, %llu misses; mutable\n"
      "store cache: %llu epoch invalidations. Shape check: hits skip the\n"
      "fleet entirely (>= 5x), containment pays only a filter over cached\n"
      "rows, and an epoch bump costs exactly one cold run before the\n"
      "cache re-warms.\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.containment_hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(mut_stats.epoch_invalidations));
}

void BM_MixColdFanout(benchmark::State& state) {
  Fleet& fleet = SharedFleet();
  const auto mix = TypicalMix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimeMix(fleet, fleet.cold.get(), mix));
  }
}
BENCHMARK(BM_MixColdFanout)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MixCacheHit(benchmark::State& state) {
  Fleet& fleet = SharedFleet();
  const auto mix = TypicalMix();
  for (const auto& sql : mix) fleet.Run(fleet.cached.get(), sql);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimeMix(fleet, fleet.cached.get(), mix));
  }
}
BENCHMARK(BM_MixCacheHit)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ContainmentProbes(benchmark::State& state) {
  Fleet& fleet = SharedFleet();
  fleet.Run(fleet.cached.get(), kWideCone);
  const auto probes = ContainmentProbes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimeMix(fleet, fleet.cached.get(), probes));
  }
}
BENCHMARK(BM_ContainmentProbes)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EpochBumpMiss(benchmark::State& state) {
  MutableFleet& mut = SharedMutableFleet();
  const std::string sql = "SELECT COUNT(*) FROM photo WHERE r > 14";
  catalog::PhotoObj extra =
      mut.store.containers().begin()->second.rows()[0];
  uint64_t next_id = 910'000'000;
  mut.Run(sql);
  for (auto _ : state) {
    state.PauseTiming();
    extra.obj_id = next_id++;
    if (!mut.store.Insert(extra).ok()) std::abort();
    state.ResumeTiming();
    auto r = mut.Run(sql);
    benchmark::DoNotOptimize(r.aggregate_value);
  }
}
BENCHMARK(BM_EpochBumpMiss)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC15();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
