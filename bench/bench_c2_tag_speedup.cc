// C2 -- the tag-object claim: "We plan to isolate the 10 most popular
// attributes into small 'tag' objects ... These will occupy much less
// space, thus can be searched more than 10 times faster, if no other
// attributes are involved in the query."
//
// We run identical predicates through the query engine against the full
// photometric rows and against the tag vertical partition, and report
// bytes touched (the I/O the paper's ratio is about) plus measured CPU
// scan time. The bytes ratio at paper row sizes is the headline number.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "query/query_engine.h"

namespace sdss::bench {
namespace {

using catalog::kPaperBytesPerPhotoObj;
using catalog::kPaperBytesPerTagObj;
using catalog::ObjectStore;
using query::QueryEngine;

void PrintC2() {
  ObjectStore store = MakeBenchStore(1.0);

  QueryEngine::Options tag_opt;
  tag_opt.planner.auto_tag_selection = true;
  QueryEngine::Options full_opt;
  full_opt.planner.auto_tag_selection = false;
  QueryEngine tag_engine(&store, tag_opt);
  QueryEngine full_engine(&store, full_opt);

  const char* queries[] = {
      "SELECT COUNT(*) FROM photo WHERE r < 19",
      "SELECT COUNT(*) FROM photo WHERE g - r > 0.8 AND r < 21",
      "SELECT COUNT(*) FROM photo WHERE u - g < 0.2 AND class = 3",
      "SELECT COUNT(*) FROM photo WHERE size > 5 AND class = 2",
  };

  PrintHeader("C2  Tag objects: full rows vs the 10-attribute partition");
  std::printf("paper row budget: full %llu B vs tag %llu B -> I/O ratio "
              "%.1fx\n\n",
              static_cast<unsigned long long>(kPaperBytesPerPhotoObj),
              static_cast<unsigned long long>(kPaperBytesPerTagObj),
              static_cast<double>(kPaperBytesPerPhotoObj) /
                  static_cast<double>(kPaperBytesPerTagObj));
  std::printf("%-52s %10s %12s %12s %8s\n", "query", "rows",
              "full bytes", "tag bytes", "ratio");
  for (const char* sql : queries) {
    auto full = full_engine.Execute(sql);
    auto tag = tag_engine.Execute(sql);
    if (!full.ok() || !tag.ok()) continue;
    // Scale in-memory bytes to paper row sizes.
    double full_b = static_cast<double>(full->exec.objects_examined) *
                    kPaperBytesPerPhotoObj;
    double tag_b = static_cast<double>(tag->exec.objects_examined) *
                   kPaperBytesPerTagObj;
    std::printf("%-52.52s %10.0f %12s %12s %7.1fx\n", sql,
                full->aggregate_value,
                FormatBytes(static_cast<uint64_t>(full_b)).c_str(),
                FormatBytes(static_cast<uint64_t>(tag_b)).c_str(),
                full_b / tag_b);
    if (full->aggregate_value != tag->aggregate_value) {
      std::printf("  !! result mismatch: full %.0f vs tag %.0f\n",
                  full->aggregate_value, tag->aggregate_value);
    }
  }
  std::printf(
      "\nShape check: every tag-only query touches >10x fewer bytes -- "
      "the 'searched\nmore than 10 times faster' claim at I/O-bound "
      "scan rates.\n");

  // Measured wall-clock on this host (memory-bandwidth bound, so the
  // ratio is smaller than the disk-bound paper ratio but > 1).
  auto time_query = [](QueryEngine& eng, const char* sql) {
    auto t0 = std::chrono::steady_clock::now();
    auto r = eng.Execute(sql);
    (void)r;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  double t_full = 0, t_tag = 0;
  for (int i = 0; i < 3; ++i) {
    t_full += time_query(full_engine, queries[0]);
    t_tag += time_query(tag_engine, queries[0]);
  }
  std::printf("measured in-memory scan time: full %.1f ms vs tag %.1f ms "
              "(%.1fx)\n",
              t_full / 3 * 1e3, t_tag / 3 * 1e3, t_full / t_tag);
}

void BM_FullStoreScan(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.5);
  QueryEngine::Options opt;
  opt.planner.auto_tag_selection = false;
  QueryEngine engine(&store, opt);
  for (auto _ : state) {
    auto r = engine.Execute("SELECT COUNT(*) FROM photo WHERE r < 19");
    benchmark::DoNotOptimize(r->aggregate_value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.object_count()));
}
BENCHMARK(BM_FullStoreScan)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_TagStoreScan(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.5);
  QueryEngine engine(&store);
  for (auto _ : state) {
    auto r = engine.Execute("SELECT COUNT(*) FROM tag WHERE r < 19");
    benchmark::DoNotOptimize(r->aggregate_value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.object_count()));
}
BENCHMARK(BM_TagStoreScan)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
