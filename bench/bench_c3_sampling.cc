// C3 -- the sampling claim: "We also plan to offer a 1% sample (about 10
// GB) of the whole database that can be used to quickly test and debug
// programs. Combining partitioning and sampling converts a 2 TB data set
// into 2 gigabytes, which can fit comfortably on desktop workstations."
//
// We build the 1% sample, report its size reduction (alone and combined
// with the tag vertical partition), the query speedup, and the accuracy
// of estimates extrapolated from the sample.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "query/query_engine.h"

namespace sdss::bench {
namespace {

using catalog::kPaperBytesPerPhotoObj;
using catalog::kPaperBytesPerTagObj;
using catalog::ObjectStore;
using query::QueryEngine;

void PrintC3() {
  ObjectStore store = MakeBenchStore(1.0);
  ObjectStore sample = store.Sample(0.01, 2718);

  PrintHeader("C3  1% sampling: desktop-scale debugging subsets");
  double full_tb = static_cast<double>(store.object_count()) *
                   kPaperBytesPerPhotoObj;
  double sample_b = static_cast<double>(sample.object_count()) *
                    kPaperBytesPerPhotoObj;
  double sample_tag_b = static_cast<double>(sample.object_count()) *
                        kPaperBytesPerTagObj;
  std::printf("objects: %llu -> %llu (%.3f%%)\n",
              static_cast<unsigned long long>(store.object_count()),
              static_cast<unsigned long long>(sample.object_count()),
              100.0 * static_cast<double>(sample.object_count()) /
                  static_cast<double>(store.object_count()));
  std::printf("paper-scale bytes: %s -> %s (sample) -> %s (sample + tag "
              "partition)\n",
              FormatBytes(static_cast<uint64_t>(full_tb)).c_str(),
              FormatBytes(static_cast<uint64_t>(sample_b)).c_str(),
              FormatBytes(static_cast<uint64_t>(sample_tag_b)).c_str());
  std::printf("combined reduction: %.0fx (the paper's 2 TB -> 2 GB)\n\n",
              full_tb / sample_tag_b);

  // Estimate accuracy: selectivities estimated on the sample vs truth.
  QueryEngine full_engine(&store);
  QueryEngine sample_engine(&sample);
  const char* queries[] = {
      "SELECT COUNT(*) FROM photo WHERE r < 20",
      "SELECT COUNT(*) FROM photo WHERE g - r > 0.8",
      "SELECT COUNT(*) FROM photo WHERE class = 3 AND u - g < 0.2",
      "SELECT COUNT(*) FROM photo WHERE size > 3 AND r < 21",
  };
  std::printf("%-52s %10s %12s %8s\n", "query", "true",
              "est (x100)", "err");
  for (const char* sql : queries) {
    auto t = full_engine.Execute(sql);
    auto s = sample_engine.Execute(sql);
    if (!t.ok() || !s.ok()) continue;
    double est = s->aggregate_value * 100.0;
    double err = t->aggregate_value > 0
                     ? std::fabs(est - t->aggregate_value) /
                           t->aggregate_value
                     : 0.0;
    std::printf("%-52.52s %10.0f %12.0f %7.1f%%\n", sql,
                t->aggregate_value, est, err * 100.0);
  }
  std::printf(
      "\nShape check: two-orders-of-magnitude shrink with percent-level "
      "estimate error\non common-object queries -- debug on the desktop, "
      "run the real query on the server.\n");
}

void BM_FullCatalogQuery(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(1.0);
  QueryEngine engine(&store);
  for (auto _ : state) {
    auto r = engine.Execute(
        "SELECT COUNT(*) FROM photo WHERE g - r > 0.8 AND r < 21");
    benchmark::DoNotOptimize(r->aggregate_value);
  }
}
BENCHMARK(BM_FullCatalogQuery)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SampleQuery(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(1.0);
  ObjectStore sample = store.Sample(0.01, 2718);
  QueryEngine engine(&sample);
  for (auto _ : state) {
    auto r = engine.Execute(
        "SELECT COUNT(*) FROM photo WHERE g - r > 0.8 AND r < 21");
    benchmark::DoNotOptimize(r->aggregate_value);
  }
}
BENCHMARK(BM_SampleQuery)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SampleConstruction(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.5);
  for (auto _ : state) {
    ObjectStore sample = store.Sample(0.01, 7);
    benchmark::DoNotOptimize(sample.object_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.object_count()));
}
BENCHMARK(BM_SampleConstruction)->Unit(benchmark::kMillisecond);

// The SAMPLE query clause (Bernoulli sampling inside the scan).
void BM_SampleClause(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.5);
  QueryEngine engine(&store);
  for (auto _ : state) {
    auto r = engine.Execute(
        "SELECT COUNT(*) FROM photo WHERE r < 21 SAMPLE 0.01");
    benchmark::DoNotOptimize(r->aggregate_value);
  }
}
BENCHMARK(BM_SampleClause)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
