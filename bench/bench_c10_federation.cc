// C10 -- federated shard execution on the C9 "typical queries" mix.
//
// The same engine-facing workload as C9's query classes -- a finding
// chart cone, a neighbor-candidate union, a lens-style color-window
// top-k, and survey aggregates -- executed against (1) one big store and
// (2) the same data partitioned + replicated across 2/4/8 servers via
// ShardedStore and queried through the FederatedQueryEngine. Reports
// end-to-end mix wall time and time-to-first-row (the ASAP number the
// paper cares about): the fan-out shares ONE scan pool, so the federated
// engine must win by decomposition (smaller per-shard sorts and dedup
// sets, early-exit k-way merges), not by grabbing more threads.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "archive/sharded_store.h"
#include "bench_util.h"
#include "core/coords.h"
#include "query/federated_engine.h"
#include "query/query_engine.h"

namespace sdss::bench {
namespace {

using archive::ReplicationOptions;
using archive::ShardedStore;
using catalog::ObjectStore;
using query::FederatedQueryEngine;
using query::QueryEngine;
using query::QueryResult;

/// The C9-flavored query mix, engine-facing slice: (a) finding chart,
/// (b) neighbor-candidate union (QSOs + faint blue galaxies), (c)
/// lens-style color-window top-k stream, plus the survey aggregates a
/// production mix is full of.
std::vector<std::string> C9Mix() {
  SphericalCoord c = ToSpherical(
      EquatorialUnitVector({0.0, 90.0, Frame::kGalactic}),
      Frame::kEquatorial);
  char chart[256];
  std::snprintf(chart, sizeof(chart),
                "SELECT obj_id, ra, dec, r FROM photo WHERE "
                "CIRCLE(%.4f, %.4f, 1.5) AND r < 22 AND g - r < 1.2",
                c.lon_deg, c.lat_deg);
  return {
      chart,
      // (b) quasar + faint-blue-galaxy candidate streams for the
      // neighbor join.
      "SELECT obj_id, ra, dec, r FROM photo WHERE class = 'QSO' AND "
      "r < 22 UNION SELECT obj_id, ra, dec, r FROM photo WHERE "
      "r > 20.5 AND g - r < 0.5",
      // (c) lens candidates: two color-window selections intersected.
      "SELECT obj_id, u, g FROM photo WHERE g - r > 0.1 AND g - r < 0.6 "
      "INTERSECT SELECT obj_id, u, g FROM photo WHERE u - g > 0.2 AND "
      "u - g < 0.9",
      "SELECT obj_id, r FROM photo WHERE g - r > 0.2 AND g - r < 0.7 "
      "ORDER BY r LIMIT 100",
      "SELECT obj_id, g, r FROM photo WHERE r < 22.5 ORDER BY r LIMIT "
      "500",
      "SELECT COUNT(*) FROM photo WHERE r < 22",
      "SELECT AVG(g) FROM photo WHERE class = 'GALAXY' AND r < 22",
  };
}

/// A fleet fixture: the source store stays alive next to its shards.
struct Fleet {
  ObjectStore store;
  std::unique_ptr<ShardedStore> sharded;
  std::unique_ptr<FederatedQueryEngine> fed;
  std::unique_ptr<QueryEngine> single;

  explicit Fleet(size_t shards, double scale = 1.0)
      : store(MakeBenchStore(scale)) {
    if (shards == 0) {
      single = std::make_unique<QueryEngine>(&store);
    } else {
      ReplicationOptions repl;
      repl.num_servers = shards;
      repl.base_replicas = shards >= 2 ? 2 : 1;
      sharded = std::make_unique<ShardedStore>(store, repl);
      auto live = sharded->LiveShards();
      if (!live.ok()) {
        std::fprintf(stderr, "routing failed: %s\n",
                     live.status().ToString().c_str());
        std::abort();
      }
      fed = std::make_unique<FederatedQueryEngine>(*live);
    }
  }

  QueryResult Run(const std::string& sql) {
    auto r = single ? single->Execute(sql) : fed->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n%s\n",
                   r.status().ToString().c_str(), sql.c_str());
      std::abort();
    }
    return std::move(*r);
  }

  double TimeToFirstRow(const std::string& sql) {
    auto sink = [](const query::RowBatch&) { return false; };
    auto st = single ? single->ExecuteStreaming(sql, sink)
                     : fed->ExecuteStreaming(sql, sink);
    return st.ok() ? st->seconds_to_first_row : -1.0;
  }
};

/// Shared fixtures so google-benchmark iterations do not rebuild fleets.
Fleet& CachedFleet(size_t shards) {
  static Fleet* fleets[9] = {};
  if (fleets[shards] == nullptr) fleets[shards] = new Fleet(shards);
  return *fleets[shards];
}

void PrintC10() {
  PrintHeader("C10  Federated shard execution on the C9 query mix");
  const auto mix = C9Mix();
  const std::string stream_sql =
      "SELECT obj_id, r FROM photo WHERE r < 23";

  std::printf(
      "store: %llu objects; mix: %zu queries (chart cone, candidate\n"
      "union, lens intersect, color-window top-k, ordered stream,\n"
      "COUNT, AVG); one shared scan pool for every configuration\n\n",
      static_cast<unsigned long long>(CachedFleet(0).store.object_count()),
      mix.size());
  std::printf("%-14s %14s %18s %14s\n", "config", "mix wall ms",
              "first-row ms", "rows+aggs");

  for (size_t shards : {size_t{0}, size_t{2}, size_t{4}, size_t{8}}) {
    Fleet& fleet = CachedFleet(shards);
    // Warm-up, then best-of-3 (the container is 1-core and noisy).
    uint64_t rows = 0;
    for (const auto& sql : mix) rows += fleet.Run(sql).rows.size();
    double best = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      for (const auto& sql : mix) {
        auto r = fleet.Run(sql);
        benchmark::DoNotOptimize(r.rows.size());
      }
      best = std::min(
          best, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
    }
    double ttfr = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
      ttfr = std::min(ttfr, fleet.TimeToFirstRow(stream_sql));
    }
    char label[32];
    if (shards == 0) {
      std::snprintf(label, sizeof(label), "single-store");
    } else {
      std::snprintf(label, sizeof(label), "%zu shards x2", shards);
    }
    std::printf("%-14s %14.1f %18.2f %14llu\n", label, best * 1e3,
                ttfr * 1e3, static_cast<unsigned long long>(rows));
  }
  std::printf(
      "\nShape check: the federation pays its fan-out overhead back on\n"
      "the blocking operators -- per-shard sorts and dedup sets are a\n"
      "fraction of the single store's, and the ordered k-way merge\n"
      "early-exits at LIMIT -- so the sharded mix should run at or below\n"
      "single-store wall time while first rows arrive from the fastest\n"
      "shard.\n");
}

void BM_C9Mix(benchmark::State& state) {
  Fleet& fleet = CachedFleet(static_cast<size_t>(state.range(0)));
  const auto mix = C9Mix();
  for (auto _ : state) {
    for (const auto& sql : mix) {
      auto r = fleet.Run(sql);
      benchmark::DoNotOptimize(r.rows.size());
    }
  }
}
BENCHMARK(BM_C9Mix)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_TimeToFirstRow(benchmark::State& state) {
  Fleet& fleet = CachedFleet(static_cast<size_t>(state.range(0)));
  const std::string sql = "SELECT obj_id, r FROM photo WHERE r < 23";
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.TimeToFirstRow(sql));
  }
}
BENCHMARK(BM_TimeToFirstRow)
    ->Arg(0)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC10();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
