// C1 -- the scan-machine claim: "one node is capable of reading data at
// 150 MBps ... spread among the 20 nodes, they can scan the data at an
// aggregate rate of 3 GBps. This half-million dollar system could scan
// the complete (year 2004) SDSS catalog every 2 minutes."
//
// We partition a generated catalog over simulated nodes at 150 MB/s each,
// run real predicate evaluation, and report aggregate bandwidth and
// full-catalog scan time vs node count, extrapolated to the 2004 catalog
// (3x10^8 objects). Shared-scan behaviour (queries joining the mix) is
// exercised through the ScanMachine.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dataflow/scan_machine.h"

namespace sdss::bench {
namespace {

using catalog::ObjClass;
using catalog::PhotoObj;
using dataflow::ClusterConfig;
using dataflow::ClusterSim;
using dataflow::ScanMachine;
using dataflow::ScanReport;

void PrintC1() {
  auto store = MakeBenchStore(1.0);
  double survey_factor = SurveyScaleFactor(store.object_count());

  PrintHeader(
      "C1  Scan machine: aggregate bandwidth and full-scan time vs nodes");
  std::printf("catalog: %llu objects (x%.0f = 2004 survey), %s at paper "
              "row size\n\n",
              static_cast<unsigned long long>(store.object_count()),
              survey_factor,
              FormatBytes(store.object_count() *
                          catalog::kPaperBytesPerPhotoObj)
                  .c_str());
  std::printf("%6s %14s %16s %20s\n", "nodes", "aggregate", "scan (demo)",
              "scan (2004 catalog)");
  for (size_t nodes : {1, 2, 4, 8, 16, 20, 32, 64}) {
    ClusterConfig cfg;
    cfg.num_nodes = nodes;
    ClusterSim cluster(cfg);
    (void)cluster.LoadPartitioned(store);
    ScanReport report =
        cluster.ParallelScan([](size_t, const PhotoObj&) {});
    double survey_scan = report.sim_seconds * survey_factor;
    std::printf("%6zu %11.0f MB/s %16s %20s\n", nodes,
                report.aggregate_mbps,
                FormatSimDuration(report.sim_seconds).c_str(),
                FormatSimDuration(survey_scan).c_str());
  }
  std::printf(
      "\nShape check: 20 nodes x 150 MB/s -> ~3 GB/s aggregate and a "
      "~2-minute full scan\nof the 3x10^8-object catalog, matching the "
      "paper's arithmetic.\n");

  // Shared scans: concurrent queries cost one pass.
  ClusterConfig cfg;
  cfg.num_nodes = 20;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  ScanMachine machine(&cluster);
  for (int q = 0; q < 8; ++q) {
    machine.Admit(
        [q](const PhotoObj& o) { return o.mag[2] < 16.0f + q; },
        static_cast<SimSeconds>(q) * 0.001);
  }
  auto completions = machine.RunUntilDrained();
  std::printf(
      "\nShared scan: %zu concurrent queries completed in %llu data "
      "pass(es);\neach saw latency = one cycle (%s demo, %s at survey "
      "scale).\n",
      completions.size(),
      static_cast<unsigned long long>(machine.cycles_run()),
      FormatSimDuration(machine.CycleSimSeconds()).c_str(),
      FormatSimDuration(machine.CycleSimSeconds() * survey_factor).c_str());
}

void BM_PredicateScanThroughput(benchmark::State& state) {
  // Real CPU throughput of predicate evaluation during a scan.
  auto store = MakeBenchStore(0.5);
  ClusterConfig cfg;
  cfg.num_nodes = static_cast<size_t>(state.range(0));
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  for (auto _ : state) {
    std::atomic<uint64_t> matches{0};
    cluster.ParallelScan([&](size_t, const PhotoObj& o) {
      if (o.obj_class == ObjClass::kQuasar && o.mag[2] < 22.0f) {
        matches.fetch_add(1, std::memory_order_relaxed);
      }
    });
    benchmark::DoNotOptimize(matches.load());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.object_count()));
}
BENCHMARK(BM_PredicateScanThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SharedScanVsSeparate(benchmark::State& state) {
  // Evaluating k predicates in one pass vs k passes.
  auto store = MakeBenchStore(0.25);
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  int k = static_cast<int>(state.range(0));
  bool shared = state.range(1) != 0;
  for (auto _ : state) {
    std::atomic<uint64_t> matches{0};
    if (shared) {
      cluster.ParallelScan([&](size_t, const PhotoObj& o) {
        for (int q = 0; q < k; ++q) {
          if (o.mag[2] < 15.0f + q) {
            matches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    } else {
      for (int q = 0; q < k; ++q) {
        cluster.ParallelScan([&](size_t, const PhotoObj& o) {
          if (o.mag[2] < 15.0f + q) {
            matches.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
    }
    benchmark::DoNotOptimize(matches.load());
  }
}
BENCHMARK(BM_SharedScanVsSeparate)
    ->Args({8, 1})
    ->Args({8, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
