// F3 -- Figure 3: the hierarchical subdivision of spherical triangles.
//
// Reports the quad-tree's shape per level -- trixel counts (8*4^L), area
// uniformity ("4 sub-triangles of approximately equal areas"), and the
// point-location / geometry throughput that makes the scheme usable as
// the archive's primary index.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "core/angle.h"
#include "core/random.h"
#include "htm/htm_id.h"
#include "htm/trixel.h"

namespace sdss::bench {
namespace {

using htm::HtmId;
using htm::LookupId;
using htm::Trixel;
using htm::TrixelCountAtLevel;

void PrintFigure3() {
  PrintHeader("F3  Figure 3: hierarchical triangular mesh per level");
  std::printf("%5s %12s %14s %14s %10s %12s\n", "level", "trixels",
              "mean area", "min area", "max/min", "side scale");
  for (int level = 0; level <= 8; ++level) {
    double min_a = 1e18, max_a = 0.0, sum_a = 0.0;
    uint64_t count = 0;
    // Exact enumeration up to level 6; sampled beyond.
    if (level <= 6) {
      uint64_t lo = 8ull << (2 * level);
      uint64_t hi = 16ull << (2 * level);
      for (uint64_t raw = lo; raw < hi; ++raw) {
        double a = Trixel::FromId(*HtmId::FromRaw(raw)).AreaSquareDegrees();
        min_a = std::min(min_a, a);
        max_a = std::max(max_a, a);
        sum_a += a;
        ++count;
      }
    } else {
      Rng rng(7 + static_cast<uint64_t>(level));
      for (int i = 0; i < 20000; ++i) {
        HtmId id = LookupId(rng.UnitSphere(), level);
        double a = Trixel::FromId(id).AreaSquareDegrees();
        min_a = std::min(min_a, a);
        max_a = std::max(max_a, a);
        sum_a += a;
        ++count;
      }
    }
    double mean = sum_a / static_cast<double>(count);
    std::printf("%5d %12llu %12.4f sq" " %12.4f sq %9.2fx %11.3f deg\n",
                level,
                static_cast<unsigned long long>(TrixelCountAtLevel(level)),
                mean, min_a, max_a / min_a, std::sqrt(mean));
  }
  std::printf(
      "\nShape checks: counts follow 8*4^L exactly; max/min area stays "
      "bounded (~2)\nacross levels, the 'approximately equal areas' claim; "
      "level-6 trixels (~1 deg)\nare the default clustering containers.\n");
}

void BM_PointLocation(benchmark::State& state) {
  int level = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<Vec3> points;
  for (int i = 0; i < 4096; ++i) points.push_back(rng.UnitSphere());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LookupId(points[i++ & 4095], level));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointLocation)->Arg(6)->Arg(10)->Arg(14)->Arg(20);

void BM_TrixelFromId(benchmark::State& state) {
  int level = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<HtmId> ids;
  for (int i = 0; i < 1024; ++i) {
    ids.push_back(LookupId(rng.UnitSphere(), level));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Trixel::FromId(ids[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrixelFromId)->Arg(6)->Arg(14);

void BM_NameRoundTrip(benchmark::State& state) {
  Rng rng(3);
  std::vector<HtmId> ids;
  for (int i = 0; i < 1024; ++i) {
    ids.push_back(LookupId(rng.UnitSphere(), 14));
  }
  size_t i = 0;
  for (auto _ : state) {
    std::string name = ids[i++ & 1023].ToName();
    auto back = HtmId::FromName(name);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_NameRoundTrip);

void BM_SubdivisionWalk(benchmark::State& state) {
  // Full expansion cost of one base face to the given depth.
  int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    uint64_t count = 0;
    std::vector<Trixel> frontier{Trixel::FromId(HtmId::Base(0))};
    for (int l = 0; l < level; ++l) {
      std::vector<Trixel> next;
      next.reserve(frontier.size() * 4);
      for (const Trixel& t : frontier) {
        for (const Trixel& c : t.Children()) next.push_back(c);
      }
      frontier = std::move(next);
    }
    count = frontier.size();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SubdivisionWalk)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
