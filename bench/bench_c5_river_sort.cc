// C5 -- the river claim: "The simplest river systems are sorting
// networks. Current systems have demonstrated that they can sort at about
// 100 MBps using commodity hardware and 5 GBps if using thousands of
// nodes and disks [Sort]."
//
// We run the river sorting network (range-partition exchange -> parallel
// local sorts -> ordered merge) over the partitioned catalog and report
// modeled throughput vs node count, plus a filter->map->exchange pipeline
// representing the general dataflow-analysis pattern.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dataflow/river.h"

namespace sdss::bench {
namespace {

using catalog::ObjClass;
using catalog::ObjectStore;
using catalog::PhotoObj;
using dataflow::ClusterConfig;
using dataflow::ClusterSim;
using dataflow::River;
using dataflow::RiverStats;

River::PartitionFn MagnitudeRangePartition(size_t parts) {
  return [parts](const PhotoObj& o) {
    double frac = (o.mag[2] - 14.0) / (23.5 - 14.0);
    return static_cast<size_t>(std::clamp(frac, 0.0, 0.999) *
                               static_cast<double>(parts));
  };
}

void PrintC5() {
  ObjectStore store = MakeBenchStore(1.0);

  PrintHeader("C5  River dataflow: parallel sorting-network throughput");
  std::printf("records: %llu (paper-scale bytes: %s)\n\n",
              static_cast<unsigned long long>(store.object_count()),
              FormatBytes(store.object_count() *
                          catalog::kPaperBytesPerPhotoObj)
                  .c_str());
  std::printf("%6s %16s %14s %16s\n", "nodes", "modeled rate",
              "sim time", "real cpu time");
  for (size_t nodes : {1, 2, 4, 8, 16}) {
    ClusterConfig cfg;
    cfg.num_nodes = nodes;
    ClusterSim cluster(cfg);
    (void)cluster.LoadPartitioned(store);
    River river(&cluster);
    river.Repartition(MagnitudeRangePartition(nodes), nodes)
        .SortBy([](const PhotoObj& o) { return o.mag[2]; });
    uint64_t out = 0;
    double prev = -1e18;
    bool ordered = true;
    RiverStats stats = river.Run([&](const PhotoObj& o) {
      ordered = ordered && o.mag[2] >= prev - 1e-9;
      prev = o.mag[2];
      ++out;
    });
    std::printf("%6zu %11.0f MB/s %14s %13.0f ms  %s\n", nodes,
                stats.sim_mbps,
                FormatSimDuration(stats.sim_seconds).c_str(),
                stats.real_seconds * 1e3,
                ordered && out == store.object_count() ? "[ordered, complete]"
                                                       : "[ERROR]");
  }
  std::printf(
      "\nShape check: ~1 node sorts at the single-machine ~100-150 MB/s "
      "scale of the\nSort Benchmark era; throughput scales near-linearly "
      "with nodes, the river premise.\n");

  // A general analysis river: filter -> recalibrate -> cluster exchange.
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  River analysis(&cluster);
  uint64_t galaxies = 0;
  analysis
      .Filter([](const PhotoObj& o) {
        return o.obj_class == ObjClass::kGalaxy && o.mag[2] < 21.0f;
      })
      .Map([](const PhotoObj& o) {
        PhotoObj c = o;
        c.mag[2] -= 0.02f;  // Recalibration step in-flow.
        return c;
      })
      .Repartition([](const PhotoObj& o) { return o.htm_leaf >> 8; }, 64);
  RiverStats stats = analysis.Run([&](const PhotoObj&) { ++galaxies; });
  std::printf(
      "\nAnalysis river (filter->map->exchange): %llu of %llu records "
      "reached the\nanalysis sink in one modeled pass (%s).\n",
      static_cast<unsigned long long>(galaxies),
      static_cast<unsigned long long>(stats.records_in),
      FormatSimDuration(stats.sim_seconds).c_str());
}

void BM_RiverSort(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.5);
  ClusterConfig cfg;
  cfg.num_nodes = static_cast<size_t>(state.range(0));
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  for (auto _ : state) {
    River river(&cluster);
    river.Repartition(MagnitudeRangePartition(cfg.num_nodes), cfg.num_nodes)
        .SortBy([](const PhotoObj& o) { return o.mag[2]; });
    uint64_t n = 0;
    river.Run([&](const PhotoObj&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.object_count()));
}
BENCHMARK(BM_RiverSort)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_RiverFilterPipeline(benchmark::State& state) {
  ObjectStore store = MakeBenchStore(0.5);
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(store);
  for (auto _ : state) {
    River river(&cluster);
    river.Filter([](const PhotoObj& o) { return o.mag[2] < 20.0f; });
    uint64_t n = 0;
    river.Run([&](const PhotoObj&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.object_count()));
}
BENCHMARK(BM_RiverFilterPipeline)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintC5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
