// F4 -- Figure 4: classifying the triangle hierarchy against a query
// built from half-space constraints in two coordinate systems.
//
// The figure's query: a latitude range in one spherical coordinate system
// plus a latitude constraint in another. We run exactly that (declination
// band x galactic-latitude band), print the per-level FULL / PARTIAL /
// DISJOINT counts of the recursive algorithm (the triangles "as they were
// selected"), and quantify the pruning factor and the exactness bracket.
// An ablation compares Cartesian dot-product point tests with the
// trigonometric evaluation the paper's x,y,z storage avoids.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "core/angle.h"
#include "core/coords.h"
#include "core/random.h"
#include "htm/cover.h"

namespace sdss::bench {
namespace {

using htm::Cover;
using htm::CoverResult;
using htm::Region;

Region Figure4Query() {
  // Declination band in Equatorial + latitude band in Galactic.
  Region dec_band = Region::LatBand(10.0, 35.0, Frame::kEquatorial);
  Region gal_band = Region::LatBand(20.0, 55.0, Frame::kGalactic);
  return dec_band.IntersectWith(gal_band);
}

void PrintFigure4() {
  Region query = Figure4Query();
  int level = 8;
  CoverResult cover = Cover(query, level);

  PrintHeader(
      "F4  Figure 4: two-system latitude query over the triangle "
      "hierarchy");
  std::printf("query: dec in [10,35] AND galactic b in [20,55]\n\n");
  std::printf("%5s %10s %8s %10s %10s\n", "level", "tested", "full",
              "partial", "disjoint");
  for (size_t lv = 0; lv < cover.level_stats.size(); ++lv) {
    const auto& s = cover.level_stats[lv];
    std::printf("%5zu %10llu %8llu %10llu %10llu\n", lv,
                static_cast<unsigned long long>(s.tested),
                static_cast<unsigned long long>(s.full),
                static_cast<unsigned long long>(s.partial),
                static_cast<unsigned long long>(s.disjoint));
  }

  uint64_t total_leaves = htm::TrixelCountAtLevel(level);
  uint64_t accepted = cover.ToRangeSet().CardinalityCount();
  uint64_t tested = 0;
  for (const auto& s : cover.level_stats) tested += s.tested;
  std::printf(
      "\nPruning: %llu of %llu leaf trixels accepted (%.2f%%); only %llu "
      "classification\ntests executed vs %llu leaves -- the rejected "
      "subtrees were never visited.\n",
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(total_leaves),
      100.0 * static_cast<double>(accepted) /
          static_cast<double>(total_leaves),
      static_cast<unsigned long long>(tested),
      static_cast<unsigned long long>(total_leaves));

  // Exactness bracket: FULL area <= true area <= FULL + PARTIAL.
  double full_area = cover.FullAreaSquareDegrees();
  double partial_area = cover.PartialAreaSquareDegrees();
  // True area via Monte Carlo.
  Rng rng(5);
  int inside = 0;
  const int kSamples = 2'000'000;
  for (int i = 0; i < kSamples; ++i) {
    if (query.Contains(rng.UnitSphere())) ++inside;
  }
  double mc_area = kSquareDegreesOnSky * inside / double(kSamples);
  std::printf(
      "\nArea bracket at level %d: FULL %.1f <= true %.1f (MC) <= FULL + "
      "PARTIAL %.1f sq deg\n",
      level, full_area, mc_area, full_area + partial_area);

  // Output-volume prediction (the paper's claim): predicted vs actual
  // object counts over a generated catalog.
  auto store = MakeBenchStore(0.3);
  auto pred = store.PredictRegion(query);
  uint64_t actual = 0;
  store.ForEachObject([&](const catalog::PhotoObj& o) {
    if (query.Contains(o.pos)) ++actual;
  });
  std::printf(
      "\nOutput-volume prediction from the density map: expected %.0f, "
      "bracket [%llu, %llu], actual %llu\n",
      pred.expected_objects,
      static_cast<unsigned long long>(pred.min_objects),
      static_cast<unsigned long long>(pred.max_objects),
      static_cast<unsigned long long>(actual));

  // Ablation: trixel-budgeted covers. A coarse cover is cheaper to
  // compute and store but accepts extra boundary area that per-object
  // filtering must then reject -- the planning-time/scan-time tradeoff.
  std::printf("\nCover-budget ablation (level-10 cover of the query):\n");
  std::printf("%10s %12s %16s %14s\n", "budget", "trixels",
              "accepted leaves", "overcoverage");
  htm::CoverResult exact10 = Cover(query, 10);
  uint64_t exact_accepted = exact10.ToRangeSet().CardinalityCount();
  for (size_t budget : {16u, 64u, 256u, 1024u, 0u}) {
    htm::CoverOptions opt;
    opt.level = 10;
    opt.max_trixels = budget;
    htm::CoverResult cover_b = Cover(query, opt);
    uint64_t accepted = cover_b.ToRangeSet().CardinalityCount();
    std::printf("%10s %12zu %16llu %13.2fx\n",
                budget == 0 ? "exact" : std::to_string(budget).c_str(),
                cover_b.full.size() + cover_b.partial.size(),
                static_cast<unsigned long long>(accepted),
                static_cast<double>(accepted) /
                    static_cast<double>(exact_accepted));
  }
}

void BM_Figure4Cover(benchmark::State& state) {
  Region query = Figure4Query();
  int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CoverResult cover = Cover(query, level);
    benchmark::DoNotOptimize(cover.full.size());
  }
}
BENCHMARK(BM_Figure4Cover)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_CircleCover(benchmark::State& state) {
  Region circle = Region::Circle(185.0, 30.0,
                                 static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cover(circle, 8).partial.size());
  }
}
BENCHMARK(BM_CircleCover)->Arg(1)->Arg(5)->Arg(20)
    ->Unit(benchmark::kMillisecond);

// Ablation: the paper's Cartesian representation turns spherical
// constraints into dot products. Compare point-in-band tests done on
// unit vectors vs the trigonometric path through (ra, dec) angles.
void BM_PointTestCartesian(benchmark::State& state) {
  Region query = Figure4Query();
  Rng rng(9);
  std::vector<Vec3> pts;
  for (int i = 0; i < 4096; ++i) pts.push_back(rng.UnitSphere());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.Contains(pts[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointTestCartesian);

void BM_PointTestTrigonometric(benchmark::State& state) {
  // The same two-band predicate evaluated from stored angles with
  // spherical trigonometry (what storing only ra/dec would force).
  Rng rng(9);
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i < 4096; ++i) {
    Vec3 v = rng.UnitSphere();
    double ra, dec;
    SphericalFromUnitVector(v, &ra, &dec);
    pts.emplace_back(ra, dec);
  }
  // Galactic pole in equatorial angles.
  SphericalCoord pole = ToSpherical(
      RotationToEquatorial(Frame::kGalactic) * Vec3{0, 0, 1},
      Frame::kEquatorial);
  double pra = DegToRad(pole.lon_deg), pdec = DegToRad(pole.lat_deg);
  size_t i = 0;
  for (auto _ : state) {
    auto [ra_deg, dec_deg] = pts[i++ & 4095];
    double ra = DegToRad(ra_deg), dec = DegToRad(dec_deg);
    // b = asin(sin d sin dp + cos d cos dp cos(ra - rap)).
    double sinb = std::sin(dec) * std::sin(pdec) +
                  std::cos(dec) * std::cos(pdec) * std::cos(ra - pra);
    double b = RadToDeg(std::asin(sinb));
    bool in = dec_deg >= 10.0 && dec_deg <= 35.0 && b >= 20.0 && b <= 55.0;
    benchmark::DoNotOptimize(in);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointTestTrigonometric);

}  // namespace
}  // namespace sdss::bench

int main(int argc, char** argv) {
  sdss::bench::PrintFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
